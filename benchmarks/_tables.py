"""Table-rendering helpers shared by the benchmark files.

Every file in this directory regenerates one table or figure of the paper's
evaluation (see DESIGN.md §3). Each test times the experiment through
pytest-benchmark, prints the reproduced rows/series, and asserts the
*shape* of the paper's result — orderings, win counts, geomean bands — not
exact numbers (our substrate is a simulator, not the authors' testbed).
"""

from __future__ import annotations


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render one reproduced table the way the paper prints it."""
    widths = [
        max(len(str(cell)) for cell in [name] + [row[idx] for row in rows])
        for idx, name in enumerate(header)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(name).ljust(width) for name, width in zip(header, widths)))
    for row in rows:
        print(
            "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        )


def fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"
