"""Pytest configuration for the benchmark/experiment harness.

Every file in this directory regenerates one table or figure of the paper's
evaluation (see DESIGN.md §3). Run with::

    pytest benchmarks/ --benchmark-only -s

`-s` shows the reproduced tables alongside the timing statistics.
"""
