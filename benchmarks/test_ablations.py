"""Table II ablations: each DTU 2.0 enhancement, measured as a delta.

The paper's Table II lists the hardware/software enhancements over DTU 1.0.
This bench regenerates the table's "Enhancements" column as *measured*
effects: the full-featured i20 simulation against the same chip with one
feature reverted to DTU 1.0 behaviour.
"""

import pytest
from _tables import fmt, print_table

from repro.compiler.tensorize import GemmShape, matrix_engine_efficiency
from repro.core.accelerator import Accelerator
from repro.core.config import FeatureFlags, dtu1_config, dtu2_config
from repro.memory.allocator import AffinityAllocator
from repro.memory.hierarchy import MemoryLevel
from repro.memory.ports import PortedL2
from repro.models.zoo import build
from repro.runtime.runtime import Device
from repro.sim import Simulator

MODEL = "resnet50"


def _run(features=None, groups=3):
    accelerator = Accelerator.cloudblazer_i20(features)
    device = Device(accelerator)
    compiled = device.compile(build(MODEL), batch=1)
    return device.launch(compiled, num_groups=groups)


def _simulated_ablations():
    baseline = _run()
    rows = {}
    toggles = {
        "operator fusion": FeatureFlags(operator_fusion=False),
        "repeat-mode DMA": FeatureFlags(repeat_dma=False),
        "icache prefetch": FeatureFlags(icache_prefetch=False),
        "sparse DMA": FeatureFlags(sparse_dma=False),
        "L2 broadcast": FeatureFlags(l2_broadcast=False),
    }
    for label, features in toggles.items():
        ablated = _run(features)
        rows[label] = {
            "base_ms": baseline.latency_ms,
            "ablated_ms": ablated.latency_ms,
            "slowdown": ablated.latency_ns / baseline.latency_ns,
        }
    return rows


def test_ablation_simulated_features(benchmark):
    rows = benchmark.pedantic(_simulated_ablations, rounds=1, iterations=1)
    print_table(
        "Table II ablations — simulated latency with one feature reverted",
        ["Feature removed", "i20 ms", "ablated ms", "slowdown"],
        [
            [label, fmt(row["base_ms"], 3), fmt(row["ablated_ms"], 3),
             fmt(row["slowdown"], 3) + "x"]
            for label, row in rows.items()
        ],
    )
    # Every Table II feature must help (or at worst be neutral), and fusion
    # must be the single biggest lever — the paper's central software claim.
    for label, row in rows.items():
        assert row["slowdown"] >= 0.999, label
    assert rows["operator fusion"]["slowdown"] == max(
        row["slowdown"] for row in rows.values()
    )
    assert rows["operator fusion"]["slowdown"] > 1.05


def _vmm_granularity():
    """Fine-grained VMM vs coarse GEMM on §III's problem shapes."""
    shapes = {
        "square conv (VGG-like)": GemmShape(m=12544, n=256, k=2304),
        "depthwise conv": GemmShape(m=3136, n=1, k=9),
        "conformer gemm (small M)": GemmShape(m=101, n=2048, k=512),
        "narrow-output conv": GemmShape(m=802816, n=3, k=5184),
    }
    return {
        label: {
            "fine": matrix_engine_efficiency(shape, fine_grained=True),
            "coarse": matrix_engine_efficiency(shape, fine_grained=False),
        }
        for label, shape in shapes.items()
    }


def test_ablation_fine_grained_vmm(benchmark):
    rows = benchmark(_vmm_granularity)
    print_table(
        "Table II ablation — fine-grained VMM vs coarse GEMM utilization",
        ["GEMM shape", "fine-grained", "coarse", "gain"],
        [
            [label, f"{row['fine']:.2f}", f"{row['coarse']:.2f}",
             fmt(row["fine"] / row["coarse"], 1) + "x"]
            for label, row in rows.items()
        ],
    )
    for label, row in rows.items():
        assert row["fine"] >= row["coarse"] - 1e-12, label
    # The §III motivation: tall-and-skinny shapes gain the most.
    assert rows["depthwise conv"]["fine"] / rows["depthwise conv"]["coarse"] > 2.0
    assert (
        rows["square conv (VGG-like)"]["fine"]
        / rows["square conv (VGG-like)"]["coarse"]
        < 1.2
    )


def _l2_ports():
    """4-port (DTU 2.0) vs single-port (DTU 1.0) L2 under 4-core load."""
    results = {}
    for label, config in (("4 ports", dtu2_config().l2_per_group),
                          ("1 port", dtu1_config().l2_per_group)):
        sim = Simulator()
        level = MemoryLevel(sim, config)
        ported = PortedL2(level, cores_per_group=4)
        for core in range(4):
            sim.spawn(ported.access(core, ported.bank_of_core(core), 1 << 20))
        sim.run()
        results[label] = sim.now
    return results


def test_ablation_l2_ports(benchmark):
    results = benchmark(_l2_ports)
    print_table(
        "Table II ablation — L2 ports under concurrent 4-core access",
        ["Configuration", "time us", "speedup"],
        [
            [label, fmt(value / 1e3, 2),
             fmt(results["1 port"] / value, 2) + "x"]
            for label, value in results.items()
        ],
    )
    # 4 independent ports serve 4 cores with no interference: ~4x.
    assert results["1 port"] / results["4 ports"] == pytest.approx(4.0, rel=0.05)


def _affinity():
    def mean_access(affinity):
        sim = Simulator()
        level = MemoryLevel(sim, dtu2_config().l2_per_group)
        allocator = AffinityAllocator(PortedL2(level, 4), affinity_enabled=affinity)
        times = []
        for index in range(32):
            core = (index * 3) % 4
            allocator.place(f"t{index}", 64 * 1024, consumer_core=core)
            times.append(allocator.access_time_ns(f"t{index}", core))
        return sum(times) / len(times)

    return {"affinity-aware": mean_access(True), "round-robin": mean_access(False)}


def test_ablation_affinity_allocation(benchmark):
    results = benchmark(_affinity)
    print_table(
        "Table II ablation — affinity-aware L2 allocation",
        ["Policy", "mean access ns"],
        [[label, fmt(value, 1)] for label, value in results.items()],
    )
    assert results["affinity-aware"] < results["round-robin"]


def _power_management():
    on = _run(groups=6)
    off = _run(FeatureFlags(power_management=False), groups=6)
    return {
        "energy_gain": off.energy_joules / on.energy_joules - 1.0,
        "perf_drop": on.latency_ns / off.latency_ns - 1.0,
    }


def test_ablation_power_management(benchmark):
    result = benchmark.pedantic(_power_management, rounds=1, iterations=1)
    print(
        f"\nTable II ablation — power management: energy "
        f"{result['energy_gain']:+.1%} at {result['perf_drop']:+.2%} latency"
    )
    assert result["energy_gain"] > 0.0
    assert result["perf_drop"] < 0.05
