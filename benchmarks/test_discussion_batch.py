"""§VI-D "Latency v.s. Throughput": VGG16 at batch 8/16 vs Nvidia A10.

Paper: "We tested the VGG16 model ... using batch sizes equaling 8 and 16.
Cloudblazer i20 is able to perform better than Nvidia's A10 with
improvements of 1.11x and 1.17x, respectively."
"""

from _tables import fmt, print_table

from repro.perfmodel.latency import estimate_model

BATCHES = (1, 2, 4, 8, 16)


def _batch_sweep():
    table = {}
    for batch in BATCHES:
        i20 = estimate_model("vgg16", "i20", batch=batch)
        a10 = estimate_model("vgg16", "a10", batch=batch)
        table[batch] = {
            "i20_ms": i20.latency_ms,
            "a10_ms": a10.latency_ms,
            "i20_tput": i20.throughput_samples_per_s,
            "a10_tput": a10.throughput_samples_per_s,
            "ratio": a10.latency_ns / i20.latency_ns,
        }
    return table


def test_discussion_vgg16_batch_throughput(benchmark):
    table = benchmark.pedantic(_batch_sweep, rounds=1, iterations=1)
    print_table(
        "§VI-D — VGG16 throughput scaling: i20 vs A10",
        ["Batch", "i20 ms", "A10 ms", "i20 img/s", "A10 img/s", "i20/A10"],
        [
            [batch, fmt(row["i20_ms"]), fmt(row["a10_ms"]),
             fmt(row["i20_tput"], 0), fmt(row["a10_tput"], 0),
             fmt(row["ratio"], 3)]
            for batch, row in table.items()
        ],
    )
    print(f"paper: 1.11x at batch 8, 1.17x at batch 16; measured "
          f"{table[8]['ratio']:.2f}x / {table[16]['ratio']:.2f}x")

    # The paper's measured factors, within 10%.
    assert table[8]["ratio"] > 1.0
    assert table[16]["ratio"] > 1.0
    assert abs(table[8]["ratio"] - 1.11) < 0.11
    assert abs(table[16]["ratio"] - 1.17) < 0.12

    # "The results reveal the potential of improving task throughput with
    # multi-batches": i20's advantage grows from batch 8 to 16.
    assert table[16]["ratio"] > table[8]["ratio"]

    # Throughput itself must scale with batch on both devices.
    for device in ("i20_tput", "a10_tput"):
        assert table[16][device] > table[8][device] > table[1][device]
