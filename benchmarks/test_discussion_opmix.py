"""§VI-D "Object detection v.s. Image classification": operator-mix stats.

Paper: "the average percentage of operators with high computational density
(i.e., matrix convolution and multiplication) in object detection DNNs is
less than image classification DNNs (around 81%). However, their input
sizes are more than 2x larger, leading to more computation and bandwidth
costs."
"""

from _tables import fmt, print_table

from repro.compiler.lowering import lower_graph
from repro.core.config import dtu2_config
from repro.graph.fusion import fused_members
from repro.graph.ops import spec
from repro.graph.passes import optimize
from repro.graph.shape_inference import bind_shapes
from repro.models.zoo import TABLE_III, build

DENSE_CATEGORIES = {"conv", "gemm"}
DETECTION = ("yolo_v3", "centernet", "retinaface")
CLASSIFICATION = ("vgg16", "resnet50", "inception_v4")


def _input_pixels(graph):
    shape = graph.tensor_type(graph.inputs[0]).shape
    pixels = 1
    for dim in shape[1:]:
        pixels *= dim
    return pixels


def _dense_operator_share(graph):
    """Fraction of primitive operators that are conv/GEMM (count-based,
    matching the paper's 'percentage of operators' phrasing)."""
    dense = 0
    total = 0
    for node in graph.topological_nodes():
        for member in fused_members(node):
            category = spec(member.op_type).category
            if category == "layout":
                continue  # layout moves handled by DMA, not operators
            total += 1
            dense += category in DENSE_CATEGORIES
    return dense / total


def _opmix():
    chip = dtu2_config()
    table = {}
    for entry in TABLE_III:
        if entry.name not in DETECTION + CLASSIFICATION:
            continue
        graph = bind_shapes(build(entry.name), batch=1)
        pixels = _input_pixels(graph)
        optimized, _ = optimize(graph)
        compiled = lower_graph(optimized, chip)
        table[entry.name] = {
            "category": entry.category,
            "pixels": pixels,
            "dense_share": _dense_operator_share(optimized),
            "gflops": compiled.total_flops / 1e9,
            "boundary_mb": compiled.total_boundary_bytes / 1e6,
        }
    return table


def test_discussion_operator_mix(benchmark):
    table = benchmark.pedantic(_opmix, rounds=1, iterations=1)
    print_table(
        "§VI-D — operator mix: detection vs classification",
        ["DNN", "Category", "Input px", "dense-op %", "GFLOPs", "TrafficMB"],
        [
            [name, row["category"], row["pixels"],
             f"{row['dense_share']:.0%}", fmt(row["gflops"], 1),
             fmt(row["boundary_mb"], 0)]
            for name, row in table.items()
        ],
    )

    def mean(names, key):
        return sum(table[name][key] for name in names) / len(names)

    detection_share = mean(DETECTION, "dense_share")
    classification_share = mean(CLASSIFICATION, "dense_share")
    print(f"dense-op share: detection {detection_share:.0%}, "
          f"classification {classification_share:.0%} (paper: ~81% for "
          f"classification, detection lower)")
    print("note: our detection graphs omit framework post-processing "
          "(NMS/route/decode), so the paper's share *ordering* between the "
          "two domains is not reproducible — see EXPERIMENTS.md")

    # Both domains are dominated by dense operators on the compiled graphs.
    assert 0.25 < classification_share <= 1.0
    assert 0.25 < detection_share <= 1.0

    # Detection inputs are more than 2x larger (Table III: 512-640 px vs
    # 224-299 px).
    assert mean(DETECTION, "pixels") > 2 * mean(CLASSIFICATION, "pixels")

    # ...which leads to more computation and bandwidth cost — the part of
    # the paper's argument that explains the Fig. 13 detection wins.
    assert mean(DETECTION, "gflops") > mean(CLASSIFICATION, "gflops")
    assert mean(DETECTION, "boundary_mb") > mean(CLASSIFICATION, "boundary_mb")
