"""§VI-D "Power management ON v.s. OFF": Resnet50 v1.5 and Bert Large.

Paper: with power management ON the clock adjusts dynamically in
1.0-1.4 GHz; OFF pins 1.4 GHz. "We observed comparable performance with
only 0.85% and 3.2% performance drop when power management is turned on.
However, in terms of energy efficiency, we saw 13% improvements for both
DNNs."

This experiment runs the full closed-loop simulation: the event-driven
executor drives the CPME/LPME observation windows and the 4-stage DVFS
governor of Fig. 10.
"""

from _tables import fmt, print_table

from repro.core.accelerator import Accelerator
from repro.core.config import FeatureFlags
from repro.models.zoo import build
from repro.runtime.runtime import Device

MODELS = ("resnet50", "bert_large")


def _run(model, power_management):
    accelerator = Accelerator.cloudblazer_i20(
        FeatureFlags(power_management=power_management)
    )
    device = Device(accelerator)
    compiled = device.compile(build(model), batch=1)
    result = device.launch(compiled, num_groups=6)
    return result, accelerator


def _experiment():
    table = {}
    for model in MODELS:
        on, accelerator = _run(model, True)
        off, _ = _run(model, False)
        table[model] = {
            "on_ms": on.latency_ms,
            "off_ms": off.latency_ms,
            "on_mj": on.energy_joules * 1e3,
            "off_mj": off.energy_joules * 1e3,
            "mean_ghz": on.mean_frequency_ghz,
            "perf_drop": on.latency_ns / off.latency_ns - 1.0,
            "efficiency_gain": off.energy_joules / on.energy_joules - 1.0,
            "profile": accelerator.dvfs.frequency_profile(),
        }
    return table


def test_discussion_power_management(benchmark):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print_table(
        "§VI-D — power management ON vs OFF (DVFS 1.0-1.4 GHz)",
        ["DNN", "ON ms", "OFF ms", "ON mJ", "OFF mJ", "mean GHz",
         "perf drop", "energy-eff gain"],
        [
            [model, fmt(row["on_ms"], 3), fmt(row["off_ms"], 3),
             fmt(row["on_mj"], 1), fmt(row["off_mj"], 1),
             fmt(row["mean_ghz"]), f"{row['perf_drop']:+.2%}",
             f"{row['efficiency_gain']:+.1%}"]
            for model, row in table.items()
        ],
    )
    print("paper: perf drop 0.85% (resnet50) / 3.2% (bert), "
          "energy efficiency +13% for both")

    for model, row in table.items():
        # "comparable performance": drop stays below 5 %.
        assert 0.0 <= row["perf_drop"] < 0.05, model
        # DVFS must actually save energy, never cost it.
        assert row["efficiency_gain"] > 0.0, model
        # The governor must have exercised the 1.0-1.4 GHz range.
        assert min(row["profile"]) < 1.4, model

    # Resnet50's mixed compute/memory phases give the double-digit saving
    # the paper reports (13%); our simulated BERT is more compute-bound so
    # its saving is smaller (divergence documented in EXPERIMENTS.md).
    assert table["resnet50"]["efficiency_gain"] > 0.05
    assert table["resnet50"]["perf_drop"] < 0.02
    # BERT's drop lands near the paper's 3.2 %.
    assert table["bert_large"]["perf_drop"] < 0.05
