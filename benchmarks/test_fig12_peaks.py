"""Fig. 12: peak performance / memory capacity / bandwidth comparisons.

(a) Cloudblazer i20 vs i10, normalized to i10.
(b) i20 vs Nvidia T4 / A10, normalized to T4.
"""

import pytest
from _tables import fmt, print_table

from repro.core.datatypes import DType
from repro.perfmodel.devices import (
    CLOUDBLAZER_I10,
    CLOUDBLAZER_I20,
    NVIDIA_A10,
    NVIDIA_T4,
)

METRICS = ("FP32", "FP16", "INT8", "Memory", "Bandwidth")


def _metric(spec, metric):
    return {
        "FP32": spec.fp32_tflops,
        "FP16": spec.fp16_tflops,
        "INT8": spec.int8_tops,
        "Memory": float(spec.memory_gb),
        "Bandwidth": spec.bandwidth_gbps,
    }[metric]


def _fig12():
    versus_i10 = {
        metric: _metric(CLOUDBLAZER_I20, metric) / _metric(CLOUDBLAZER_I10, metric)
        for metric in METRICS
    }
    normalized_t4 = {
        name: {
            metric: _metric(spec, metric) / _metric(NVIDIA_T4, metric)
            for metric in METRICS
        }
        for name, spec in (
            ("T4", NVIDIA_T4),
            ("A10", NVIDIA_A10),
            ("i20", CLOUDBLAZER_I20),
        )
    }
    return versus_i10, normalized_t4


def test_fig12a_i20_vs_i10(benchmark):
    versus_i10, _ = benchmark(_fig12)
    print_table(
        "Fig. 12(a) — i20 vs i10 (normalized with i10)",
        ["Metric", "i20 / i10"],
        [[metric, fmt(value)] for metric, value in versus_i10.items()],
    )
    # §IV: 1.6x on FP32/FP16, 3.2x on INT8, same memory, 1.6x bandwidth.
    assert versus_i10["FP32"] == pytest.approx(1.6)
    assert versus_i10["FP16"] == pytest.approx(1.6)
    assert versus_i10["INT8"] == pytest.approx(3.2)
    assert versus_i10["Memory"] == pytest.approx(1.0)
    assert versus_i10["Bandwidth"] == pytest.approx(1.6, rel=0.01)


def test_fig12b_i20_vs_gpus(benchmark):
    _, normalized = benchmark(_fig12)
    print_table(
        "Fig. 12(b) — i20 vs Nvidia T4/A10 (normalized with T4)",
        ["Device"] + list(METRICS),
        [
            [name] + [fmt(normalized[name][metric]) for metric in METRICS]
            for name in ("T4", "A10", "i20")
        ],
    )
    i20 = normalized["i20"]
    a10 = normalized["A10"]
    # §VI-B: "Cloudblazer i20 is the most powerful accelerator in terms of
    # the peak performance on FP32, FP16, and INT8 data types."
    for metric in ("FP32", "FP16", "INT8"):
        assert i20[metric] >= a10[metric] >= 1.0
    # "Its memory bandwidth is ... 2.56x and 1.36x higher than T4 and A10."
    assert i20["Bandwidth"] == pytest.approx(2.56, rel=0.01)
    assert i20["Bandwidth"] / a10["Bandwidth"] == pytest.approx(1.365, rel=0.01)
    # "Nvidia A10 has the largest memory capacity (1.5x larger than others)."
    assert a10["Memory"] == pytest.approx(1.5)
    assert i20["Memory"] == pytest.approx(1.0)
