"""Fig. 13: DNN latency across platforms, normalized with T4, FP16, batch 1.

Paper headline: i20 outperforms T4 by 2.22x and A10 by 1.16x (GeoMean);
SRResnet is the biggest win (4.34x / 2.37x); A10 wins a small minority of
models (3/10 in the paper); i10 is worse than i20 everywhere (omitted from
the paper's figure for that reason).
"""

from _tables import fmt, print_table

from repro.models.zoo import MODEL_NAMES, entry
from repro.perfmodel.latency import estimate_model, geomean, speedup

DETECTION_MODELS = ("yolo_v3", "centernet", "retinaface")


def _fig13():
    table = {}
    for model in MODEL_NAMES:
        t4 = estimate_model(model, "t4")
        table[model] = {
            "t4_ms": t4.latency_ms,
            "i20_vs_t4": speedup(model, "i20", "t4"),
            "a10_vs_t4": speedup(model, "a10", "t4"),
            "i20_vs_a10": speedup(model, "i20", "a10"),
            "i20_vs_i10": speedup(model, "i20", "i10"),
        }
    return table


def test_fig13_dnn_latency(benchmark):
    table = benchmark.pedantic(_fig13, rounds=1, iterations=1)
    rows = [
        [
            entry(model).display_name,
            fmt(row["t4_ms"], 3),
            fmt(row["i20_vs_t4"]),
            fmt(row["a10_vs_t4"]),
            fmt(row["i20_vs_a10"]),
        ]
        for model, row in table.items()
    ]
    vs_t4 = geomean([row["i20_vs_t4"] for row in table.values()])
    vs_a10 = geomean([row["i20_vs_a10"] for row in table.values()])
    rows.append(["GeoMean", "", fmt(vs_t4), "", fmt(vs_a10)])
    print_table(
        "Fig. 13 — DNN latency speedups (normalized with T4, FP16)",
        ["DNN", "T4 ms", "i20/T4", "A10/T4", "i20/A10"],
        rows,
    )
    print(f"paper: GeoMean 2.22x vs T4, 1.16x vs A10; "
          f"measured {vs_t4:.2f}x / {vs_a10:.2f}x")

    # --- shape assertions ---------------------------------------------------
    # Headline geomeans in band around the paper's 2.22x / 1.16x.
    assert 1.9 < vs_t4 < 2.7
    assert 1.0 < vs_a10 < 1.4

    # SRResnet is the extreme win (paper: 4.34x over T4, 2.37x over A10).
    best = max(table, key=lambda model: table[model]["i20_vs_t4"])
    assert best == "srresnet"
    assert table["srresnet"]["i20_vs_t4"] > 3.5
    assert table["srresnet"]["i20_vs_a10"] > 2.0

    # i20 wins every object-detection model (§VI-D: "performs the best for
    # all 3 DNNs of object detection").
    for model in DETECTION_MODELS:
        assert table[model]["i20_vs_a10"] > 1.0, model

    # A10 wins a small minority of models (paper: 3 of 10).
    a10_wins = [m for m in MODEL_NAMES if table[m]["i20_vs_a10"] < 1.0]
    assert 1 <= len(a10_wins) <= 4
    assert "bert_large" in a10_wins

    # A10 consistently beats T4 (§VI-B).
    assert all(row["a10_vs_t4"] > 1.0 for row in table.values())

    # i10 is strictly worse than i20 (why the paper omits it from Fig. 13).
    assert all(row["i20_vs_i10"] > 1.0 for row in table.values())
