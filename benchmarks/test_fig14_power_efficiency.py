"""Fig. 14: TDP and peak power efficiency (Perf/TDP) across platforms."""

import pytest
from _tables import fmt, print_table

from repro.core.datatypes import DType
from repro.perfmodel.devices import (
    ALL_DEVICES,
    CLOUDBLAZER_I10,
    CLOUDBLAZER_I20,
    NVIDIA_A10,
    NVIDIA_T4,
)


def _fig14():
    return {
        spec.name: {
            "tdp": spec.tdp_watts,
            "fp32": spec.power_efficiency(DType.FP32),
            "fp16": spec.power_efficiency(DType.FP16),
            "int8": spec.power_efficiency(DType.INT8),
        }
        for spec in ALL_DEVICES
    }


def test_fig14_power_and_efficiency(benchmark):
    table = benchmark(_fig14)
    print_table(
        "Fig. 14 — TDP and peak Perf/TDP (GFLOPS/W or GOPS/W)",
        ["Device", "TDP W", "FP32", "FP16", "INT8"],
        [
            [name, fmt(row["tdp"], 0), fmt(row["fp32"], 1), fmt(row["fp16"], 1),
             fmt(row["int8"], 1)]
            for name, row in table.items()
        ],
    )
    t4 = table["Nvidia T4"]
    a10 = table["Nvidia A10"]
    i10 = table["Cloudblazer i10"]
    i20 = table["Cloudblazer i20"]

    # "Nvidia T4 has the lowest TDP, around 47% of the others."
    assert t4["tdp"] == min(row["tdp"] for row in table.values())
    assert t4["tdp"] / 150.0 == pytest.approx(0.47, abs=0.01)

    # "Its power efficiency on FP16 (INT8) is 1.11x (1.11x), 1.74x (3.48x),
    # and 1.09x (1.09x) higher than Nvidia A10, Cloudblazer i10, and i20."
    assert t4["fp16"] / a10["fp16"] == pytest.approx(1.11, abs=0.01)
    assert t4["fp16"] / i10["fp16"] == pytest.approx(1.74, abs=0.01)
    assert t4["fp16"] / i20["fp16"] == pytest.approx(1.09, abs=0.01)
    assert t4["int8"] / a10["int8"] == pytest.approx(1.11, abs=0.01)
    assert t4["int8"] / i10["int8"] == pytest.approx(3.48, abs=0.01)
    assert t4["int8"] / i20["int8"] == pytest.approx(1.09, abs=0.01)

    # "for FP32, Cloudblazer i20's power efficiency is the best, which is
    # 1.6x, 1.84x, and 1.03x higher than Cloudblazer i10, Nvidia T4, A10."
    assert i20["fp32"] == max(row["fp32"] for row in table.values())
    assert i20["fp32"] / i10["fp32"] == pytest.approx(1.6, abs=0.01)
    assert i20["fp32"] / t4["fp32"] == pytest.approx(1.84, abs=0.01)
    assert i20["fp32"] / a10["fp32"] == pytest.approx(1.03, abs=0.01)
