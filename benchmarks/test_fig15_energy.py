"""Fig. 15: DNN energy efficiency (Perf/TDP) normalized with T4, FP16.

Paper headline: i20's energy efficiency beats T4 by 4% and A10 by 17% on
average; SRResnet shows the largest gain (2.03x / 2.39x).
"""

from _tables import fmt, print_table

from repro.models.zoo import MODEL_NAMES, entry
from repro.perfmodel.latency import energy_efficiency_ratio, geomean


def _fig15():
    return {
        model: {
            "vs_t4": energy_efficiency_ratio(model, "i20", "t4"),
            "vs_a10": energy_efficiency_ratio(model, "i20", "a10"),
            "a10_vs_t4": energy_efficiency_ratio(model, "a10", "t4"),
        }
        for model in MODEL_NAMES
    }


def test_fig15_energy_efficiency(benchmark):
    table = benchmark.pedantic(_fig15, rounds=1, iterations=1)
    vs_t4 = geomean([row["vs_t4"] for row in table.values()])
    vs_a10 = geomean([row["vs_a10"] for row in table.values()])
    rows = [
        [entry(model).display_name, fmt(row["vs_t4"]), fmt(row["vs_a10"])]
        for model, row in table.items()
    ]
    rows.append(["GeoMean", fmt(vs_t4), fmt(vs_a10)])
    print_table(
        "Fig. 15 — DNN energy efficiency of i20 (normalized with T4, FP16)",
        ["DNN", "i20 vs T4", "i20 vs A10"],
        rows,
    )
    print(f"paper: +4% vs T4, +17% vs A10; measured "
          f"{(vs_t4 - 1):+.0%} / {(vs_a10 - 1):+.0%}")

    # Geomean bands around the paper's 1.04x / 1.17x.
    assert 0.90 < vs_t4 < 1.30
    assert 1.00 < vs_a10 < 1.40

    # SRResnet shows the largest improvement (paper: 2.03x / 2.39x).
    best = max(table, key=lambda model: table[model]["vs_t4"])
    assert best == "srresnet"
    assert table["srresnet"]["vs_t4"] > 1.6
    assert table["srresnet"]["vs_a10"] > 2.0

    # "its power efficiency is better than Nvidia T4 for half of the
    # tested DNNs" — the crossover must land mid-pack, not at an extreme.
    t4_wins = sum(1 for row in table.values() if row["vs_t4"] > 1.0)
    assert 3 <= t4_wins <= 8

    # Energy efficiency is perf/TDP: i20 vs A10 (equal TDP) must equal the
    # latency speedup exactly — sanity of the Fig. 15 definition.
    from repro.perfmodel.latency import speedup

    for model in MODEL_NAMES:
        assert abs(table[model]["vs_a10"] - speedup(model, "i20", "a10")) < 1e-9
