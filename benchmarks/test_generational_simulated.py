"""Generational step, measured in the detailed simulator: i20 vs i10.

Fig. 12(a) compares spec sheets; this bench runs both simulated chips on
real compiled models, so every Table II mechanism (VMM granularity, 4x/6x
memories, repeat DMA, icache prefetch, broadcast, HBM2E) contributes to the
measured generational speedup. Table I/IV peak ratios are 1.6x (FP16); the
end-to-end win should land above that (the software-visible features add on
top) but below the ~4x no-free-lunch bound.
"""

from _tables import fmt, print_table

from repro.models.zoo import build
from repro.runtime.runtime import Device

MODELS = ("resnet50", "vgg16", "srresnet", "bert_large", "conformer")


def _experiment():
    table = {}
    for model in MODELS:
        results = {}
        for name, groups in (("i20", 6), ("i10", 4)):
            device = Device.open(name)
            compiled = device.compile(build(model), batch=1)
            results[name] = device.launch(compiled, num_groups=groups)
        table[model] = {
            "i20_ms": results["i20"].latency_ms,
            "i10_ms": results["i10"].latency_ms,
            "speedup": results["i10"].latency_ns / results["i20"].latency_ns,
            "i20_energy_mj": results["i20"].energy_joules * 1e3,
            "i10_energy_mj": results["i10"].energy_joules * 1e3,
        }
    return table


def test_generational_speedup_simulated(benchmark):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print_table(
        "Simulated generational step — Cloudblazer i20 vs i10",
        ["Model", "i20 ms", "i10 ms", "speedup", "i20 mJ", "i10 mJ"],
        [
            [model, fmt(row["i20_ms"], 3), fmt(row["i10_ms"], 3),
             fmt(row["speedup"]) + "x", fmt(row["i20_energy_mj"], 1),
             fmt(row["i10_energy_mj"], 1)]
            for model, row in table.items()
        ],
    )
    for model, row in table.items():
        # i20 wins every model end to end...
        assert row["speedup"] > 1.0, model
        # ...and stays within a sane envelope.
        assert row["speedup"] < 6.0, model
    # On average the step exceeds the raw 1.6x peak ratio: the Table II
    # software-visible features compound on top of the datasheet gain.
    mean = sum(row["speedup"] for row in table.values()) / len(table)
    assert mean > 1.6
    # Same-TDP parts: the faster chip also spends less energy per inference.
    for model, row in table.items():
        assert row["i20_energy_mj"] < row["i10_energy_mj"], model
