"""Table I interconnect: PCIe Gen4 64 GB/s — end-to-end latency breakdown.

Not a paper figure, but the deployment-facing consequence of a Table I spec:
how much of a cloud request's latency the host link costs, per model, and
what stream pipelining recovers.
"""

from _tables import fmt, print_table

from repro.models.zoo import build
from repro.runtime.host import HostSession
from repro.runtime.runtime import Device

MODELS = ("resnet50", "yolo_v3", "srresnet", "bert_large")


def _experiment():
    table = {}
    for model in MODELS:
        device = Device.open("i20")
        session = HostSession(device)
        compiled = device.compile(build(model), batch=1)
        result = session.infer(compiled, num_groups=6)
        table[model] = {
            "h2d_us": result.h2d_ns / 1e3,
            "device_ms": result.device_ns / 1e6,
            "d2h_us": result.d2h_ns / 1e3,
            "total_ms": result.total_ms,
            "pcie_share": result.pcie_share,
            "pipelined_per_s": session.pipelined_throughput_per_s(result),
        }
    return table


def test_pcie_end_to_end(benchmark):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print_table(
        "End-to-end latency over PCIe Gen4 (64 GB/s)",
        ["Model", "H2D us", "device ms", "D2H us", "total ms",
         "PCIe share", "pipelined/s"],
        [
            [model, fmt(row["h2d_us"], 1), fmt(row["device_ms"], 3),
             fmt(row["d2h_us"], 1), fmt(row["total_ms"], 3),
             f"{row['pcie_share']:.1%}", fmt(row["pipelined_per_s"], 0)]
            for model, row in table.items()
        ],
    )
    for model, row in table.items():
        # A 64 GB/s link must never dominate these device-bound workloads.
        assert row["pcie_share"] < 0.30, model
        # Pipelining hides the copies: throughput beats 1/total.
        assert row["pipelined_per_s"] >= 1e3 / row["total_ms"] - 1e-6, model
    # Larger inputs cost more H2D time (yolo's 608^2 vs resnet's 224^2).
    assert table["yolo_v3"]["h2d_us"] > table["resnet50"]["h2d_us"]
