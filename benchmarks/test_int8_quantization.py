"""INT8 deployment: speed from Table I's 256 TOPS, accuracy per §VI-A.

The paper evaluates at FP16 but ships the i20 with a 2x INT8 rate
(256 TOPS) and fixes the accuracy budget against the CPU reference at
0.01-0.05 % precision difference. This bench measures both halves:

- analytical latency at INT8 vs FP16 across the zoo (rate + traffic win),
- measured PTQ accuracy of the full calibrate -> quantize -> verify flow on
  an executable CNN against the FP reference executor.
"""

import numpy as np
from _tables import fmt, print_table

from repro.core.datatypes import DType
from repro.graph.builder import GraphBuilder
from repro.models.zoo import MODEL_NAMES
from repro.perfmodel.latency import estimate_model, geomean
from repro.quant import calibrate, verify_accuracy, weight_compression_bytes


def _latency_sweep():
    table = {}
    for model in MODEL_NAMES:
        fp16 = estimate_model(model, "i20", dtype=DType.FP16)
        int8 = estimate_model(model, "i20", dtype=DType.INT8)
        table[model] = {
            "fp16_ms": fp16.latency_ms,
            "int8_ms": int8.latency_ms,
            "speedup": fp16.latency_ns / int8.latency_ns,
        }
    return table


def test_int8_latency_speedup(benchmark):
    table = benchmark.pedantic(_latency_sweep, rounds=1, iterations=1)
    print_table(
        "INT8 vs FP16 latency on the i20 (analytical)",
        ["DNN", "FP16 ms", "INT8 ms", "speedup"],
        [
            [model, fmt(row["fp16_ms"], 3), fmt(row["int8_ms"], 3),
             fmt(row["speedup"]) + "x"]
            for model, row in table.items()
        ],
    )
    mean = geomean([row["speedup"] for row in table.values()])
    print(f"geomean INT8 speedup {mean:.2f}x "
          f"(2.0x peak rate + 2x smaller traffic, capped by overheads)")
    for model, row in table.items():
        assert 1.0 < row["speedup"] <= 2.2, model
    assert mean > 1.3


def _accuracy_flow():
    builder = GraphBuilder("ptq_cnn")
    x = builder.input("x", (4, 3, 20, 20))
    y = builder.conv2d(x, 24, 3, pad=1)
    y = builder.relu(y)
    y = builder.conv2d(y, 24, 3, pad=1, groups=2)
    y = builder.relu(y)
    y = builder.max_pool(y, 2)
    y = builder.conv2d(y, 32, 3, pad=1)
    y = builder.relu(y)
    y = builder.global_avg_pool(y)
    y = builder.flatten(y)
    y = builder.dense(y, 10)
    y = builder.softmax(y)
    graph = builder.finish([y])

    rng = np.random.default_rng(42)
    calibration_batches = [
        {"x": rng.normal(size=(4, 3, 20, 20))} for _ in range(6)
    ]
    held_out = [{"x": rng.normal(size=(4, 3, 20, 20))} for _ in range(4)]
    table = calibrate(graph, calibration_batches)
    report = verify_accuracy(graph, table, held_out)
    fp16_bytes, int8_bytes = weight_compression_bytes(graph)
    return report, fp16_bytes, int8_bytes


def test_int8_accuracy_budget(benchmark):
    report, fp16_bytes, int8_bytes = benchmark.pedantic(
        _accuracy_flow, rounds=1, iterations=1
    )
    print(f"\nPTQ accuracy (executable CNN vs FP reference): "
          f"mean deviation {report.precision_difference_percent:.3f}%, "
          f"max {report.max_relative_error:.2%}, "
          f"top-1 agreement {report.top1_agreement:.1%}")
    print(f"weight compression: {fp16_bytes} B FP16 -> {int8_bytes} B INT8 "
          f"({fp16_bytes / int8_bytes:.2f}x)")
    # §VI-A methodology: deviation measured and bounded; classification
    # decisions preserved. (The paper's 0.01 % is on trained logits; our
    # random-weight softmax outputs sit in the same small-percent regime.)
    assert report.mean_relative_error < 0.02
    assert report.top1_agreement >= 0.95
    assert fp16_bytes / int8_bytes > 1.8
