"""Extension: pipeline vs data parallelism over the processing groups.

The resource abstraction (§IV-E) admits two mappings for a 6-group chip
serving a request stream: replicate the whole model data-parallel, or
partition it into pipeline stages (handoffs on the §IV-D sync engine).
This bench measures the trade the paper's flexibility argument implies:
pipelining trades single-request latency for steady-state throughput.
"""

from _tables import fmt, print_table

from repro.core.accelerator import Accelerator
from repro.models.zoo import build
from repro.runtime.pipeline import PipelineExecutor
from repro.runtime.runtime import Device

MODEL = "resnet50"
REQUESTS = 8


def _experiment():
    device = Device.open("i20")
    compiled = device.compile(build(MODEL), batch=1)
    data_parallel = device.launch(compiled, num_groups=6)

    rows = {
        "data-parallel x6": {
            "first_ms": data_parallel.latency_ms,
            "steady_us": data_parallel.latency_ns / 1e3,
            "throughput": 1e9 / data_parallel.latency_ns,
        }
    }
    for stages in (2, 3, 6):
        accelerator = Accelerator.cloudblazer_i20()
        pipeline_device = Device(accelerator)
        pipeline_compiled = pipeline_device.compile(build(MODEL), batch=1)
        result = PipelineExecutor(accelerator).run(
            pipeline_compiled, num_stages=stages, requests=REQUESTS
        )
        rows[f"pipeline x{stages}"] = {
            "first_ms": result.first_latency_ns / 1e6,
            "steady_us": result.steady_interval_ns / 1e3,
            "throughput": result.throughput_per_s,
        }
    return rows


def test_pipeline_vs_data_parallel(benchmark):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print_table(
        f"{MODEL}: pipeline vs data parallelism ({REQUESTS}-request stream)",
        ["Mapping", "first-req ms", "steady us/req", "req/s"],
        [
            [label, fmt(row["first_ms"], 3), fmt(row["steady_us"], 1),
             fmt(row["throughput"], 0)]
            for label, row in rows.items()
        ],
    )
    baseline = rows["data-parallel x6"]
    best_pipeline = max(
        (row for label, row in rows.items() if label.startswith("pipeline")),
        key=lambda row: row["throughput"],
    )
    # The trade: some pipeline depth beats data parallelism on throughput...
    assert best_pipeline["throughput"] > baseline["throughput"]
    # ...at the cost of single-request latency.
    assert best_pipeline["first_ms"] > baseline["first_ms"]
