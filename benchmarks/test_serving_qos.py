"""§II-B / §IV-E: cloud-serving QoS — isolation and batching, measured.

Quantifies two claims:

- §IV-E: "as isolated hardware resources prevent interference among each
  other, system throughput is increased without compromising inference
  latency, improving the overall QoS";
- §VI-D: batching trades latency headroom for throughput.

Service times are anchored to the detailed simulator (one executor run per
tenant configuration), and the queueing layer replays a 2-second Poisson
trace.
"""

from _tables import fmt, print_table

from repro.serving import (
    InferenceServer,
    TenantConfig,
    TrafficPattern,
    generate_trace,
    measure_service_time_ns,
)

TENANTS = [
    TenantConfig("vision-api", "resnet50", groups=1, max_batch=4, sla_ms=10.0),
    TenantConfig("ocr-batch", "unet", groups=3, sla_ms=100.0),
]
PATTERNS = [
    TrafficPattern("vision-api", rate_per_s=400.0),
    TrafficPattern("ocr-batch", rate_per_s=35.0),
]


def _experiment():
    service = {
        tenant.name: measure_service_time_ns(tenant.model, tenant.groups)
        for tenant in TENANTS
    }
    trace = generate_trace(PATTERNS, duration_s=2.0, seed=11)
    isolated = InferenceServer(
        TENANTS, isolated=True, service_times_ns=dict(service)
    ).run(trace)
    shared = InferenceServer(
        TENANTS, isolated=False, service_times_ns=dict(service)
    ).run(trace)
    return service, isolated, shared, len(trace)


def test_serving_isolation_qos(benchmark):
    service, isolated, shared, requests = benchmark.pedantic(
        _experiment, rounds=1, iterations=1
    )
    rows = []
    for name in isolated:
        rows.append(
            [
                name,
                fmt(service[name] / 1e6, 2),
                fmt(isolated[name].p50_ms, 2),
                fmt(isolated[name].p99_ms, 2),
                f"{isolated[name].sla_violation_rate:.0%}",
                fmt(shared[name].p99_ms, 2),
                f"{shared[name].sla_violation_rate:.0%}",
            ]
        )
    print_table(
        f"§IV-E — serving QoS over {requests} requests "
        f"(isolated groups vs shared queue)",
        ["Tenant", "svc ms", "iso p50", "iso p99", "iso viol",
         "shared p99", "shared viol"],
        rows,
    )

    light = "vision-api"
    # Isolation keeps the latency-critical tenant inside its SLA...
    assert isolated[light].sla_violation_rate < 0.01
    # ...while the shared queue lets the heavy tenant destroy its p99.
    assert shared[light].p99_ms > 3 * isolated[light].p99_ms
    assert shared[light].sla_violation_rate > 0.03
    # Throughput is not sacrificed by isolation: every request completes.
    total_isolated = sum(report.completed for report in isolated.values())
    assert total_isolated == requests
    # Dynamic batching engaged under load.
    assert isolated[light].mean_batch >= 1.0
