"""Table I: technical specifications of the Cloudblazer i20 accelerator."""

from _tables import print_table

from repro.core.config import GB, dtu2_config
from repro.core.datatypes import DType


def _table1():
    chip = dtu2_config()
    rows = [
        ["FP32", f"{chip.peak_tflops[DType.FP32]:.0f} teraFLOPS",
         "Memory", f"{chip.l3.capacity_bytes // GB}GB"],
        ["TF32", f"{chip.peak_tflops[DType.TF32]:.0f} teraFLOPS",
         "Bandwidth", f"{chip.l3.bandwidth_gbps:.0f}GB/s"],
        ["FP16", f"{chip.peak_tflops[DType.FP16]:.0f} teraFLOPS",
         "Board TDP", f"{chip.tdp_watts:.0f}W"],
        ["BF16", f"{chip.peak_tflops[DType.BF16]:.0f} teraFLOPS",
         "Interconnect", f"PCIe Gen4 {chip.pcie_gbps:.0f}GB/s"],
        ["INT8", f"{chip.peak_tflops[DType.INT8]:.0f} TOPS",
         "Software", "Enflame Customized"],
    ]
    return chip, rows


def test_table1_specifications(benchmark):
    chip, rows = benchmark(_table1)
    print_table(
        "Table I — Cloudblazer i20 technical specifications",
        ["Perf", "Value", "Feature", "Value"],
        rows,
    )
    # Paper Table I, verbatim.
    assert chip.peak_tflops[DType.FP32] == 32.0
    assert chip.peak_tflops[DType.TF32] == 128.0
    assert chip.peak_tflops[DType.FP16] == 128.0
    assert chip.peak_tflops[DType.BF16] == 128.0
    assert chip.peak_tflops[DType.INT8] == 256.0
    assert chip.l3.capacity_bytes == 16 * GB
    assert chip.l3.bandwidth_gbps == 819.0
    assert chip.tdp_watts == 150.0
    assert chip.pcie_gbps == 64.0
