"""Table III: the 10 DNN benchmarks — reproduced as compile-time statistics."""

from _tables import print_table

from repro.compiler.lowering import lower_graph
from repro.core.config import dtu2_config
from repro.graph.passes import optimize
from repro.graph.shape_inference import bind_shapes
from repro.models.zoo import TABLE_III, build


def _table3():
    chip = dtu2_config()
    rows = []
    for entry in TABLE_III:
        graph = bind_shapes(build(entry.name), batch=1)
        nodes_before = len(graph.nodes)
        optimized, report = optimize(graph)  # optimizes in place
        compiled = lower_graph(optimized, chip)
        rows.append(
            [
                entry.category,
                entry.display_name,
                entry.source,
                entry.input_size,
                nodes_before,
                len(compiled.kernels),
                f"{compiled.total_flops / 1e9:.1f}",
                f"{graph.weight_bytes() / 1e6:.0f}",
            ]
        )
    return rows


def test_table3_model_zoo(benchmark):
    rows = benchmark.pedantic(_table3, rounds=1, iterations=1)
    print_table(
        "Table III — DNN benchmarks (plus compile statistics)",
        ["Category", "DNN", "Source", "Input", "Nodes", "Kernels",
         "GFLOPs", "WeightsMB"],
        rows,
    )
    assert len(rows) == 10
    # Paper Table III rows, verbatim metadata.
    names = [row[1] for row in rows]
    assert names == [
        "Yolo v3", "CenterNet", "Retinaface", "VGG16", "Resnet50 v1.5",
        "Inception v4", "Unet", "SRResnet", "Bert large", "Conformer",
    ]
    inputs = {row[1]: row[3] for row in rows}
    assert inputs["Yolo v3"] == "3x608x608"
    assert inputs["Bert large"] == "384"
    assert inputs["Conformer"] == "80x401"
    # fusion must have shrunk every model
    assert all(row[5] < row[4] for row in rows)
