"""Table IV: AI inference accelerators adopted for evaluation."""

from _tables import print_table

from repro.perfmodel.devices import ALL_DEVICES, CLOUDBLAZER_I10, NVIDIA_A10, NVIDIA_T4


def _table4():
    return [
        [
            spec.name,
            spec.fp32_tflops,
            spec.fp16_tflops,
            spec.int8_tops,
            spec.memory_gb,
            spec.bandwidth_gbps,
            spec.tdp_watts,
            spec.technology_nm,
            spec.interconnect,
        ]
        for spec in ALL_DEVICES
    ]


def test_table4_accelerators(benchmark):
    rows = benchmark(_table4)
    print_table(
        "Table IV — accelerators adopted for evaluation",
        ["Device", "FP32", "FP16", "INT8", "GB", "GB/s", "TDP", "nm", "Link"],
        rows,
    )
    # Paper Table IV, verbatim.
    assert CLOUDBLAZER_I10.fp32_tflops == 20 and CLOUDBLAZER_I10.fp16_tflops == 80
    assert CLOUDBLAZER_I10.int8_tops == 80 and CLOUDBLAZER_I10.bandwidth_gbps == 512
    assert NVIDIA_T4.fp32_tflops == 8.1 and NVIDIA_T4.fp16_tflops == 65
    assert NVIDIA_T4.int8_tops == 130 and NVIDIA_T4.bandwidth_gbps == 320
    assert NVIDIA_T4.tdp_watts == 70 and NVIDIA_T4.interconnect == "PCIe3"
    assert NVIDIA_A10.fp32_tflops == 31.2 and NVIDIA_A10.fp16_tflops == 125
    assert NVIDIA_A10.int8_tops == 250 and NVIDIA_A10.memory_gb == 24
    assert NVIDIA_A10.bandwidth_gbps == 600 and NVIDIA_A10.technology_nm == 7
