"""Cloud inference serving: multi-tenancy on isolated processing groups.

The §IV-E / Fig. 7 scenario: a cloud operator packs several tenants onto
one Cloudblazer i20, sizing each tenant's slice by its workload —
"the processing group as the minimal unit for workload deployment". The
demo shows:

- the Fig. 7 sizing policy picking 1 / 2 / 3 groups per workload,
- hardware isolation (each tenant's groups are exclusively owned),
- the latency-vs-throughput trade the paper's §VI-D discusses, by sweeping
  VGG16 batch sizes against the analytical model.

Run: ``python examples/cloud_inference_service.py``
"""

from repro import Device, build_model, estimate_model, recommend_groups
from repro.core.accelerator import Accelerator


def serve_tenants() -> None:
    accelerator = Accelerator.cloudblazer_i20()
    device = Device(accelerator)
    chip = accelerator.chip

    workloads = {
        "vision-api (resnet50)": "resnet50",
        "ocr-service (unet)": "unet",
        "search-ranker (bert_large)": "bert_large",
    }

    print("=== tenant placement (Fig. 7 policy) ===")
    compiled = {}
    for tenant, model in workloads.items():
        compiled[tenant] = device.compile(build_model(model), batch=1)
        working_set = max(
            kernel.cost.boundary_bytes for kernel in compiled[tenant].kernels
        )
        # Fig. 7 recommendation, capped by what is still free (best-effort
        # placement, as a real scheduler would do under contention).
        groups = min(
            recommend_groups(working_set, chip),
            len(accelerator.resources.free_groups()),
        )
        assignment = accelerator.resources.assign(tenant, groups)
        placed = ", ".join(str(group) for group in assignment.groups)
        print(f"{tenant:<28} working set {working_set / 1e6:6.1f} MB "
              f"-> {groups} group(s): [{placed}]")

    accelerator.resources.verify_isolation()
    free = len(accelerator.resources.free_groups())
    print(f"isolation verified; {free} group(s) still free for burst traffic")

    print("\n=== serving (each tenant on its own slice) ===")
    for tenant in workloads:
        assignment = accelerator.resources.assignments[tenant]
        from repro.runtime.executor import Executor

        executor = Executor(accelerator)
        result = executor.run_on(compiled[tenant], assignment)
        print(f"{tenant:<28} {result.latency_ms:8.3f} ms  "
              f"{result.mean_power_watts:5.1f} W")

    for tenant in workloads:
        accelerator.resources.release(tenant)


def latency_vs_throughput() -> None:
    print("\n=== VGG16 latency vs throughput (§VI-D) ===")
    print(f"{'batch':>5} {'i20 ms':>9} {'i20 img/s':>10} {'A10 img/s':>10} "
          f"{'i20/A10':>8}")
    for batch in (1, 2, 4, 8, 16, 32):
        i20 = estimate_model("vgg16", "i20", batch=batch)
        a10 = estimate_model("vgg16", "a10", batch=batch)
        print(f"{batch:>5} {i20.latency_ms:>9.2f} "
              f"{i20.throughput_samples_per_s:>10.0f} "
              f"{a10.throughput_samples_per_s:>10.0f} "
              f"{a10.latency_ns / i20.latency_ns:>8.2f}")


if __name__ == "__main__":
    serve_tenants()
    latency_vs_throughput()
