"""INT8 deployment: quantize a network, verify accuracy, measure the win.

The i20's headline INT8 rate is 256 TOPS — 2x its FP16 rate (Table I) —
and the paper's methodology bounds accelerator-vs-CPU precision differences
(§VI-A). This example walks the full deployment flow on an executable CNN:

1. calibrate dynamic ranges on representative data,
2. fake-quantize every conv/GEMM operand to INT8,
3. verify the deviation from the FP reference executor,
4. estimate the latency and memory payoff across the zoo.

Run: ``python examples/int8_deployment.py``
"""

import numpy as np

from repro import MODEL_NAMES, DType, estimate_model
from repro.graph.builder import GraphBuilder
from repro.quant import calibrate, verify_accuracy, weight_compression_bytes


def build_deployable_cnn():
    builder = GraphBuilder("edge_classifier")
    x = builder.input("x", (8, 3, 32, 32))
    y = builder.conv2d(x, 32, 3, pad=1)
    y = builder.relu(y)
    y = builder.conv2d(y, 32, 3, pad=1)
    y = builder.relu(y)
    y = builder.max_pool(y, 2)
    y = builder.conv2d(y, 64, 3, pad=1)
    y = builder.relu(y)
    y = builder.global_avg_pool(y)
    y = builder.flatten(y)
    y = builder.dense(y, 100)
    y = builder.softmax(y)
    return builder.finish([y])


def main() -> None:
    graph = build_deployable_cnn()
    rng = np.random.default_rng(7)
    calibration_set = [{"x": rng.normal(size=(8, 3, 32, 32))} for _ in range(8)]
    validation_set = [{"x": rng.normal(size=(8, 3, 32, 32))} for _ in range(4)]

    print("=== post-training INT8 quantization ===")
    table = calibrate(graph, calibration_set)
    print(f"calibrated {len(table.abs_max)} tensor ranges over "
          f"{table.samples} batches")

    report = verify_accuracy(graph, table, validation_set)
    print(f"precision difference vs FP reference: "
          f"{report.precision_difference_percent:.3f}% mean, "
          f"{report.max_relative_error:.2%} max "
          f"(paper budget: 0.01-0.05% on trained logits)")
    print(f"top-1 agreement: {report.top1_agreement:.1%}")

    fp16_bytes, int8_bytes = weight_compression_bytes(graph)
    print(f"weights: {fp16_bytes / 1e3:.1f} KB FP16 -> "
          f"{int8_bytes / 1e3:.1f} KB INT8 ({fp16_bytes / int8_bytes:.2f}x)")

    print("\n=== INT8 latency across the Table III zoo (i20) ===")
    print(f"{'model':<14} {'FP16 ms':>9} {'INT8 ms':>9} {'speedup':>8}")
    for model in MODEL_NAMES:
        fp16 = estimate_model(model, "i20", dtype=DType.FP16)
        int8 = estimate_model(model, "i20", dtype=DType.INT8)
        print(f"{model:<14} {fp16.latency_ms:>9.3f} {int8.latency_ms:>9.3f} "
              f"{fp16.latency_ns / int8.latency_ns:>7.2f}x")


if __name__ == "__main__":
    main()
