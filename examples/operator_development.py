"""Operator development: the TopsEngine DSL flow, down to the metal.

§V-B gives developers two interfaces: a C-style language and "a customized
domain-specific language (DSL) exposing the architecture design details".
This example is the DSL path — a custom fused *bias + gelu* operator written
directly against the VLIW ISA, pushed through the real compiler back end
(packetizer with alias analysis, bank-conflict-free register allocation) and
executed bit-for-bit on the functional compute core. It finishes with the
§IV-A1 party trick: Top-K selection on the matrix engine's sorting facility.

Run: ``python examples/operator_development.py``
"""

import numpy as np

from repro.compiler.packetizer import packetize
from repro.compiler.regalloc import allocate_registers
from repro.engines.compute_core import ComputeCore
from repro.engines.matrix import MatrixEngine
from repro.engines.sorting import top_k
from repro.engines.vliw import Instruction


def build_bias_gelu_kernel() -> list[Instruction]:
    """Straight-line virtual-register code: out[i] = gelu(x[i] + bias[i]).

    Two independent 16-lane strips — the packetizer should overlap their
    loads and math across slots.
    """
    code: list[Instruction] = []
    for strip in range(2):
        base = strip * 10
        code += [
            Instruction("ld", f"t{base}", imm=(f"x{strip}",)),
            Instruction("ld", f"t{base + 1}", imm=(f"bias{strip}",)),
            Instruction("vadd", f"t{base + 2}", (f"t{base}", f"t{base + 1}")),
            Instruction("sfu", f"t{base + 3}", (f"t{base + 2}",), imm=("gelu",)),
            Instruction("st", None, (f"t{base + 3}",), imm=(f"out{strip}",)),
        ]
    return code


def main() -> None:
    print("=== custom operator: fused bias + gelu ===")
    virtual_code = build_bias_gelu_kernel()
    print(f"wrote {len(virtual_code)} instructions over virtual registers")

    program, schedule = packetize(virtual_code, alias_analysis=True)
    print(f"packetizer: {schedule.packets} packets, "
          f"ILP {schedule.ilp:.2f} instructions/packet, "
          f"{schedule.memory_edges} memory dependence edges")

    _, naive = packetize(virtual_code, alias_analysis=False)
    print(f"without alias analysis: {naive.packets} packets "
          f"({naive.memory_edges} ambiguous memory edges) — "
          "the §V-B enhancement at work")

    allocation = allocate_registers(program)
    print(f"register allocator: {allocation.conflicts_before} bank "
          f"conflict(s) -> {allocation.conflicts_after} after renaming")

    core = ComputeCore()
    rng = np.random.default_rng(0)
    inputs, biases = {}, {}
    for strip in range(2):
        inputs[strip] = rng.normal(size=16)
        biases[strip] = rng.normal(size=16)
        core.l1.write(f"x{strip}", inputs[strip])
        core.l1.write(f"bias{strip}", biases[strip])

    cycles = core.run(allocation.program)
    print(f"executed in {cycles} cycles ({core.stall_cycles} stall cycles)")

    import math

    for strip in range(2):
        got = core.l1.read(f"out{strip}")
        summed = inputs[strip] + biases[strip]
        want = 0.5 * summed * (1 + np.vectorize(math.erf)(summed / math.sqrt(2)))
        error = float(np.max(np.abs(got - want)))
        print(f"strip {strip}: max error vs exact gelu = {error:.2e}")
        assert error < 1e-3

    print("\n=== Top-K on the matrix-engine sorter (Fig. 4) ===")
    scores = rng.normal(size=1000)
    engine = MatrixEngine()
    values, indices = top_k(engine, scores, 5)
    print(f"top-5 of 1000 recommendation scores: "
          f"{[round(v, 3) for v in values.tolist()]}")
    print(f"at indices {indices.tolist()}; "
          f"used {engine.vmm_issued} VMM issues / {engine.macs_executed} MACs")
    assert np.allclose(values, np.sort(scores)[::-1][:5])
    print("matches numpy argsort — sorted entirely by vector-matrix products")


if __name__ == "__main__":
    main()
