"""Regenerate the paper's headline evaluation (Figs. 13 & 15) in one run.

Prints the per-model latency and energy-efficiency comparison of the
Cloudblazer i20 against the Nvidia T4 and A10 over all 10 Table III DNNs,
plus the geometric means the abstract quotes (2.22x / 1.16x performance,
1.04x / 1.17x energy efficiency).

Run: ``python examples/paper_evaluation.py``
(The benchmark harness under ``benchmarks/`` runs the same experiments with
shape assertions; this script is the human-readable tour.)
"""

from repro import MODEL_NAMES, energy_efficiency_ratio, estimate_model, geomean, speedup
from repro.models.zoo import entry


def main() -> None:
    header = (f"{'DNN':<16} {'i20 ms':>8} {'T4 ms':>8} {'A10 ms':>8} "
              f"{'i20/T4':>7} {'i20/A10':>8} {'eff/T4':>7} {'eff/A10':>8}")
    print("=== Fig. 13 + Fig. 15 — batch 1, FP16, normalized to T4 ===")
    print(header)
    print("-" * len(header))

    perf_t4, perf_a10, energy_t4, energy_a10 = [], [], [], []
    for model in MODEL_NAMES:
        i20 = estimate_model(model, "i20")
        t4 = estimate_model(model, "t4")
        a10 = estimate_model(model, "a10")
        s_t4 = speedup(model, "i20", "t4")
        s_a10 = speedup(model, "i20", "a10")
        e_t4 = energy_efficiency_ratio(model, "i20", "t4")
        e_a10 = energy_efficiency_ratio(model, "i20", "a10")
        perf_t4.append(s_t4)
        perf_a10.append(s_a10)
        energy_t4.append(e_t4)
        energy_a10.append(e_a10)
        print(f"{entry(model).display_name:<16} {i20.latency_ms:>8.3f} "
              f"{t4.latency_ms:>8.3f} {a10.latency_ms:>8.3f} "
              f"{s_t4:>6.2f}x {s_a10:>7.2f}x {e_t4:>6.2f}x {e_a10:>7.2f}x")

    print("-" * len(header))
    print(f"{'GeoMean':<16} {'':>8} {'':>8} {'':>8} "
          f"{geomean(perf_t4):>6.2f}x {geomean(perf_a10):>7.2f}x "
          f"{geomean(energy_t4):>6.2f}x {geomean(energy_a10):>7.2f}x")
    print(f"{'paper':<16} {'':>8} {'':>8} {'':>8} "
          f"{'2.22x':>7} {'1.16x':>8} {'1.04x':>7} {'1.17x':>8}")

    best = max(MODEL_NAMES, key=lambda model: speedup(model, "i20", "t4"))
    print(f"\nbiggest win: {entry(best).display_name} at "
          f"{speedup(best, 'i20', 't4'):.2f}x over T4 "
          f"(paper: SRResnet at 4.34x)")
    losses = [
        entry(model).display_name
        for model in MODEL_NAMES
        if speedup(model, "i20", "a10") < 1.0
    ]
    print(f"A10 wins on: {', '.join(losses)} (paper: 3 of 10, incl. VGG16 "
          f"and Inception v4 — see EXPERIMENTS.md for the divergence note)")


if __name__ == "__main__":
    main()
