"""Power management in action: the CPME/LPME + DVFS closed loop (§IV-F).

Replays the paper's §VI-D experiment interactively: ResNet-50 with power
management ON (clock free to move in 1.0-1.4 GHz) vs OFF (pinned at
1.4 GHz), then prints the governor's frequency residency and the
power-integrity ledger.

Run: ``python examples/power_management_demo.py``
"""

from repro import Device, FeatureFlags, build_model
from repro.core.accelerator import Accelerator


def run(power_management: bool):
    accelerator = Accelerator.cloudblazer_i20(
        FeatureFlags(power_management=power_management)
    )
    device = Device(accelerator)
    compiled = device.compile(build_model("resnet50"), batch=1)
    result = device.launch(compiled, num_groups=6)
    return result, accelerator


def main() -> None:
    on, accelerator = run(power_management=True)
    off, _ = run(power_management=False)

    print("=== ResNet-50 v1.5, power management ON vs OFF ===")
    print(f"{'':14} {'latency':>10} {'energy':>9} {'mean power':>11} {'clock':>7}")
    for label, result in (("ON (DVFS)", on), ("OFF (1.4GHz)", off)):
        print(f"{label:<14} {result.latency_ms:>8.3f}ms "
              f"{result.energy_joules * 1e3:>7.2f}mJ "
              f"{result.mean_power_watts:>9.1f} W "
              f"{result.mean_frequency_ghz:>6.2f}G")

    drop = on.latency_ns / off.latency_ns - 1
    gain = off.energy_joules / on.energy_joules - 1
    print(f"\nperformance drop {drop:+.2%} (paper: 0.85%), "
          f"energy-efficiency gain {gain:+.1%} (paper: 13%)")

    print("\n=== DVFS frequency residency (Fig. 10 loop) ===")
    profile = accelerator.dvfs.frequency_profile()
    total = sum(profile.values())
    for frequency in sorted(profile, reverse=True):
        share = profile[frequency] / total
        bar = "#" * int(40 * share)
        print(f"{frequency:.1f} GHz  {share:>5.1%}  {bar}")

    print("\n=== power-integrity ledger (CPME, Fig. 9) ===")
    cpme = accelerator.cpme
    print(f"board limit     {cpme.power_limit_watts:6.1f} W")
    print(f"committed       {cpme.committed_watts:6.1f} W")
    print(f"reserve         {cpme.reserve_watts:6.1f} W")
    print(f"grants issued   {cpme.grants_issued}")
    print(f"grants denied   {cpme.grants_denied}")
    assert cpme.committed_watts <= cpme.power_limit_watts + 1e-9
    print("invariant holds: committed budget never exceeds the board limit")


if __name__ == "__main__":
    main()
