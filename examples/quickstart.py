"""Quickstart: run ResNet-50 v1.5 on a simulated Cloudblazer i20.

The canonical user flow from the paper's Fig. 11 software stack:

1. get a model as a computation graph (here from the built-in zoo; your own
   graphs come from :class:`repro.GraphBuilder` or the ONNX-like importer),
2. compile it — TopsInference optimizes/fuses, TopsEngine tiles/tensorizes,
3. launch on the device and read back latency / power / per-op profile.

Run: ``python examples/quickstart.py``
"""

from repro import Device, Profile, build_model


def main() -> None:
    device = Device.open("i20")
    print(f"opened {device.accelerator.chip.name}: "
          f"{device.accelerator.chip.total_cores} cores, "
          f"{device.accelerator.chip.total_groups} processing groups")

    graph = build_model("resnet50")
    print(f"built {graph.name}: {len(graph.nodes)} operators, symbolic batch")

    compiled = device.compile(graph, batch=1)
    print(
        f"compiled to {len(compiled.kernels)} kernels "
        f"({compiled.fusion_groups} fused), "
        f"{compiled.total_flops / 1e9:.1f} GFLOPs, "
        f"{compiled.total_boundary_bytes / 1e6:.0f} MB off-chip traffic"
    )

    result = device.launch(compiled)
    print(
        f"\nlatency {result.latency_ms:.3f} ms | "
        f"throughput {result.throughput_samples_per_s():.0f} img/s | "
        f"mean power {result.mean_power_watts:.1f} W | "
        f"energy {result.energy_joules * 1e3:.2f} mJ | "
        f"mean clock {result.mean_frequency_ghz:.2f} GHz"
    )

    print("\nper-category profile:")
    print(Profile(compiled, result).summary())


if __name__ == "__main__":
    main()
