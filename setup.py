"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` falls back to this legacy path when
PEP 517 editable wheels are unavailable; configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
