"""repro — reproduction of "High Performance and Power Efficient Accelerator
for Cloud Inference" (HPCA 2023): the Enflame Cloudblazer i20 / DTU 2.0
accelerator, its software stack, and every experiment in the paper's
evaluation, as a pure-Python functional + performance model.

Quickstart::

    from repro import Device, build_model

    device = Device.open("i20")
    graph = build_model("resnet50")
    compiled = device.compile(graph, batch=1)
    result = device.launch(compiled)
    print(result.latency_ms, result.mean_power_watts)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core.accelerator import Accelerator
from repro.core.config import ChipConfig, FeatureFlags, dtu1_config, dtu2_config
from repro.core.datatypes import DType
from repro.core.resource import Assignment, ResourceManager, recommend_groups
from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph, Node, TensorType
from repro.graph.passes import optimize
from repro.graph.shape_inference import bind_shapes, infer_shapes
from repro.models.zoo import MODEL_NAMES, TABLE_III, build as build_model
from repro.obs import Observability
from repro.perfmodel.devices import ALL_DEVICES, DeviceSpec, device
from repro.perfmodel.latency import (
    ModelEstimate,
    energy_efficiency_ratio,
    estimate_model,
    geomean,
    speedup,
)
from repro.runtime.executor import ExecutionResult, Executor
from repro.runtime.profiler import Profile
from repro.runtime.runtime import Device
from repro.serving.fleet import FleetConfig, FleetManager, FleetReport

__version__ = "1.0.0"

__all__ = [
    "ALL_DEVICES", "Accelerator", "Assignment", "ChipConfig", "DType",
    "Device", "DeviceSpec", "ExecutionResult", "Executor", "FeatureFlags",
    "FleetConfig", "FleetManager", "FleetReport",
    "Graph", "GraphBuilder", "MODEL_NAMES", "ModelEstimate", "Node",
    "Observability", "Profile", "ResourceManager", "TABLE_III", "TensorType",
    "bind_shapes",
    "build_model", "device", "dtu1_config", "dtu2_config",
    "energy_efficiency_ratio", "estimate_model", "geomean", "infer_shapes",
    "optimize", "recommend_groups", "speedup",
]
