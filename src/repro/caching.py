"""Content-addressed compilation and measurement caches.

The compiler pipeline (optimize -> lower) and the serving layer's
service-time measurement (a full simulator run per tenant model) are both
pure functions of their inputs: graphs are value objects with a stable
:meth:`~repro.graph.ir.Graph.structural_hash`, chip configs are frozen
dataclasses, and the discrete-event simulator is deterministic. That makes
their outputs safe to memoize process-wide:

- :class:`CompileCache` keys compiled models on (graph structural hash,
  chip config, dtype, fusion flag). ``Device.compile`` consults the shared
  :data:`COMPILE_CACHE` by default, so recompiling the same bound graph on
  an identical chip is a dictionary lookup.
- :class:`MeasurementCache` memoizes
  :func:`repro.serving.server.measure_service_time_ns` on
  (compiled-model identity, group count, chip config), so constructing a
  second :class:`~repro.serving.server.InferenceServer` over the same
  tenant set — or re-deriving degraded-mode service times — costs zero
  additional simulator runs.

Both caches keep monotonic hit/miss/invalidation counters
(:class:`CacheStats`) and can mirror them into a
:class:`repro.obs.MetricsRegistry` via :func:`export_cache_metrics`; the
``repro profile`` CLI prints the same snapshot. Invalidation is explicit:
``invalidate(key)``, ``clear()``, or :func:`reset_global_caches` (which
tests use for isolation). Entries are bounded FIFO — at ``capacity`` the
oldest insertion is evicted.

Thread safety: every public method takes the cache's lock, so concurrent
compiles from serving worker threads cannot corrupt the table (they may
race to build the same entry; last put wins, which is harmless because
builds are deterministic).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

__all__ = [
    "CacheStats",
    "CompileCache",
    "MeasurementCache",
    "COMPILE_CACHE",
    "MEASUREMENT_CACHE",
    "export_cache_metrics",
    "reset_global_caches",
]


@dataclass
class CacheStats:
    """Monotonic lookup accounting for one cache."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class _KeyedCache:
    """Bounded FIFO map with stats; base of both caches."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key):
        """Cached value or None; counts a hit or a miss."""
        with self._lock:
            if key in self._entries:
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, key, value) -> None:
        with self._lock:
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def get_or_build(self, key, builder):
        """Return the cached value, building (and storing) it on a miss."""
        cached = self.get(key)
        if cached is not None:
            return cached
        value = builder()
        self.put(key, value)
        return value

    def invalidate(self, key) -> bool:
        """Drop one entry; True if it existed."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.stats.invalidations += 1
                return True
            return False

    def clear(self) -> int:
        """Drop every entry, returning how many were evicted."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += count
            return count

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries


class CompileCache(_KeyedCache):
    """Content-addressed store of :class:`~repro.compiler.lowering.CompiledModel`.

    Keys come from :meth:`key_for`: the *bound* graph's structural hash
    (so shape bindings are covered), the chip config's repr (clock,
    geometry, feature flags — frozen dataclass, deterministic repr), the
    target dtype and the resolved fusion flag. Compiled models are never
    mutated after lowering, so hits return the shared instance.
    """

    @staticmethod
    def key_for(
        graph, chip, dtype, fusion: bool, verified: bool = False
    ) -> tuple:
        """Content-address one compile.

        ``verified`` separates guard-checked compiles from plain ones: a
        fusion-guard fallback must not poison the unverified entry (and
        vice versa), so the two flavours get distinct keys.
        """
        return (
            graph.structural_hash(),
            repr(chip),
            dtype.name,
            bool(fusion),
            bool(verified),
        )


class MeasurementCache(_KeyedCache):
    """Memo for simulator-measured per-request service times.

    Keyed on (model name, group count):
    :func:`repro.serving.server.measure_service_time_ns` always builds a
    fresh i20 from the model-zoo name, and the simulator is deterministic,
    so the memoized latency equals what a re-measurement would produce.
    The memo is bypassed whenever the measurement carries observable side
    effects (an attached obs hub or fault plan) — those runs must actually
    happen so their spans and fault timelines exist.
    """

    @staticmethod
    def key_for(model: str, groups: int) -> tuple:
        return (model, int(groups))


#: process-wide caches; ``Device.compile`` and ``measure_service_time_ns``
#: use these unless handed an explicit cache (or None to bypass).
COMPILE_CACHE = CompileCache()
MEASUREMENT_CACHE = MeasurementCache()


def reset_global_caches() -> None:
    """Empty both global caches and zero their stats (test isolation)."""
    for cache in (COMPILE_CACHE, MEASUREMENT_CACHE):
        cache.clear()
        cache.stats = CacheStats()


def export_cache_metrics(registry) -> None:
    """Mirror cache stats into a metrics registry as gauges.

    Gauges (not counters) because this is a point-in-time snapshot of
    monotonic totals owned by the caches; calling it twice must not
    double-count. Per-lookup counters are additionally emitted by
    ``Device.compile`` / ``measure_service_time_ns`` when an
    observability hub is attached.
    """
    for name, cache in (("compile", COMPILE_CACHE), ("measurement", MEASUREMENT_CACHE)):
        labels = {"cache": name}
        registry.gauge("cache_hits", "cache lookup hits").set(
            cache.stats.hits, **labels
        )
        registry.gauge("cache_misses", "cache lookup misses").set(
            cache.stats.misses, **labels
        )
        registry.gauge("cache_invalidations", "entries explicitly dropped").set(
            cache.stats.invalidations, **labels
        )
        registry.gauge("cache_entries", "live cache entries").set(
            len(cache), **labels
        )
        registry.gauge("cache_hit_rate", "hits / lookups").set(
            cache.stats.hit_rate, **labels
        )
