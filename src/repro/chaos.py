"""Chaos harness: scripted fault storms + declared invariants over the fleet.

PR 1 gave the stack RAS machinery; this module *proves* it holds. A
:class:`ChaosScenario` scripts a seeded storm campaign — transient bursts,
ramped degradation, hard device kills, correlated multi-board outages —
as a :class:`~repro.faults.schedule.FaultSchedule` over a
:class:`~repro.serving.fleet.FleetManager`, then checks every declared
invariant against the resulting :class:`~repro.serving.fleet.FleetReport`:

- **conservation** — no request is silently dropped:
  ``served + failed + shed == offered`` for every tenant;
- **availability-floor** — among requests arriving while >= 1 replica was
  active, the served fraction stays above the scenario's floor;
- **monotone-time** — the fleet timeline never runs backwards: lifecycle
  events are time-ordered per device and nothing outruns the horizon;
- **obs-consistency** — the metrics registry the run exported agrees
  exactly with the report (no counter drift between telemetry and truth).

Determinism is part of the contract: one root seed derives every stream
(see :mod:`repro.seeding`), so ``run_suite(seed=7)`` twice produces
byte-identical JSON reports — pinned by tests and cheap to bisect when a
scenario regresses. The ``repro chaos`` CLI runs the built-in suite
(``--quick`` for the CI smoke subset) and exits non-zero on any invariant
violation. docs/robustness.md documents the scenario format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from repro.faults.plan import FaultPlan
from repro.faults.schedule import FaultSchedule, StormPhase
from repro.obs import Observability
from repro.seeding import derive_seed
from repro.serving.fleet import FleetConfig, FleetManager, FleetReport
from repro.serving.server import RasConfig, TenantConfig
from repro.serving.workload import TrafficPattern, generate_trace

__all__ = [
    "ChaosScenario",
    "INVARIANTS",
    "SCENARIOS",
    "ScenarioResult",
    "SuiteResult",
    "render_table",
    "run_scenario",
    "run_suite",
    "scenario_names",
]


# ---------------------------------------------------------------------------
# scenario definition
# ---------------------------------------------------------------------------

#: Synthetic service times scenarios default to (tenant -> ns). Keeps the
#: suite fast and byte-stable; pass ``measured=True`` to run_scenario /
#: run_suite to use memoized detailed-simulator measurements instead.
DEFAULT_SERVICE_TIMES_NS: dict[str, float] = {"a": 1.0e6, "b": 5.0e6}

_DEFAULT_TENANTS = (
    TenantConfig("a", "resnet50", groups=2, max_batch=1, sla_ms=50.0),
    TenantConfig("b", "unet", groups=3, max_batch=1, sla_ms=None),
)
_DEFAULT_TRAFFIC = (
    TrafficPattern("a", 240.0),
    TrafficPattern("b", 40.0),
)


@dataclass(frozen=True)
class ChaosScenario:
    """One scripted storm campaign plus the floor it must respect."""

    name: str
    description: str
    schedule: FaultSchedule
    duration_s: float = 0.5
    tenants: tuple[TenantConfig, ...] = _DEFAULT_TENANTS
    traffic: tuple[TrafficPattern, ...] = _DEFAULT_TRAFFIC
    fleet: FleetConfig = FleetConfig(replicas=2, hot_spares=1, repair_ms=60.0)
    ras: RasConfig = RasConfig(max_retries=2, queue_depth_limit=64)
    availability_floor: float = 0.95
    """Minimum served fraction among requests arriving while >= 1 replica
    was active (the availability-floor invariant)."""
    quick: bool = True
    """Included in the ``--quick`` CI smoke subset."""


@dataclass
class ScenarioResult:
    """One scenario's outcome: the fleet report + invariant verdicts."""

    scenario: ChaosScenario
    report: FleetReport
    violations: list[str]

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.name,
            "passed": self.passed,
            "violations": list(self.violations),
            "availability_floor": self.scenario.availability_floor,
            "report": self.report.to_dict(),
        }


@dataclass
class SuiteResult:
    """A full chaos run: scenario results in declared order."""

    seed: int
    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "passed": self.passed,
            "results": [result.to_dict() for result in self.results],
        }

    def to_json(self) -> str:
        """Canonical JSON: byte-identical for identical runs."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# the invariant catalogue
# ---------------------------------------------------------------------------

def _check_conservation(scenario, report, registry) -> list[str]:
    """No request silently dropped: served + failed + shed == offered."""
    violations = []
    for name, stats in sorted(report.tenants.items()):
        accounted = stats.served + stats.failed + stats.shed
        if accounted != stats.offered:
            violations.append(
                f"conservation: tenant {name!r} accounted {accounted} of "
                f"{stats.offered} offered requests"
            )
    return violations


def _check_availability_floor(scenario, report, registry) -> list[str]:
    """Availability among requests arriving with >= 1 active replica."""
    violations = []
    for name, stats in sorted(report.tenants.items()):
        achieved = stats.availability_while_healthy
        if achieved < scenario.availability_floor:
            violations.append(
                f"availability-floor: tenant {name!r} served "
                f"{achieved:.4f} < floor {scenario.availability_floor} "
                f"while >= 1 replica was healthy"
            )
    return violations


def _check_monotone_time(scenario, report, registry) -> list[str]:
    """The fleet timeline never runs backwards."""
    violations = []
    last_per_device: dict[str, float] = {}
    for event in report.events:
        if event.time_ns < 0:
            violations.append(
                f"monotone-time: event {event.kind!r} on {event.device} at "
                f"negative time {event.time_ns}"
            )
        previous = last_per_device.get(event.device)
        if previous is not None and event.time_ns < previous:
            violations.append(
                f"monotone-time: {event.device} event {event.kind!r} at "
                f"{event.time_ns} precedes earlier event at {previous}"
            )
        last_per_device[event.device] = event.time_ns
        if event.time_ns > report.horizon_ns:
            violations.append(
                f"monotone-time: event {event.kind!r} at {event.time_ns} "
                f"beyond horizon {report.horizon_ns}"
            )
    return violations


def _check_obs_consistency(scenario, report, registry) -> list[str]:
    """Exported fleet metrics agree exactly with the report."""
    if registry is None:
        return []
    violations = []
    expectations = {
        "fleet_failovers_total": report.failovers,
        "fleet_hedged_requests_total": report.hedged_requests,
        "fleet_quarantines_total": report.quarantines,
        "fleet_repairs_total": report.repairs,
        "fleet_reintegrations_total": report.reintegrations,
        "fleet_promotions_total": report.promotions,
    }
    for name, expected in sorted(expectations.items()):
        metric = registry.get(name)
        actual = metric.total() if metric is not None else 0.0
        if actual != float(expected):
            violations.append(
                f"obs-consistency: {name} exported {actual} but the "
                f"report says {expected}"
            )
    healthy = registry.get("fleet_healthy_replicas")
    if healthy is None or healthy.value() != float(report.final_healthy):
        violations.append(
            "obs-consistency: fleet_healthy_replicas gauge disagrees with "
            f"report final_healthy={report.final_healthy}"
        )
    requests = registry.get("fleet_requests_total")
    for name, stats in sorted(report.tenants.items()):
        for status, expected in (
            ("served", stats.served),
            ("failed", stats.failed),
            ("shed", stats.shed),
        ):
            actual = (
                requests.value(tenant=name, status=status)
                if requests is not None else 0.0
            )
            if actual != float(expected):
                violations.append(
                    f"obs-consistency: fleet_requests_total"
                    f"{{tenant={name},status={status}}} exported {actual} "
                    f"but the report says {expected}"
                )
    return violations


#: Declared invariants, checked in order after every scenario. Each entry
#: is ``(name, check(scenario, report, registry) -> [violation, ...])``.
INVARIANTS = (
    ("conservation", _check_conservation),
    ("availability-floor", _check_availability_floor),
    ("monotone-time", _check_monotone_time),
    ("obs-consistency", _check_obs_consistency),
)


# ---------------------------------------------------------------------------
# built-in scenario suite
# ---------------------------------------------------------------------------

def _builtin_scenarios() -> dict[str, ChaosScenario]:
    scenarios = [
        ChaosScenario(
            name="baseline",
            description="no faults: the fleet must be lossless and exact",
            schedule=FaultSchedule(),
            availability_floor=1.0,
        ),
        ChaosScenario(
            name="transient-storm",
            description="mid-run burst of DMA/ECC transients on every board",
            schedule=FaultSchedule(
                phases=(
                    StormPhase(
                        start_s=0.15, end_s=0.35,
                        plan=FaultPlan(
                            dma_corrupt_rate=0.004, ecc_ce_rate=0.004,
                        ),
                    ),
                ),
            ),
            availability_floor=0.98,
        ),
        ChaosScenario(
            name="replica-kill",
            description=(
                "replica r1 dies mid-run; hedged failover keeps every "
                "request alive while it quarantines, repairs, reintegrates"
            ),
            schedule=FaultSchedule(
                phases=(StormPhase.kill(device=1, at_s=0.15, duration_s=0.2),),
            ),
            fleet=FleetConfig(
                replicas=2, hot_spares=1, repair_ms=60.0,
                quarantine_threshold=2,
            ),
            availability_floor=0.99,
        ),
        ChaosScenario(
            name="rolling-ramp",
            description="fault pressure ramping from zero across the fleet",
            schedule=FaultSchedule(
                phases=(
                    StormPhase(
                        start_s=0.0, end_s=0.5,
                        plan=FaultPlan(
                            dma_corrupt_rate=0.006, ecc_ce_rate=0.006,
                            dma_abort_rate=0.0015,
                        ),
                        ramp=True,
                    ),
                ),
            ),
            availability_floor=0.95,
            quick=False,
        ),
        ChaosScenario(
            name="correlated-outage",
            description=(
                "two boards killed in overlapping windows: spares promote, "
                "survivors absorb the hedges"
            ),
            schedule=FaultSchedule(
                phases=(
                    StormPhase.kill(device=0, at_s=0.1, duration_s=0.15),
                    StormPhase.kill(device=1, at_s=0.15, duration_s=0.15),
                ),
            ),
            fleet=FleetConfig(
                replicas=3, hot_spares=1, repair_ms=80.0,
                quarantine_threshold=2,
            ),
            availability_floor=0.95,
            quick=False,
        ),
    ]
    return {scenario.name: scenario for scenario in scenarios}


SCENARIOS: dict[str, ChaosScenario] = _builtin_scenarios()


def scenario_names(quick: bool = False) -> list[str]:
    """Built-in scenario names, optionally only the CI smoke subset."""
    return [
        name for name, scenario in SCENARIOS.items()
        if scenario.quick or not quick
    ]


# ---------------------------------------------------------------------------
# running
# ---------------------------------------------------------------------------

def run_scenario(
    scenario: ChaosScenario,
    seed: int = 0,
    obs: Observability | None = None,
    measured: bool = False,
) -> ScenarioResult:
    """Run one scenario and check every declared invariant.

    ``seed`` is the *root* seed: the scenario's fleet seed and traffic
    seed both derive from it (``scenario:<name>`` / ``trace:<name>``
    streams), so one root reproduces the entire suite. With
    ``measured=True`` the fleet uses detailed-simulator service times
    (memoized process-wide) instead of the synthetic defaults.
    """
    own_obs = obs if obs is not None else Observability()
    fleet_config = replace(
        scenario.fleet, seed=derive_seed(seed, "scenario", scenario.name)
    )
    service_times = None if measured else dict(DEFAULT_SERVICE_TIMES_NS)
    if service_times is not None:
        missing = [
            t.name for t in scenario.tenants if t.name not in service_times
        ]
        for name in missing:
            service_times[name] = 2.0e6
    manager = FleetManager(
        list(scenario.tenants),
        config=fleet_config,
        schedule=scenario.schedule,
        ras=scenario.ras,
        obs=own_obs,
        service_times_ns=service_times,
    )
    trace = generate_trace(
        list(scenario.traffic),
        duration_s=scenario.duration_s,
        seed=derive_seed(seed, "trace", scenario.name) % 2**32,
    )
    report = manager.run(trace)
    violations: list[str] = []
    for _name, check in INVARIANTS:
        violations.extend(check(scenario, report, own_obs.metrics))
    return ScenarioResult(
        scenario=scenario, report=report, violations=violations
    )


def run_suite(
    names: list[str] | None = None,
    seed: int = 0,
    quick: bool = False,
    measured: bool = False,
) -> SuiteResult:
    """Run a set of built-in scenarios (all, the quick subset, or named)."""
    selected = names if names is not None else scenario_names(quick=quick)
    suite = SuiteResult(seed=seed)
    for name in selected:
        if name not in SCENARIOS:
            raise KeyError(
                f"unknown chaos scenario {name!r}; "
                f"choose from {sorted(SCENARIOS)}"
            )
        suite.results.append(
            run_scenario(SCENARIOS[name], seed=seed, measured=measured)
        )
    return suite


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def render_table(suite: SuiteResult) -> str:
    """The ``repro chaos`` scenario table, one row per scenario."""
    header = (
        f"{'scenario':<18} {'offered':>7} {'served':>6} {'fail':>5} "
        f"{'shed':>5} {'hedge':>5} {'fovr':>5} {'quar':>5} {'reint':>5} "
        f"{'healthy':>8} {'avail':>7}  result"
    )
    lines = [header, "-" * len(header)]
    for result in suite.results:
        report = result.report
        offered = sum(s.offered for s in report.tenants.values())
        served = sum(s.served for s in report.tenants.values())
        failed = sum(s.failed for s in report.tenants.values())
        shed = sum(s.shed for s in report.tenants.values())
        availability = min(
            (s.availability_while_healthy for s in report.tenants.values()),
            default=1.0,
        )
        healthy = f"{report.min_healthy}/{report.final_healthy}"
        verdict = "PASS" if result.passed else "FAIL"
        lines.append(
            f"{result.scenario.name:<18} {offered:>7} {served:>6} "
            f"{failed:>5} {shed:>5} {report.hedged_requests:>5} "
            f"{report.failovers:>5} {report.quarantines:>5} "
            f"{report.reintegrations:>5} {healthy:>8} "
            f"{availability:>6.1%}  {verdict}"
        )
        for violation in result.violations:
            lines.append(f"    ! {violation}")
    lines.append("-" * len(header))
    verdict = "PASS" if suite.passed else "FAIL"
    lines.append(
        f"{len(suite.results)} scenarios, seed {suite.seed}: {verdict}"
    )
    return "\n".join(lines)
