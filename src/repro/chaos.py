"""Chaos harness: scripted fault storms + declared invariants over the fleet.

PR 1 gave the stack RAS machinery; this module *proves* it holds. A
:class:`ChaosScenario` scripts a seeded storm campaign — transient bursts,
ramped degradation, hard device kills, correlated multi-board outages —
as a :class:`~repro.faults.schedule.FaultSchedule` over a
:class:`~repro.serving.fleet.FleetManager`, then checks every declared
invariant against the resulting :class:`~repro.serving.fleet.FleetReport`:

- **conservation** — no request is silently dropped:
  ``served + failed + shed == offered`` for every tenant;
- **availability-floor** — among requests arriving while >= 1 replica was
  active, the served fraction stays above the scenario's floor;
- **monotone-time** — the fleet timeline never runs backwards: lifecycle
  events are time-ordered per device and nothing outruns the horizon;
- **obs-consistency** — the metrics registry the run exported agrees
  exactly with the report (no counter drift between telemetry and truth);
- **end-to-end-correctness** — under a declared SDC defense, every
  injected silent corruption is either detected or within the scenario's
  served-corruption budget, with bounded detection latency, and a
  defenses-off control rerun proves the storm actually corrupts.

Determinism is part of the contract: one root seed derives every stream
(see :mod:`repro.seeding`), so ``run_suite(seed=7)`` twice produces
byte-identical JSON reports — pinned by tests and cheap to bisect when a
scenario regresses. The ``repro chaos`` CLI runs the built-in suite
(``--quick`` for the CI smoke subset) and exits non-zero on any invariant
violation. docs/robustness.md documents the scenario format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from repro.faults.plan import FaultPlan
from repro.faults.schedule import FaultSchedule, StormPhase
from repro.obs import Observability
from repro.seeding import derive_seed
from repro.serving.admission import AdmissionPolicy, SloClass
from repro.serving.autoscale import AutoscalerConfig
from repro.serving.fleet import FleetConfig, FleetManager, FleetReport
from repro.serving.loadgen import LoadSpec, generate_load
from repro.serving.powercap import PowerCapConfig, PowerCapPhase
from repro.serving.sdc import SdcConfig
from repro.sim.parallel import prewarm_measurements, run_sharded
from repro.serving.server import RasConfig, TenantConfig
from repro.serving.workload import Request, TrafficPattern, generate_trace

__all__ = [
    "ChaosScenario",
    "INVARIANTS",
    "SCENARIOS",
    "ScenarioResult",
    "SuiteResult",
    "declared_invariants",
    "render_table",
    "run_scenario",
    "run_suite",
    "scenario_names",
]


# ---------------------------------------------------------------------------
# scenario definition
# ---------------------------------------------------------------------------

#: Synthetic service times scenarios default to (tenant -> ns). Keeps the
#: suite fast and byte-stable; pass ``measured=True`` to run_scenario /
#: run_suite to use memoized detailed-simulator measurements instead.
DEFAULT_SERVICE_TIMES_NS: dict[str, float] = {"a": 1.0e6, "b": 5.0e6}

_DEFAULT_TENANTS = (
    TenantConfig("a", "resnet50", groups=2, max_batch=1, sla_ms=50.0),
    TenantConfig("b", "unet", groups=3, max_batch=1, sla_ms=None),
)
_DEFAULT_TRAFFIC = (
    TrafficPattern("a", 240.0),
    TrafficPattern("b", 40.0),
)


@dataclass(frozen=True)
class ChaosScenario:
    """One scripted storm campaign plus the floor it must respect."""

    name: str
    description: str
    schedule: FaultSchedule
    duration_s: float = 0.5
    tenants: tuple[TenantConfig, ...] = _DEFAULT_TENANTS
    traffic: tuple[TrafficPattern, ...] = _DEFAULT_TRAFFIC
    fleet: FleetConfig = FleetConfig(replicas=2, hot_spares=1, repair_ms=60.0)
    ras: RasConfig = RasConfig(max_retries=2, queue_depth_limit=64)
    availability_floor: float = 0.95
    """Minimum served fraction among requests arriving while >= 1 replica
    was active (the availability-floor invariant)."""
    quick: bool = True
    """Included in the ``--quick`` CI smoke subset."""
    load: tuple[LoadSpec, ...] = ()
    """Open-loop loadgen specs; when non-empty they replace ``traffic``
    (the overload scenarios drive flash crowds through these)."""
    admission: AdmissionPolicy | None = None
    """SLO-class admission policy the fleet runs under (None = legacy
    flat queue-depth admission)."""
    autoscaler: AutoscalerConfig | None = None
    """Autoscaler control loop (None = static replica count)."""
    class_availability_floors: tuple[tuple[str, float], ...] = ()
    """Per-SLO-class floors on availability-while-healthy, aggregated
    across tenants — how 'interactive survives while batch sheds' is
    stated as an invariant."""
    overload_multipliers: tuple[float, ...] = ()
    """Offered-load multipliers for the shed-monotonicity sweep: the shed
    rate must be non-decreasing across these (run in order)."""
    max_scale_reversals: int = 2
    """Autoscaler-convergence bound: up/down direction flips allowed."""
    powercap: PowerCapConfig | None = None
    """Fleet power governor attached to the run (None = no power
    capping; the report then has no ``power`` section and stays
    byte-identical to pre-governor builds)."""
    cap_multipliers: tuple[float, ...] = ()
    """Fleet-budget multipliers for the cap-monotonicity sweep, run in
    declared order (loosest first): total modelled energy must be
    non-increasing as the whole storm's budget tightens. Scenarios size
    their budgets inside the DVFS-dominated region where this holds —
    deep stall-throttling inverts it (docs/power.md)."""
    sdc: SdcConfig | None = None
    """Silent-data-corruption defense the fleet runs under (None = no
    tracker; the report then has no ``sdc`` section and stays
    byte-identical to pre-SDC builds). Scenarios that set this also get
    a defenses-off control rerun proving the storm actually corrupts."""
    max_sdc_served: int = 0
    """End-to-end-correctness ceiling: corruption events allowed to
    reach a client undetected under the declared defense."""
    sdc_detection_latency_ms: float | None = None
    """Bound on the worst injection-to-detection latency of caught
    events (None = unbounded)."""


@dataclass
class ScenarioResult:
    """One scenario's outcome: the fleet report + invariant verdicts."""

    scenario: ChaosScenario
    report: FleetReport
    violations: list[str]
    sweep: list[dict] | None = None
    """Shed-monotonicity sweep rows (one per overload multiplier), when
    the scenario declares ``overload_multipliers``."""
    cap_sweep: list[dict] | None = None
    """Cap-monotonicity sweep rows (one per cap multiplier), when the
    scenario declares ``cap_multipliers``. The key is omitted from
    ``to_dict`` otherwise so pre-governor suite JSON stays byte-stable."""
    sdc_control: dict | None = None
    """The defenses-off control rerun's ``sdc`` report section, when the
    scenario declares an :class:`SdcConfig` — same seed, same storm, no
    detection — proving the defended zero is not vacuous. The key is
    omitted from ``to_dict`` otherwise so pre-SDC suite JSON stays
    byte-stable."""

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        data = {
            "scenario": self.scenario.name,
            "passed": self.passed,
            "violations": list(self.violations),
            "availability_floor": self.scenario.availability_floor,
            "report": self.report.to_dict(),
            "sweep": self.sweep,
        }
        if self.cap_sweep is not None:
            data["cap_sweep"] = self.cap_sweep
        if self.sdc_control is not None:
            data["sdc_control"] = self.sdc_control
        return data


@dataclass
class SuiteResult:
    """A full chaos run: scenario results in declared order."""

    seed: int
    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "passed": self.passed,
            "results": [result.to_dict() for result in self.results],
        }

    def to_json(self) -> str:
        """Canonical JSON: byte-identical for identical runs."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# the invariant catalogue
# ---------------------------------------------------------------------------

def _check_conservation(scenario, report, registry) -> list[str]:
    """No request silently dropped: served + failed + shed == offered."""
    violations = []
    for name, stats in sorted(report.tenants.items()):
        accounted = stats.served + stats.failed + stats.shed
        if accounted != stats.offered:
            violations.append(
                f"conservation: tenant {name!r} accounted {accounted} of "
                f"{stats.offered} offered requests"
            )
    return violations


def _check_availability_floor(scenario, report, registry) -> list[str]:
    """Availability among requests arriving with >= 1 active replica."""
    violations = []
    for name, stats in sorted(report.tenants.items()):
        achieved = stats.availability_while_healthy
        if achieved < scenario.availability_floor:
            violations.append(
                f"availability-floor: tenant {name!r} served "
                f"{achieved:.4f} < floor {scenario.availability_floor} "
                f"while >= 1 replica was healthy"
            )
    return violations


def _check_monotone_time(scenario, report, registry) -> list[str]:
    """The fleet timeline never runs backwards."""
    violations = []
    last_per_device: dict[str, float] = {}
    for event in report.events:
        if event.time_ns < 0:
            violations.append(
                f"monotone-time: event {event.kind!r} on {event.device} at "
                f"negative time {event.time_ns}"
            )
        previous = last_per_device.get(event.device)
        if previous is not None and event.time_ns < previous:
            violations.append(
                f"monotone-time: {event.device} event {event.kind!r} at "
                f"{event.time_ns} precedes earlier event at {previous}"
            )
        last_per_device[event.device] = event.time_ns
        if event.time_ns > report.horizon_ns:
            violations.append(
                f"monotone-time: event {event.kind!r} at {event.time_ns} "
                f"beyond horizon {report.horizon_ns}"
            )
    return violations


def _check_obs_consistency(scenario, report, registry) -> list[str]:
    """Exported fleet metrics agree exactly with the report."""
    if registry is None:
        return []
    violations = []
    expectations = {
        "fleet_failovers_total": report.failovers,
        "fleet_hedged_requests_total": report.hedged_requests,
        "fleet_quarantines_total": report.quarantines,
        "fleet_repairs_total": report.repairs,
        "fleet_reintegrations_total": report.reintegrations,
        "fleet_promotions_total": report.promotions,
    }
    for name, expected in sorted(expectations.items()):
        metric = registry.get(name)
        actual = metric.total() if metric is not None else 0.0
        if actual != float(expected):
            violations.append(
                f"obs-consistency: {name} exported {actual} but the "
                f"report says {expected}"
            )
    healthy = registry.get("fleet_healthy_replicas")
    if healthy is None or healthy.value() != float(report.final_healthy):
        violations.append(
            "obs-consistency: fleet_healthy_replicas gauge disagrees with "
            f"report final_healthy={report.final_healthy}"
        )
    requests = registry.get("fleet_requests_total")
    for name, stats in sorted(report.tenants.items()):
        for status, expected in (
            ("served", stats.served),
            ("failed", stats.failed),
            ("shed", stats.shed),
        ):
            actual = (
                requests.value(tenant=name, status=status)
                if requests is not None else 0.0
            )
            if actual != float(expected):
                violations.append(
                    f"obs-consistency: fleet_requests_total"
                    f"{{tenant={name},status={status}}} exported {actual} "
                    f"but the report says {expected}"
                )
    return violations


def _check_class_conservation(scenario, report, registry) -> list[str]:
    """Per-SLO-class conservation + the interactive protection pledge.

    Every class accounts all its requests, and no class with shed
    priority 0 (``interactive``) is ever brownout-shed — an admitted-or-
    shed-with-reason ledger, never a silent drop.
    """
    if scenario.admission is None:
        return []
    violations = []
    protected = {
        cls.name for cls in scenario.admission.classes
        if cls.shed_priority == 0
    }
    for name, stats in sorted(report.tenants.items()):
        class_total = 0
        for slo_class, entry in sorted(stats.by_class.items()):
            accounted = entry.served + entry.failed + entry.shed
            class_total += entry.offered
            if accounted != entry.offered:
                violations.append(
                    f"class-conservation: tenant {name!r} class "
                    f"{slo_class!r} accounted {accounted} of "
                    f"{entry.offered} offered requests"
                )
            if slo_class in protected and entry.shed_for("brownout"):
                violations.append(
                    f"class-conservation: protected class {slo_class!r} of "
                    f"tenant {name!r} was brownout-shed "
                    f"{entry.shed_for('brownout')} times"
                )
        if class_total != stats.offered:
            violations.append(
                f"class-conservation: tenant {name!r} class breakdown "
                f"covers {class_total} of {stats.offered} offered requests"
            )
    return violations


def _check_class_availability_floors(scenario, report, registry) -> list[str]:
    """Per-class availability-while-healthy floors (across tenants)."""
    violations = []
    for slo_class, floor in scenario.class_availability_floors:
        served = 0
        eligible = 0
        for stats in report.tenants.values():
            entry = stats.by_class.get(slo_class)
            if entry is None:
                continue
            served += entry.served
            eligible += entry.offered - entry.shed_for("no-capacity")
        achieved = served / eligible if eligible else 1.0
        if achieved < floor:
            violations.append(
                f"class-availability-floor: class {slo_class!r} served "
                f"{achieved:.4f} < floor {floor} while >= 1 replica "
                f"was healthy"
            )
    return violations


def _check_brownout_ordering(scenario, report, registry) -> list[str]:
    """Brownout sheds batch before standard before interactive.

    If a class with a *lower* shed priority took brownout sheds, every
    class shedding *earlier* (higher priority) that saw traffic must have
    taken some too — degradation never skips over the sacrificial tier.
    """
    if scenario.admission is None:
        return []
    violations = []
    brownout: dict[str, int] = {}
    offered: dict[str, int] = {}
    for stats in report.tenants.values():
        for slo_class, entry in stats.by_class.items():
            brownout[slo_class] = (
                brownout.get(slo_class, 0) + entry.shed_for("brownout")
            )
            offered[slo_class] = offered.get(slo_class, 0) + entry.offered
    priorities = {
        cls.name: cls.shed_priority for cls in scenario.admission.classes
    }
    for lower, lower_priority in sorted(priorities.items()):
        if lower_priority == 0 or not brownout.get(lower, 0):
            continue
        for higher, higher_priority in sorted(priorities.items()):
            if (
                higher_priority > lower_priority
                and offered.get(higher, 0) > 0
                and brownout.get(higher, 0) == 0
            ):
                violations.append(
                    f"brownout-ordering: class {lower!r} (priority "
                    f"{lower_priority}) was brownout-shed while "
                    f"earlier-shed class {higher!r} (priority "
                    f"{higher_priority}) was not"
                )
    return violations


def _check_autoscaler_convergence(scenario, report, registry) -> list[str]:
    """The autoscaler converges — no flapping between up and down."""
    if scenario.autoscaler is None:
        return []
    violations = []
    if report.autoscale_reversals > scenario.max_scale_reversals:
        violations.append(
            f"autoscaler-convergence: {report.autoscale_reversals} "
            f"up/down reversals > allowed {scenario.max_scale_reversals} "
            f"({report.autoscale_ups} ups, {report.autoscale_downs} downs)"
        )
    return violations


def _check_serving_obs_consistency(scenario, report, registry) -> list[str]:
    """Admission/autoscaler metrics agree exactly with the report."""
    if registry is None:
        return []
    violations = []
    shed_metric = registry.get("serving_shed_total")
    for name, stats in sorted(report.tenants.items()):
        for slo_class, entry in sorted(stats.by_class.items()):
            for reason, expected in sorted(entry.shed_reasons.items()):
                actual = (
                    shed_metric.value(
                        tenant=name, slo_class=slo_class, reason=reason
                    )
                    if shed_metric is not None else 0.0
                )
                if actual != float(expected):
                    violations.append(
                        f"obs-consistency: serving_shed_total{{tenant={name},"
                        f"slo_class={slo_class},reason={reason}}} exported "
                        f"{actual} but the report says {expected}"
                    )
    if report.autoscale_ups or report.autoscale_downs:
        scale_metric = registry.get("autoscaler_scale_events_total")
        for direction, expected in (
            ("up", report.autoscale_ups),
            ("down", report.autoscale_downs),
        ):
            actual = (
                scale_metric.value(direction=direction)
                if scale_metric is not None else 0.0
            )
            if actual != float(expected):
                violations.append(
                    f"obs-consistency: autoscaler_scale_events_total"
                    f"{{direction={direction}}} exported {actual} but the "
                    f"report says {expected}"
                )
    return violations


def _check_power_integrity(scenario, report, registry) -> list[str]:
    """The governor never over-commits the budget it was given.

    Every governor window: the freshly apportioned device caps sum to at
    most that window's fleet budget, and the modelled draw never exceeds
    the caps that were in force while the window elapsed.
    """
    power = report.power
    if power is None:
        return []
    violations = []
    for row in power["window_rows"]:
        end_ms = row["end_ns"] / 1e6
        if row["cap_watts"] > row["budget_watts"] + 1e-9:
            violations.append(
                f"power-integrity: window ending {end_ms:.1f}ms apportioned "
                f"{row['cap_watts']:.3f}W of caps over budget "
                f"{row['budget_watts']:.3f}W"
            )
        if row["draw_watts"] > row["cap_in_force_watts"] + 1e-9:
            violations.append(
                f"power-integrity: window ending {end_ms:.1f}ms drew "
                f"{row['draw_watts']:.3f}W over the {row['cap_in_force_watts']:.3f}W "
                f"of caps in force"
            )
        if not 0.0 <= row["throttle_ratio"] <= 1.0:
            violations.append(
                f"power-integrity: window ending {end_ms:.1f}ms throttle "
                f"ratio {row['throttle_ratio']} outside [0, 1]"
            )
    return violations


def _check_power_obs_consistency(scenario, report, registry) -> list[str]:
    """Exported power gauges/counters agree exactly with the report."""
    power = report.power
    if power is None or registry is None:
        return []
    violations = []
    gauges = {
        "fleet_power_cap_watts": power["budget_watts"],
        "fleet_power_draw_watts": power["mean_draw_watts"],
        "powercap_throttle_ratio": power["mean_throttle_ratio"],
        "energy_per_inference_mj": power["energy_per_inference_mj"],
    }
    for name, expected in sorted(gauges.items()):
        metric = registry.get(name)
        actual = metric.value() if metric is not None else None
        if actual != expected:
            violations.append(
                f"obs-consistency: {name} exported {actual} but the "
                f"power report says {expected}"
            )
    device_cap = registry.get("device_power_cap_watts")
    for name, entry in sorted(power["devices"].items()):
        actual = (
            device_cap.value(device=name) if device_cap is not None else None
        )
        if actual != entry["final_cap_watts"]:
            violations.append(
                f"obs-consistency: device_power_cap_watts{{device={name}}} "
                f"exported {actual} but the power report says "
                f"{entry['final_cap_watts']}"
            )
    reapportions = registry.get("powercap_reapportion_total")
    actual = (
        reapportions.value(policy=power["policy"])
        if reapportions is not None else 0.0
    )
    if actual != float(power["reapportions"]):
        violations.append(
            f"obs-consistency: powercap_reapportion_total"
            f"{{policy={power['policy']}}} exported {actual} but the power "
            f"report says {power['reapportions']}"
        )
    return violations


def _check_end_to_end_correctness(scenario, report, registry) -> list[str]:
    """Corrupted results never reach clients beyond the declared budget.

    Four clauses, all over the report's ``sdc`` section: (1) the section
    exists exactly when the scenario declares a defense; (2) the
    conserved ledger holds — every injected corruption event lands in
    exactly one detection bucket or the served bucket; (3) the served
    bucket stays within ``max_sdc_served`` and the worst detection
    latency within ``sdc_detection_latency_ms``; (4) the exported
    ``sdc_*`` metrics agree exactly with the report.
    """
    sdc = report.sdc
    if scenario.sdc is None:
        if sdc is not None:
            return [
                "end-to-end-correctness: report has an 'sdc' section but "
                "the scenario declares no SdcConfig (detached path broken)"
            ]
        return []
    violations = []
    if sdc is None:
        return [
            "end-to-end-correctness: scenario declares an SdcConfig but "
            "the report has no 'sdc' section"
        ]
    detected_total = sum(sdc["detected"].values())
    if detected_total != sdc["detected_total"]:
        violations.append(
            f"end-to-end-correctness: detection buckets sum to "
            f"{detected_total} but detected_total says "
            f"{sdc['detected_total']}"
        )
    accounted = sdc["detected_total"] + sdc["served_corrupted"]
    if accounted != sdc["injected"]:
        violations.append(
            f"end-to-end-correctness: ledger accounts {accounted} of "
            f"{sdc['injected']} injected corruption events "
            f"(detected {sdc['detected_total']} + served "
            f"{sdc['served_corrupted']})"
        )
    if sdc["served_corrupted"] > scenario.max_sdc_served:
        violations.append(
            f"end-to-end-correctness: {sdc['served_corrupted']} corrupted "
            f"results reached clients, over the declared ceiling of "
            f"{scenario.max_sdc_served}"
        )
    bound = scenario.sdc_detection_latency_ms
    if bound is not None and sdc["max_detection_latency_ms"] > bound:
        violations.append(
            f"end-to-end-correctness: worst detection latency "
            f"{sdc['max_detection_latency_ms']:.3f}ms over the declared "
            f"bound of {bound}ms"
        )
    if registry is not None:
        injected_metric = registry.get("sdc_injected_total")
        actual = injected_metric.total() if injected_metric is not None else 0.0
        if actual != float(sdc["injected"]):
            violations.append(
                f"end-to-end-correctness: sdc_injected_total exported "
                f"{actual} but the report says {sdc['injected']}"
            )
        detected_metric = registry.get("sdc_detected_total")
        for method, expected in sorted(sdc["detected"].items()):
            actual = (
                detected_metric.value(method=method)
                if detected_metric is not None else 0.0
            )
            if actual != float(expected):
                violations.append(
                    f"end-to-end-correctness: sdc_detected_total"
                    f"{{method={method}}} exported {actual} but the report "
                    f"says {expected}"
                )
        served_metric = registry.get("sdc_served_total")
        actual = served_metric.total() if served_metric is not None else 0.0
        if actual != float(sdc["served_corrupted"]):
            violations.append(
                f"end-to-end-correctness: sdc_served_total exported "
                f"{actual} but the report says {sdc['served_corrupted']}"
            )
    return violations


#: Declared invariants, checked in order after every scenario. Each entry
#: is ``(name, check(scenario, report, registry) -> [violation, ...])``.
INVARIANTS = (
    ("conservation", _check_conservation),
    ("availability-floor", _check_availability_floor),
    ("monotone-time", _check_monotone_time),
    ("obs-consistency", _check_obs_consistency),
    ("class-conservation", _check_class_conservation),
    ("class-availability-floor", _check_class_availability_floors),
    ("brownout-ordering", _check_brownout_ordering),
    ("autoscaler-convergence", _check_autoscaler_convergence),
    ("serving-obs-consistency", _check_serving_obs_consistency),
    ("power-integrity", _check_power_integrity),
    ("power-obs-consistency", _check_power_obs_consistency),
    ("end-to-end-correctness", _check_end_to_end_correctness),
)


#: Which catalogue invariants actively constrain a scenario (beyond the
#: vacuous pass every check returns when its feature is absent), plus the
#: sweep checks run_scenario adds outside the catalogue. ``repro chaos
#: --list`` prints these per scenario.
_ALWAYS_INVARIANTS = (
    "conservation", "availability-floor", "monotone-time", "obs-consistency",
)


def declared_invariants(scenario: ChaosScenario) -> list[str]:
    """The invariant names a scenario's configuration puts in force."""
    names = list(_ALWAYS_INVARIANTS)
    if scenario.admission is not None:
        names += ["class-conservation", "brownout-ordering"]
        names.append("serving-obs-consistency")
    if scenario.class_availability_floors:
        names.append("class-availability-floor")
    if scenario.autoscaler is not None:
        names.append("autoscaler-convergence")
    if scenario.powercap is not None:
        names += ["power-integrity", "power-obs-consistency"]
    if scenario.sdc is not None:
        names += ["end-to-end-correctness", "undefended-exposure"]
    if scenario.overload_multipliers:
        names.append("shed-monotonicity")
    if scenario.cap_multipliers and scenario.powercap is not None:
        names.append("cap-monotonicity")
    return names


# ---------------------------------------------------------------------------
# built-in scenario suite
# ---------------------------------------------------------------------------

#: Shared overload-scenario serving policy. Tenant "a" keeps the 1 ms
#: synthetic service time; at max_batch=8 on the i20 batch curve one
#: replica sustains ~1.47 krps, so the two-active-replica fleets below
#: saturate near 2.9 krps offered.
_OVERLOAD_TENANTS = (
    TenantConfig(
        "a", "resnet50", groups=2, max_batch=8, sla_ms=50.0,
        coalesce_window_ms=2.0,
    ),
)
_OVERLOAD_ADMISSION = AdmissionPolicy(
    classes=(
        SloClass(
            "interactive", deadline_ms=60.0, queue_limit=64, shed_priority=0
        ),
        SloClass(
            "standard", deadline_ms=120.0, queue_limit=48, shed_priority=1
        ),
        SloClass("batch", deadline_ms=None, queue_limit=48, shed_priority=2),
    ),
    brownout_enter=0.5,
    brownout_exit=0.25,
)
_OVERLOAD_AUTOSCALER = AutoscalerConfig(
    min_active=1, max_active=4, eval_interval_ms=25.0,
    p99_targets_ms=(("interactive", 40.0), ("standard", 150.0)),
    cooldown_ms=75.0, scale_down_consecutive=3,
)


def _flash_crowd_load(
    interactive: float, standard: float, batch: float, flash_at_s: float = 0.15
) -> tuple[LoadSpec, ...]:
    """Three-class open-loop population with an interactive flash crowd."""
    return (
        LoadSpec(
            tenant="a", rate_per_s=interactive, slo_class="interactive",
            shape="flash-crowd", users=200, flash_at_s=flash_at_s,
            flash_duration_s=0.2, flash_multiplier=4.0, flash_ramp_s=0.05,
        ),
        LoadSpec(
            tenant="a", rate_per_s=standard, slo_class="standard",
            shape="diurnal", users=300, period_s=0.5, amplitude=0.6,
        ),
        LoadSpec(
            tenant="a", rate_per_s=batch, slo_class="batch",
            shape="poisson", users=50, session_mean_requests=8.0,
        ),
    )


def _builtin_scenarios() -> dict[str, ChaosScenario]:
    scenarios = [
        ChaosScenario(
            name="baseline",
            description="no faults: the fleet must be lossless and exact",
            schedule=FaultSchedule(),
            availability_floor=1.0,
        ),
        ChaosScenario(
            name="transient-storm",
            description="mid-run burst of DMA/ECC transients on every board",
            schedule=FaultSchedule(
                phases=(
                    StormPhase(
                        start_s=0.15, end_s=0.35,
                        plan=FaultPlan(
                            dma_corrupt_rate=0.004, ecc_ce_rate=0.004,
                        ),
                    ),
                ),
            ),
            availability_floor=0.98,
        ),
        ChaosScenario(
            name="replica-kill",
            description=(
                "replica r1 dies mid-run; hedged failover keeps every "
                "request alive while it quarantines, repairs, reintegrates"
            ),
            schedule=FaultSchedule(
                phases=(StormPhase.kill(device=1, at_s=0.15, duration_s=0.2),),
            ),
            fleet=FleetConfig(
                replicas=2, hot_spares=1, repair_ms=60.0,
                quarantine_threshold=2,
            ),
            availability_floor=0.99,
        ),
        ChaosScenario(
            name="rolling-ramp",
            description="fault pressure ramping from zero across the fleet",
            schedule=FaultSchedule(
                phases=(
                    StormPhase(
                        start_s=0.0, end_s=0.5,
                        plan=FaultPlan(
                            dma_corrupt_rate=0.006, ecc_ce_rate=0.006,
                            dma_abort_rate=0.0015,
                        ),
                        ramp=True,
                    ),
                ),
            ),
            availability_floor=0.95,
            quick=False,
        ),
        ChaosScenario(
            name="correlated-outage",
            description=(
                "two boards killed in overlapping windows: spares promote, "
                "survivors absorb the hedges"
            ),
            schedule=FaultSchedule(
                phases=(
                    StormPhase.kill(device=0, at_s=0.1, duration_s=0.15),
                    StormPhase.kill(device=1, at_s=0.15, duration_s=0.15),
                ),
            ),
            fleet=FleetConfig(
                replicas=3, hot_spares=1, repair_ms=80.0,
                quarantine_threshold=2,
            ),
            availability_floor=0.95,
            quick=False,
        ),
        ChaosScenario(
            name="flash-crowd",
            description=(
                "interactive flash crowd over a fault-free fleet: brownout "
                "sheds batch first, the autoscaler absorbs the spike"
            ),
            schedule=FaultSchedule(),
            tenants=_OVERLOAD_TENANTS,
            load=_flash_crowd_load(400.0, 500.0, 600.0),
            admission=_OVERLOAD_ADMISSION,
            autoscaler=_OVERLOAD_AUTOSCALER,
            fleet=FleetConfig(replicas=2, hot_spares=2, repair_ms=60.0),
            availability_floor=0.5,
            class_availability_floors=(("interactive", 0.9),),
        ),
        ChaosScenario(
            name="overload-storm",
            description=(
                "flash crowd times fault storm at ~2x capacity: interactive "
                "survives, batch sheds, and the shed rate rises "
                "monotonically with offered overload"
            ),
            schedule=FaultSchedule(
                phases=(
                    StormPhase(
                        start_s=0.15, end_s=0.35,
                        plan=FaultPlan(
                            dma_corrupt_rate=0.002, ecc_ce_rate=0.002,
                        ),
                    ),
                ),
            ),
            tenants=_OVERLOAD_TENANTS,
            load=_flash_crowd_load(500.0, 900.0, 1300.0),
            admission=_OVERLOAD_ADMISSION,
            autoscaler=_OVERLOAD_AUTOSCALER,
            fleet=FleetConfig(replicas=2, hot_spares=2, repair_ms=60.0),
            availability_floor=0.3,
            class_availability_floors=(("interactive", 0.9),),
            overload_multipliers=(0.5, 1.0, 1.5, 2.0),
            quick=False,
        ),
        ChaosScenario(
            name="scale-up-race",
            description=(
                "a replica dies exactly as the flash crowd lands: failover "
                "promotion and autoscaler promotion race for the spares "
                "without flapping or losing requests"
            ),
            schedule=FaultSchedule(
                phases=(StormPhase.kill(device=1, at_s=0.15, duration_s=0.2),),
            ),
            tenants=_OVERLOAD_TENANTS,
            load=_flash_crowd_load(400.0, 500.0, 600.0, flash_at_s=0.15),
            admission=_OVERLOAD_ADMISSION,
            autoscaler=_OVERLOAD_AUTOSCALER,
            fleet=FleetConfig(
                replicas=2, hot_spares=2, repair_ms=60.0,
                quarantine_threshold=2,
            ),
            availability_floor=0.3,
            class_availability_floors=(("interactive", 0.85),),
            quick=False,
        ),
        ChaosScenario(
            name="power-cap-storm",
            description=(
                "datacenter power budget cut in waves — step, ramp, "
                "oscillation — over a fault-free fleet: devices downclock "
                "and stall instead of shedding, and a tighter storm "
                "never costs more energy"
            ),
            schedule=FaultSchedule(),
            fleet=FleetConfig(replicas=2, hot_spares=1, repair_ms=60.0),
            # Heavy enough that dynamic energy dominates window
            # quantization noise — the cap-monotonicity sweep needs the
            # V^2 savings visible above discretization jitter.
            traffic=(
                TrafficPattern("a", 1200.0),
                TrafficPattern("b", 80.0),
            ),
            powercap=PowerCapConfig(
                fleet_budget_watts=450.0,
                phases=(
                    PowerCapPhase(0.10, 0.22, 330.0, shape="step"),
                    PowerCapPhase(0.22, 0.34, 300.0, shape="ramp"),
                    PowerCapPhase(
                        0.36, 0.48, 345.0, shape="oscillate", period_s=0.04
                    ),
                ),
            ),
            cap_multipliers=(1.0, 0.85, 0.75),
            availability_floor=0.98,
        ),
        ChaosScenario(
            name="cap-with-device-loss",
            description=(
                "a board dies in the middle of a power-cap step: failover "
                "and the governor re-apportion the same shrinking budget "
                "without losing requests or over-committing a watt"
            ),
            schedule=FaultSchedule(
                phases=(StormPhase.kill(device=1, at_s=0.15, duration_s=0.2),),
            ),
            fleet=FleetConfig(
                replicas=2, hot_spares=1, repair_ms=60.0,
                quarantine_threshold=2,
            ),
            powercap=PowerCapConfig(
                fleet_budget_watts=450.0,
                phases=(PowerCapPhase(0.10, 0.35, 330.0, shape="step"),),
            ),
            availability_floor=0.95,
            quick=False,
        ),
        ChaosScenario(
            name="silent-corruption-storm",
            description=(
                "mid-run burst of silent GEMM/DMA/codec corruption on "
                "every board: strict ABFT, golden-vector screens and "
                "sampled audits keep every served result clean"
            ),
            schedule=FaultSchedule(
                phases=(
                    StormPhase(
                        start_s=0.1, end_s=0.35,
                        plan=FaultPlan(
                            sdc_gemm_rate=0.004, sdc_dma_rate=0.002,
                            sdc_sparse_rate=0.002,
                        ),
                    ),
                ),
            ),
            fleet=FleetConfig(
                replicas=2, hot_spares=2, repair_ms=60.0,
                quarantine_threshold=2, screen_vectors=3,
            ),
            sdc=SdcConfig(
                abft="strict", screen_interval_ms=40.0, screen_vectors=2,
                screen_cost_ms=2.0, audit_fraction=0.25,
                quarantine_threshold=2, retire_after=8,
            ),
            max_sdc_served=0,
            sdc_detection_latency_ms=50.0,
            availability_floor=0.9,
        ),
        ChaosScenario(
            name="defective-core-outbreak",
            description=(
                "one board's defective core corrupts a quarter of its "
                "launches for most of the run: probe ABFT plus screens "
                "convict the repeat offender and retire it, the spare "
                "absorbs the traffic"
            ),
            schedule=FaultSchedule(
                phases=(
                    StormPhase(
                        start_s=0.05, end_s=0.45,
                        plan=FaultPlan(
                            sdc_gemm_rate=0.02, sdc_cores=(3,),
                        ),
                        devices=(1,),
                    ),
                ),
            ),
            fleet=FleetConfig(
                replicas=2, hot_spares=2, repair_ms=60.0,
                quarantine_threshold=2, screen_vectors=3,
            ),
            sdc=SdcConfig(
                abft="probe", probe_coverage=0.9,
                screen_interval_ms=30.0, screen_vectors=3,
                screen_cost_ms=2.0, quarantine_threshold=2, retire_after=6,
            ),
            max_sdc_served=6,
            sdc_detection_latency_ms=50.0,
            availability_floor=0.9,
            quick=False,
        ),
    ]
    return {scenario.name: scenario for scenario in scenarios}


SCENARIOS: dict[str, ChaosScenario] = _builtin_scenarios()


def scenario_names(quick: bool = False) -> list[str]:
    """Built-in scenario names, optionally only the CI smoke subset."""
    return [
        name for name, scenario in SCENARIOS.items()
        if scenario.quick or not quick
    ]


# ---------------------------------------------------------------------------
# running
# ---------------------------------------------------------------------------

def run_scenario(
    scenario: ChaosScenario,
    seed: int = 0,
    obs: Observability | None = None,
    measured: bool = False,
    routing: str | None = None,
) -> ScenarioResult:
    """Run one scenario and check every declared invariant.

    ``seed`` is the *root* seed: the scenario's fleet seed and traffic
    seed both derive from it (``scenario:<name>`` / ``trace:<name>``
    streams), so one root reproduces the entire suite. With
    ``measured=True`` the fleet uses detailed-simulator service times
    (memoized process-wide) instead of the synthetic defaults.
    ``routing`` selects the fleet's replica-selection implementation
    (``"heap"``/``"reference"`` — see :mod:`repro.serving.routing`);
    both produce byte-identical suite reports.
    """
    own_obs = obs if obs is not None else Observability()
    fleet_config = replace(
        scenario.fleet, seed=derive_seed(seed, "scenario", scenario.name)
    )
    service_times = None if measured else dict(DEFAULT_SERVICE_TIMES_NS)
    if service_times is not None:
        missing = [
            t.name for t in scenario.tenants if t.name not in service_times
        ]
        for name in missing:
            service_times[name] = 2.0e6
    manager = FleetManager(
        list(scenario.tenants),
        config=fleet_config,
        schedule=scenario.schedule,
        ras=scenario.ras,
        obs=own_obs,
        service_times_ns=service_times,
        admission=scenario.admission,
        autoscaler=scenario.autoscaler,
        routing=routing,
        powercap=scenario.powercap,
        sdc=scenario.sdc,
    )
    trace = _scenario_trace(scenario, seed)
    report = manager.run(trace)
    violations: list[str] = []
    for _name, check in INVARIANTS:
        violations.extend(check(scenario, report, own_obs.metrics))
    sweep = None
    if scenario.overload_multipliers:
        sweep = _overload_sweep(
            scenario, seed, fleet_config, service_times, violations,
            routing=routing,
        )
    cap_sweep = None
    if scenario.cap_multipliers and scenario.powercap is not None:
        cap_sweep = _cap_sweep(
            scenario, seed, fleet_config, service_times, violations,
            routing=routing,
        )
    sdc_control = None
    if scenario.sdc is not None:
        sdc_control = _sdc_control(
            scenario, seed, fleet_config, service_times, violations,
            routing=routing,
        )
    return ScenarioResult(
        scenario=scenario, report=report, violations=violations, sweep=sweep,
        cap_sweep=cap_sweep, sdc_control=sdc_control,
    )


def _scenario_trace(
    scenario: ChaosScenario, seed: int, multiplier: float = 1.0
) -> list[Request]:
    """The scenario's request trace, open-loop (``load``) or legacy.

    ``multiplier`` scales every baseline rate (the overload sweep); the
    stream seed stays fixed so runs at different multipliers share one
    root and stay individually byte-reproducible.
    """
    if scenario.load:
        specs = [
            replace(spec, rate_per_s=spec.rate_per_s * multiplier)
            for spec in scenario.load
        ]
        return generate_load(
            specs,
            duration_s=scenario.duration_s,
            seed=derive_seed(seed, "load", scenario.name) % 2**32,
        )
    patterns = [
        replace(pattern, rate_per_s=pattern.rate_per_s * multiplier)
        for pattern in scenario.traffic
    ]
    return generate_trace(
        patterns,
        duration_s=scenario.duration_s,
        seed=derive_seed(seed, "trace", scenario.name) % 2**32,
    )


def _overload_sweep(
    scenario: ChaosScenario,
    seed: int,
    fleet_config: FleetConfig,
    service_times: dict[str, float] | None,
    violations: list[str],
    routing: str | None = None,
) -> list[dict]:
    """Shed-monotonicity: re-run at scaled offered loads, off-telemetry.

    The shed *rate* (shed / offered) must be non-decreasing in the
    offered-load multiplier — an admission layer that sheds less as
    overload deepens is lying about its backpressure. Runs on a separate
    fleet without observability so the main run's exported metrics stay
    exactly what the obs-consistency invariants audited.
    """
    sweep_manager = FleetManager(
        list(scenario.tenants),
        config=fleet_config,
        schedule=scenario.schedule,
        ras=scenario.ras,
        service_times_ns=(
            dict(service_times) if service_times is not None else None
        ),
        admission=scenario.admission,
        autoscaler=scenario.autoscaler,
        routing=routing,
    )
    rows: list[dict] = []
    previous_rate: float | None = None
    for multiplier in scenario.overload_multipliers:
        trace = _scenario_trace(scenario, seed, multiplier=multiplier)
        report = sweep_manager.run(trace)
        offered = sum(s.offered for s in report.tenants.values())
        shed = sum(s.shed for s in report.tenants.values())
        shed_rate = shed / offered if offered else 0.0
        rows.append(
            {
                "multiplier": multiplier, "offered": offered,
                "shed": shed, "shed_rate": shed_rate,
            }
        )
        if previous_rate is not None and shed_rate < previous_rate - 0.01:
            violations.append(
                f"shed-monotonicity: shed rate {shed_rate:.4f} at "
                f"{multiplier}x offered load below {previous_rate:.4f} "
                f"at the previous multiplier"
            )
        previous_rate = max(previous_rate or 0.0, shed_rate)
    return rows


def _cap_sweep(
    scenario: ChaosScenario,
    seed: int,
    fleet_config: FleetConfig,
    service_times: dict[str, float] | None,
    violations: list[str],
    routing: str | None = None,
) -> list[dict]:
    """Cap-monotonicity: re-run the same trace under tightening budgets.

    Scaling the whole storm's budget down (base + every phase at once,
    via :meth:`PowerCapConfig.scaled`) must not *increase* total
    modelled energy — downclocking saves super-linear dynamic power, so
    in the DVFS-dominated region the scenario is sized for, a tighter
    cap is strictly cheaper. Tighter runs drain their dilated tails
    later, so every run's energy is *leveled* to the sweep's longest
    horizon first (boards idling at floor power for the difference) —
    otherwise a few extra milliseconds of idle burn would dominate the
    comparison. Runs off-telemetry on a separate fleet so the main
    run's exported metrics stay exactly what the obs-consistency
    invariants audited.
    """
    rows: list[dict] = []
    horizons: list[float] = []
    for multiplier in scenario.cap_multipliers:
        manager = FleetManager(
            list(scenario.tenants),
            config=fleet_config,
            schedule=scenario.schedule,
            ras=scenario.ras,
            service_times_ns=(
                dict(service_times) if service_times is not None else None
            ),
            admission=scenario.admission,
            autoscaler=scenario.autoscaler,
            routing=routing,
            powercap=scenario.powercap.scaled(multiplier),
        )
        trace = _scenario_trace(scenario, seed)
        report = manager.run(trace)
        power = report.power
        served = sum(s.served for s in report.tenants.values())
        horizons.append(report.horizon_ns)
        rows.append(
            {
                "multiplier": multiplier,
                "budget_watts": power["budget_watts"],
                "energy_joules": power["energy_joules"],
                "energy_per_inference_mj": power["energy_per_inference_mj"],
                "mean_throttle_ratio": power["mean_throttle_ratio"],
                "served": served,
            }
        )
    # Device count is fleet-config-fixed, so the last run's roster works
    # for every row.
    idle_floor_watts = (
        scenario.powercap.device_idle_watts * len(power["devices"])
        if rows else 0.0
    )
    common_horizon = max(horizons, default=0.0)
    previous_energy: float | None = None
    for row, horizon in zip(rows, horizons):
        leveled = row["energy_joules"] + idle_floor_watts * (
            (common_horizon - horizon) / 1e9
        )
        row["leveled_energy_joules"] = leveled
        if previous_energy is not None and leveled > previous_energy + 1e-6:
            violations.append(
                f"cap-monotonicity: {row['multiplier']}x budget used "
                f"{leveled:.3f}J (horizon-leveled), more than "
                f"{previous_energy:.3f}J at the previous (looser) multiplier"
            )
        previous_energy = leveled
    return rows


def _sdc_control(
    scenario: ChaosScenario,
    seed: int,
    fleet_config: FleetConfig,
    service_times: dict[str, float] | None,
    violations: list[str],
    routing: str | None = None,
) -> dict:
    """Undefended-exposure: rerun the same storm with every defense off.

    Same seed, same trace, same corruption schedule — but no ABFT, no
    screener, no audits. If even this run serves zero corrupted results
    the storm never threatened anything, and the defended scenario's
    ``max_sdc_served`` ceiling is a vacuous pass; that is flagged as a
    violation. Runs off-telemetry on a separate fleet so the main run's
    exported metrics stay exactly what the obs-consistency invariants
    audited.
    """
    manager = FleetManager(
        list(scenario.tenants),
        config=fleet_config,
        schedule=scenario.schedule,
        ras=scenario.ras,
        service_times_ns=(
            dict(service_times) if service_times is not None else None
        ),
        admission=scenario.admission,
        autoscaler=scenario.autoscaler,
        routing=routing,
        powercap=scenario.powercap,
        sdc=SdcConfig(),
    )
    trace = _scenario_trace(scenario, seed)
    report = manager.run(trace)
    control = report.sdc
    if control["served_corrupted"] < 1:
        violations.append(
            "undefended-exposure: the defenses-off control run served "
            f"{control['served_corrupted']} corrupted results — the storm "
            "never threatened correctness, so the defended ceiling is "
            "vacuous"
        )
    return control


def _prewarm_compiles(device_models) -> None:
    """Lower each (device, model) once so the compile memo is warm.

    In a serial suite the first scenario pays each model's cold compile
    and every later fleet hits :data:`repro.caching.COMPILE_CACHE`.
    Sharded workers fork from this process, so warming the cache *here*
    restores that sharing — compiles are content-addressed and
    deterministic, so nothing observable changes.
    """
    from repro.models.zoo import build
    from repro.runtime.runtime import Device

    for device_name, model in device_models:
        Device.open(device_name).compile(build(model), batch=1)


def _run_scenario_task(task) -> ScenarioResult:
    """Sharded-worker body: one named scenario run (picklable result)."""
    name, seed, measured, routing = task
    return run_scenario(
        SCENARIOS[name], seed=seed, measured=measured, routing=routing
    )


def run_suite(
    names: list[str] | None = None,
    seed: int = 0,
    quick: bool = False,
    measured: bool = False,
    workers: int | None = None,
    routing: str | None = None,
) -> SuiteResult:
    """Run a set of built-in scenarios (all, the quick subset, or named).

    Scenarios are independent simulations — every stream derives from
    ``(seed, scenario name)``, never from suite position — so they run
    sharded across worker processes via :mod:`repro.sim.parallel` and
    merge back in declared order, byte-identical to a serial run.
    ``workers=1`` forces the serial path.
    """
    selected = names if names is not None else scenario_names(quick=quick)
    for name in selected:
        if name not in SCENARIOS:
            raise KeyError(
                f"unknown chaos scenario {name!r}; "
                f"choose from {sorted(SCENARIOS)}"
            )
    _prewarm_compiles(
        sorted(
            {
                (SCENARIOS[name].fleet.device, tenant.model)
                for name in selected
                for tenant in SCENARIOS[name].tenants
            }
        )
    )
    if measured:
        # Warm the measurement memo once in the parent; otherwise every
        # shard re-measures the same tenant models from scratch.
        prewarm_measurements(
            sorted(
                {
                    (tenant.model, tenant.groups)
                    for name in selected
                    for tenant in SCENARIOS[name].tenants
                }
            ),
            workers=workers,
        )
    suite = SuiteResult(seed=seed)
    suite.results = run_sharded(
        _run_scenario_task,
        [(name, seed, measured, routing) for name in selected],
        workers=workers,
    )
    return suite


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def render_table(suite: SuiteResult) -> str:
    """The ``repro chaos`` scenario table, one row per scenario."""
    header = (
        f"{'scenario':<18} {'offered':>7} {'served':>6} {'fail':>5} "
        f"{'shed':>5} {'hedge':>5} {'fovr':>5} {'quar':>5} {'reint':>5} "
        f"{'healthy':>8} {'avail':>7}  result"
    )
    lines = [header, "-" * len(header)]
    for result in suite.results:
        report = result.report
        offered = sum(s.offered for s in report.tenants.values())
        served = sum(s.served for s in report.tenants.values())
        failed = sum(s.failed for s in report.tenants.values())
        shed = sum(s.shed for s in report.tenants.values())
        availability = min(
            (s.availability_while_healthy for s in report.tenants.values()),
            default=1.0,
        )
        healthy = f"{report.min_healthy}/{report.final_healthy}"
        verdict = "PASS" if result.passed else "FAIL"
        lines.append(
            f"{result.scenario.name:<18} {offered:>7} {served:>6} "
            f"{failed:>5} {shed:>5} {report.hedged_requests:>5} "
            f"{report.failovers:>5} {report.quarantines:>5} "
            f"{report.reintegrations:>5} {healthy:>8} "
            f"{availability:>6.1%}  {verdict}"
        )
        for violation in result.violations:
            lines.append(f"    ! {violation}")
    lines.append("-" * len(header))
    verdict = "PASS" if suite.passed else "FAIL"
    lines.append(
        f"{len(suite.results)} scenarios, seed {suite.seed}: {verdict}"
    )
    return "\n".join(lines)
