"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``specs`` — print Table I / Table IV device specifications,
- ``models`` — list the Table III zoo with compile statistics,
- ``run MODEL`` — simulate one inference on the i20 (or i10),
- ``estimate MODEL`` — analytical latency on every device,
- ``evaluate`` — the full Fig. 13 / Fig. 15 comparison table,
- ``faults`` — a fault-injection campaign: one faulty launch with RAS
  retries, then a two-tenant serving run under the same fault plan,
- ``profile MODEL`` — per-category and per-engine tables read back from
  the unified metrics registry (``repro.obs``); ``--fleet`` appends a
  fleet-resilience gauge table from a small multi-replica demo,
- ``trace MODEL -o trace.json`` — whole-stack Chrome trace (serving /
  runtime / sim / fault / power rows) for chrome://tracing or Perfetto,
- ``chaos`` — the deterministic chaos suite: scripted fault storms run
  through the fleet manager, with declared invariants checked after every
  scenario (``--quick`` for the CI smoke subset; exit 1 on violation),
- ``fuzz`` — the differential graph fuzzer: seeded random graphs through
  the hardened compile pipeline, checking "typed error or
  numerically-correct compile" on every case (``--quick`` for the CI
  smoke subset, ``--replay`` for the regression corpus; exit 1 on
  violation),
- ``loadgen`` — deterministic open-loop load generation: per-class
  arrival processes (Poisson / diurnal / flash-crowd) over synthetic
  user populations, summarized per (tenant, SLO class); ``--json`` for
  the canonical byte-stable report (``--quick`` for the CI smoke
  variant).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_specs(_args) -> int:
    from repro.perfmodel.devices import ALL_DEVICES

    header = (f"{'Device':<16} {'FP32':>6} {'FP16':>6} {'INT8':>6} "
              f"{'GB':>4} {'GB/s':>6} {'TDP':>5} {'nm':>3}  Link")
    print(header)
    print("-" * len(header))
    for spec in ALL_DEVICES:
        print(f"{spec.name:<16} {spec.fp32_tflops:>6.1f} "
              f"{spec.fp16_tflops:>6.1f} {spec.int8_tops:>6.1f} "
              f"{spec.memory_gb:>4} {spec.bandwidth_gbps:>6.0f} "
              f"{spec.tdp_watts:>5.0f} {spec.technology_nm:>3}  "
              f"{spec.interconnect}")
    return 0


def _cmd_models(_args) -> int:
    from repro.compiler.lowering import lower_graph
    from repro.core.config import dtu2_config
    from repro.graph.passes import optimize
    from repro.graph.shape_inference import bind_shapes
    from repro.models.zoo import TABLE_III, build

    chip = dtu2_config()
    header = (f"{'Model':<14} {'Category':<20} {'Input':<10} {'Nodes':>6} "
              f"{'Kernels':>8} {'GFLOPs':>8} {'WeightMB':>9}")
    print(header)
    print("-" * len(header))
    for entry in TABLE_III:
        graph = bind_shapes(build(entry.name), batch=1)
        nodes = len(graph.nodes)
        optimized, _ = optimize(graph)
        compiled = lower_graph(optimized, chip)
        print(f"{entry.name:<14} {entry.category:<20} {entry.input_size:<10} "
              f"{nodes:>6} {len(compiled.kernels):>8} "
              f"{compiled.total_flops / 1e9:>8.1f} "
              f"{graph.weight_bytes() / 1e6:>9.1f}")
    return 0


def _cmd_run(args) -> int:
    from repro.models.zoo import MODEL_NAMES, build
    from repro.runtime.profiler import Profile
    from repro.runtime.runtime import Device

    if args.model not in MODEL_NAMES:
        print(f"unknown model {args.model!r}; choose from {list(MODEL_NAMES)}",
              file=sys.stderr)
        return 2
    device = Device.open(args.device)
    compiled = device.compile(build(args.model), batch=args.batch)
    result = device.launch(compiled, num_groups=args.groups)
    print(f"{args.model} on {device.accelerator.chip.name} "
          f"(batch {args.batch}, {args.groups or 'auto'} groups):")
    print(f"  latency      {result.latency_ms:.3f} ms")
    print(f"  throughput   {result.throughput_samples_per_s(args.batch):.0f} samples/s")
    print(f"  mean power   {result.mean_power_watts:.1f} W")
    print(f"  energy       {result.energy_joules * 1e3:.2f} mJ")
    print(f"  mean clock   {result.mean_frequency_ghz:.2f} GHz")
    if args.profile:
        print()
        print(Profile(compiled, result).summary())
    return 0


def _cmd_estimate(args) -> int:
    from repro.models.zoo import MODEL_NAMES
    from repro.perfmodel.latency import estimate_model

    if args.model not in MODEL_NAMES:
        print(f"unknown model {args.model!r}; choose from {list(MODEL_NAMES)}",
              file=sys.stderr)
        return 2
    print(f"{'Device':<6} {'latency ms':>11} {'samples/s':>10}")
    for device in ("i20", "i10", "t4", "a10"):
        estimate = estimate_model(args.model, device, batch=args.batch)
        print(f"{device:<6} {estimate.latency_ms:>11.3f} "
              f"{estimate.throughput_samples_per_s:>10.0f}")
    return 0


def _cmd_evaluate(_args) -> int:
    from repro.models.zoo import MODEL_NAMES, entry
    from repro.perfmodel.latency import (
        energy_efficiency_ratio,
        geomean,
        speedup,
    )

    header = (f"{'DNN':<16} {'i20/T4':>8} {'i20/A10':>8} "
              f"{'eff/T4':>8} {'eff/A10':>8}")
    print(header)
    print("-" * len(header))
    perf_t4, perf_a10, eff_t4, eff_a10 = [], [], [], []
    for model in MODEL_NAMES:
        s4 = speedup(model, "i20", "t4")
        sa = speedup(model, "i20", "a10")
        e4 = energy_efficiency_ratio(model, "i20", "t4")
        ea = energy_efficiency_ratio(model, "i20", "a10")
        perf_t4.append(s4)
        perf_a10.append(sa)
        eff_t4.append(e4)
        eff_a10.append(ea)
        print(f"{entry(model).display_name:<16} {s4:>7.2f}x {sa:>7.2f}x "
              f"{e4:>7.2f}x {ea:>7.2f}x")
    print("-" * len(header))
    print(f"{'GeoMean':<16} {geomean(perf_t4):>7.2f}x {geomean(perf_a10):>7.2f}x "
          f"{geomean(eff_t4):>7.2f}x {geomean(eff_a10):>7.2f}x")
    print(f"{'paper':<16} {'2.22x':>8} {'1.16x':>8} {'1.04x':>8} {'1.17x':>8}")
    return 0


def _cmd_faults(args) -> int:
    from repro.faults import FaultInjector, FaultPlan, TransientFault
    from repro.models.zoo import MODEL_NAMES, build
    from repro.runtime.runtime import Device
    from repro.serving import (
        InferenceServer,
        RasConfig,
        TenantConfig,
        TrafficPattern,
        generate_trace,
    )

    if args.model not in MODEL_NAMES:
        print(f"unknown model {args.model!r}; choose from {list(MODEL_NAMES)}",
              file=sys.stderr)
        return 2
    plan = FaultPlan(
        seed=args.seed,
        dma_corrupt_rate=args.dma_rate,
        dma_abort_rate=args.dma_rate / 10.0,
        ecc_ce_rate=args.ecc_rate,
        ecc_ue_rate=args.ecc_rate / 10.0,
        core_hang_rate=args.hang_rate,
        sync_loss_rate=args.sync_rate,
    )

    # Part 1: one launch on the detailed simulator, with and without faults.
    print(f"fault plan: dma {args.dma_rate:.2%}/txn, ecc {args.ecc_rate:.2%}"
          f"/transfer, hang {args.hang_rate:.2%}/kernel, seed {args.seed}")
    clean = Device.open(args.device)
    compiled = clean.compile(build(args.model), batch=1)
    baseline = clean.launch(compiled, num_groups=args.groups)
    faulty = Device.open(args.device)
    injector = FaultInjector(plan)
    faulty.accelerator.attach_faults(injector)
    compiled_faulty = faulty.compile(build(args.model), batch=1)
    try:
        result = faulty.launch(
            compiled_faulty, num_groups=args.groups, max_retries=args.retries
        )
        print(f"{args.model}: clean {baseline.latency_ms:.3f} ms -> faulty "
              f"{result.latency_ms:.3f} ms "
              f"({int(result.counters.get('launch_retries', 0))} launch retries)")
    except TransientFault as fault:
        print(f"{args.model}: launch failed after {args.retries} retries: {fault}")
    recovered = sum(record.recovered for record in injector.records)
    print(f"  faults injected {len(injector.records)} "
          f"(recovered {recovered}, fatal {len(injector.records) - recovered})")

    # Part 2: two-tenant serving campaign under the same plan.
    tenants = [
        TenantConfig("a", args.model, groups=2, max_batch=4, sla_ms=args.sla_ms),
        TenantConfig("b", "unet", groups=3, sla_ms=None),
    ]
    ras = RasConfig(max_retries=args.retries, queue_depth_limit=args.queue_limit)
    server = InferenceServer(tenants, fault_plan=plan, ras=ras)
    trace = generate_trace(
        [TrafficPattern("a", args.rate), TrafficPattern("b", args.rate / 5.0)],
        duration_s=args.duration,
        seed=args.seed,
    )
    reports = server.run(trace)
    header = (f"{'tenant':<8} {'ok':>6} {'fail':>5} {'shed':>5} {'retry':>5} "
              f"{'degr':>5} {'p99 ms':>8} {'avail':>7} {'sla viol':>9}")
    print()
    print(header)
    print("-" * len(header))
    for name, report in reports.items():
        print(f"{name:<8} {report.completed:>6} {report.failed:>5} "
              f"{report.shed:>5} {report.retried:>5} {report.degraded:>5} "
              f"{report.p99_ms:>8.2f} {report.availability:>6.1%} "
              f"{report.sla_violation_rate:>8.1%}")
    return 0


def _cmd_profile(args) -> int:
    from repro.models.zoo import MODEL_NAMES, build
    from repro.obs import Observability
    from repro.runtime.runtime import Device

    if args.model not in MODEL_NAMES:
        print(f"unknown model {args.model!r}; choose from {list(MODEL_NAMES)}",
              file=sys.stderr)
        return 2
    obs = Observability()
    device = Device.open(args.device, obs=obs)
    compiled = device.compile(
        build(args.model), batch=args.batch, verify_fusion=True
    )
    result = device.launch(compiled, num_groups=args.groups)
    registry = obs.metrics

    print(f"{args.model} on {device.accelerator.chip.name} "
          f"(batch {args.batch}, {args.groups or 'auto'} groups): "
          f"{result.latency_ms:.3f} ms, "
          f"{registry.get('power_mean_watts').value():.1f} W mean, "
          f"{registry.get('power_energy_joules_total').total() * 1e3:.2f} mJ, "
          f"{registry.get('power_mean_frequency_ghz').value():.2f} GHz")
    print()

    # Per-category table, read back from the registry the executor filled.
    duration = registry.get("runtime_kernel_duration_ns")
    kernels = registry.get("runtime_kernels_total")
    flops = registry.get("runtime_kernel_flops_total")
    rows = []
    for labels, series in duration.samples():
        category = labels["category"]
        rows.append((
            category,
            int(kernels.value(category=category)),
            series.sum,
            flops.value(category=category),
        ))
    total_time = sum(row[2] for row in rows) or 1.0
    total_flops = sum(row[3] for row in rows) or 1.0
    header = (f"{'category':<12} {'kernels':>8} {'time us':>10} "
              f"{'time %':>8} {'flops %':>8}")
    print(header)
    print("-" * len(header))
    for category, count, time_ns, category_flops in sorted(
        rows, key=lambda row: row[2], reverse=True
    ):
        print(f"{category:<12} {count:>8} {time_ns / 1e3:>10.1f} "
              f"{time_ns / total_time:>8.1%} "
              f"{category_flops / total_flops:>8.1%}")
    print()

    # Per-engine table: busy time per engine family over the run.
    busy = registry.get("sim_engine_busy_ns_total")
    by_family: dict[str, tuple[float, int]] = {}
    for labels, value in busy.samples():
        family = labels["engine"]
        total, tracks = by_family.get(family, (0.0, 0))
        by_family[family] = (total + value, tracks + 1)
    header = f"{'engine':<12} {'groups':>7} {'busy us':>10} {'duty %':>8}"
    print(header)
    print("-" * len(header))
    for family, (busy_ns, tracks) in sorted(
        by_family.items(), key=lambda item: item[1][0], reverse=True
    ):
        duty = busy_ns / (result.latency_ns * tracks) if result.latency_ns else 0.0
        print(f"{family:<12} {tracks:>7} {busy_ns / 1e3:>10.1f} {duty:>8.1%}")
    print()

    # Engine-core table: dispatch + fast-path accounting the executor
    # exported after the launch (docs/sim-internals.md). The vectorized
    # hit rate is the share of busy-time queries the NumPy batch path
    # served; pool reuse is process-wide Timeout interning.
    from repro.sim.parallel import export_shard_metrics

    export_shard_metrics(registry)
    dispatched = registry.get("sim_events_dispatched")
    steps = registry.get("sim_time_steps")
    queries = registry.get("sim_busy_queries")
    pool_hits = registry.get("sim_timeout_pool_hits")
    pool_misses = registry.get("sim_timeout_pool_misses")
    scalar = queries.value(path="scalar") if queries is not None else 0.0
    vector = queries.value(path="vector") if queries is not None else 0.0
    hits = pool_hits.value() if pool_hits is not None else 0.0
    misses = pool_misses.value() if pool_misses is not None else 0.0
    header = f"{'engine core':<28} {'value':>10}"
    print(header)
    print("-" * len(header))
    engine = device.accelerator.sim.engine
    print(f"{'engine':<28} {engine:>10}")
    print(f"{'events dispatched':<28} "
          f"{dispatched.value(engine=engine) if dispatched else 0.0:>10.0f}")
    print(f"{'clock time steps':<28} "
          f"{steps.value(engine=engine) if steps else 0.0:>10.0f}")
    print(f"{'busy queries (scalar)':<28} {scalar:>10.0f}")
    print(f"{'busy queries (vector)':<28} {vector:>10.0f}")
    vector_rate = vector / (scalar + vector) if scalar + vector else 0.0
    print(f"{'vectorized-batch hit rate':<28} {vector_rate:>10.1%}")
    pool_rate = hits / (hits + misses) if hits + misses else 0.0
    print(f"{'timeout pool reuse rate':<28} {pool_rate:>10.1%}")
    shard_wall = registry.get("sim_shard_wall_seconds")
    if shard_wall is not None:
        for labels, value in sorted(shard_wall.samples()):
            print(f"{'shard ' + labels['shard'] + ' wall s':<28} "
                  f"{value:>10.4f}")
    print()

    # Process-wide cache table (compile + measurement), mirrored into the
    # registry as gauges so exporters see the same numbers.
    from repro.caching import export_cache_metrics

    export_cache_metrics(registry)
    entries = registry.get("cache_entries")
    hits = registry.get("cache_hits")
    misses = registry.get("cache_misses")
    rate = registry.get("cache_hit_rate")
    header = (f"{'cache':<12} {'entries':>8} {'hits':>7} "
              f"{'misses':>7} {'hit %':>7}")
    print(header)
    print("-" * len(header))
    for name in ("compile", "measurement"):
        print(f"{name:<12} {int(entries.value(cache=name)):>8} "
              f"{int(hits.value(cache=name)):>7} "
              f"{int(misses.value(cache=name)):>7} "
              f"{rate.value(cache=name):>7.1%}")
    print()

    # Fusion equivalence guard: the compile above ran with
    # verify_fusion=True, so check outcomes (and any fallbacks) are in
    # the same registry. On a cache hit the guard already ran when the
    # entry was built, so zero checks here just means "cached".
    header = f"{'fusion guard':<28} {'value':>8}"
    print(header)
    print("-" * len(header))
    checks = registry.get("fusion_guard_checks_total")
    for outcome in ("ok", "mismatch", "skipped"):
        value = checks.value(result=outcome) if checks is not None else 0.0
        print(f"{'checks{result=' + outcome + '}':<28} {value:>8.0f}")
    fallbacks = registry.get("fusion_guard_fallbacks_total")
    print(f"{'fallbacks':<28} "
          f"{fallbacks.total() if fallbacks is not None else 0.0:>8.0f}")

    # Fleet-resilience table: run the replica-kill chaos scenario on the
    # SAME registry so its fleet_* gauges/counters land next to the rest.
    if args.fleet:
        from repro.chaos import SCENARIOS, run_scenario

        result = run_scenario(SCENARIOS["replica-kill"], seed=0, obs=obs)
        report = result.report
        print()
        header = f"{'fleet metric':<28} {'value':>8}"
        print(header)
        print("-" * len(header))
        for metric, kind in (
            ("fleet_replicas", "gauge"),
            ("fleet_healthy_replicas", "gauge"),
            ("fleet_min_healthy_replicas", "gauge"),
            ("fleet_failovers_total", "counter"),
            ("fleet_hedged_requests_total", "counter"),
            ("fleet_quarantines_total", "counter"),
            ("fleet_repairs_total", "counter"),
            ("fleet_reintegrations_total", "counter"),
            ("fleet_promotions_total", "counter"),
        ):
            series = registry.get(metric)
            value = 0.0
            if series is not None:
                value = (
                    series.value() if kind == "gauge" else series.total()
                )
            print(f"{metric:<28} {value:>8.0f}")
        for tenant in sorted(report.tenants):
            availability = registry.get("fleet_availability")
            print(f"{'fleet_availability{' + tenant + '}':<28} "
                  f"{availability.value(tenant=tenant):>8.1%}")

        # Fleet-power table: run the power-cap-storm scenario on the same
        # registry and read the table straight from the gauges the
        # governor exported (docs/power.md).
        result = run_scenario(SCENARIOS["power-cap-storm"], seed=0, obs=obs)
        power = result.report.power
        print()
        header = f"{'fleet power':<28} {'value':>10}"
        print(header)
        print("-" * len(header))
        for metric, fmt in (
            ("fleet_power_cap_watts", "{:>10.1f}"),
            ("fleet_power_draw_watts", "{:>10.1f}"),
            ("powercap_throttle_ratio", "{:>10.3f}"),
            ("energy_per_inference_mj", "{:>10.1f}"),
        ):
            series = registry.get(metric)
            value = series.value() if series is not None else 0.0
            print(f"{metric:<28} {fmt.format(value)}")
        device_cap = registry.get("device_power_cap_watts")
        device_draw = registry.get("device_power_draw_watts")
        device_throttle = registry.get("device_power_throttle")
        print()
        header = (f"{'device':<10} {'draw W':>8} {'cap W':>8} "
                  f"{'throttle':>8}")
        print(header)
        print("-" * len(header))
        for name in sorted(power["devices"]):
            print(f"{name:<10} "
                  f"{device_draw.value(device=name):>8.1f} "
                  f"{device_cap.value(device=name):>8.1f} "
                  f"{device_throttle.value(device=name):>8.3f}")
    return 0


def _cmd_trace(args) -> int:
    from repro.faults import FaultPlan
    from repro.models.zoo import MODEL_NAMES
    from repro.obs import Observability, save_chrome_trace
    from repro.serving import (
        InferenceServer,
        RasConfig,
        TenantConfig,
        TrafficPattern,
        generate_trace,
    )

    if args.model not in MODEL_NAMES:
        print(f"unknown model {args.model!r}; choose from {list(MODEL_NAMES)}",
              file=sys.stderr)
        return 2
    obs = Observability()
    # Transient-only fault plan: events show up in the fault track without
    # ever failing the measurement launch (fatal rates stay zero).
    plan = FaultPlan(
        seed=args.seed,
        dma_corrupt_rate=args.fault_rate,
        ecc_ce_rate=args.fault_rate,
        core_slowdown_rate=args.fault_rate / 2.0,
        sync_loss_rate=args.fault_rate / 4.0,
    )
    tenants = [
        TenantConfig("primary", args.model, groups=args.groups, max_batch=4)
    ]
    server = InferenceServer(
        tenants,
        obs=obs,
        fault_plan=plan,
        measurement_fault_plan=plan,
        ras=RasConfig(max_retries=2, queue_depth_limit=64),
    )
    requests = generate_trace(
        [TrafficPattern("primary", args.rate)],
        duration_s=args.duration,
        seed=args.seed,
    )
    reports = server.run(requests)
    path = save_chrome_trace(obs.tracer, args.output)

    report = reports["primary"]
    print(f"{args.model}: {report.completed} requests served "
          f"({report.retried} retried, {report.shed} shed), "
          f"p99 {report.p99_ms:.2f} ms")
    for layer in sorted(obs.tracer.layers()):
        spans = len(obs.tracer.spans_in(layer))
        events = sum(1 for e in obs.tracer.events if e.layer == layer)
        samples = sum(
            1 for s in obs.tracer.counter_samples if s.layer == layer
        )
        print(f"  {layer:<8} {spans:>5} spans  {events:>4} events  "
              f"{samples:>4} samples")
    print(f"wrote {path} — load it in chrome://tracing or "
          f"https://ui.perfetto.dev")
    return 0


def _cmd_chaos(args) -> int:
    from repro.chaos import (
        SCENARIOS,
        declared_invariants,
        render_table,
        run_suite,
        scenario_names,
    )

    if args.list:
        width = max(len(name) for name in SCENARIOS)
        header = f"{'scenario':<{width}} {'quick':>5}  description"
        print(header)
        print("-" * 72)
        for name, scenario in SCENARIOS.items():
            quick = "yes" if scenario.quick else "no"
            print(f"{name:<{width}} {quick:>5}  {scenario.description}")
            invariants = ", ".join(declared_invariants(scenario))
            print(f"{'':<{width}} {'':>5}  invariants: {invariants}")
        return 0

    names = args.scenario or None
    if names is not None:
        unknown = [name for name in names if name not in SCENARIOS]
        if unknown:
            print(f"unknown scenario(s) {unknown}; choose from "
                  f"{scenario_names()}", file=sys.stderr)
            return 2
    suite = run_suite(
        names=names, seed=args.seed, quick=args.quick,
        measured=args.measured, workers=args.workers,
        routing=args.routing,
    )
    if args.json:
        print(suite.to_json())
    else:
        print(render_table(suite))
    return 0 if suite.passed else 1


def _cmd_fuzz(args) -> int:
    from repro.graph.fuzz import (
        MUTATIONS,
        replay_corpus,
        run_fuzz,
        write_corpus,
    )

    if args.list:
        print("mutations:")
        for name in sorted(MUTATIONS):
            print(f"  {name}")
        return 0
    if args.write_corpus:
        paths = write_corpus(seed=args.seed)
        for path in paths:
            print(f"wrote {path}")
        return 0
    if args.replay:
        results = replay_corpus()
        failed = [r for r in results if r["status"] == "fail"]
        if args.json:
            import json as json_module

            print(json_module.dumps(results, indent=2, sort_keys=True))
        else:
            for result in results:
                detail = f"  ({result['detail']})" if result["detail"] else ""
                print(f"{result['status']:<10} {result['file']}{detail}")
            print(f"{len(results) - len(failed)}/{len(results)} corpus "
                  "entries raise their recorded typed error")
        return 1 if failed else 0

    budget = 25 if args.quick else args.budget
    report = run_fuzz(seed=args.seed, budget=budget)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_loadgen(args) -> int:
    import json as json_module

    from repro.serving.loadgen import demo_specs, generate_load, summarize_trace

    scale = 0.25 if args.quick else args.scale
    duration = 0.2 if args.quick else args.duration
    specs = demo_specs(scale=scale)
    trace = generate_load(specs, duration_s=duration, seed=args.seed)
    summaries = summarize_trace(trace, duration_s=duration)
    if args.json:
        payload = {
            "seed": args.seed,
            "duration_s": duration,
            "scale": scale,
            "requests": len(trace),
            "classes": [summary.to_dict() for summary in summaries],
        }
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"open-loop load: {len(trace)} requests over {duration:g}s "
          f"(seed {args.seed}, scale {scale:g})")
    print(f"{'tenant':<10} {'class':<12} {'requests':>8} {'mean r/s':>9} "
          f"{'peak r/s':>9} {'users':>6} {'sessions':>8}")
    for summary in summaries:
        print(f"{summary.tenant:<10} {summary.slo_class:<12} "
              f"{summary.requests:>8} {summary.mean_rate_per_s:>9.1f} "
              f"{summary.peak_rate_per_s:>9.1f} {summary.users:>6} "
              f"{summary.sessions:>8}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cloudblazer i20 / DTU 2.0 reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("specs", help="device spec tables (I & IV)")
    commands.add_parser("models", help="the Table III model zoo")

    run = commands.add_parser("run", help="simulate one inference")
    run.add_argument("model")
    run.add_argument("--device", default="i20", choices=("i20", "i10"))
    run.add_argument("--batch", type=int, default=1)
    run.add_argument("--groups", type=int, default=None)
    run.add_argument("--profile", action="store_true")

    estimate = commands.add_parser(
        "estimate", help="analytical latency on every device"
    )
    estimate.add_argument("model")
    estimate.add_argument("--batch", type=int, default=1)

    commands.add_parser("evaluate", help="Fig. 13/15 comparison table")

    faults = commands.add_parser(
        "faults", help="fault-injection campaign with RAS recovery"
    )
    faults.add_argument("--model", default="resnet50")
    faults.add_argument("--device", default="i20", choices=("i20", "i10"))
    faults.add_argument("--groups", type=int, default=2)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--dma-rate", type=float, default=0.01,
                        help="corruption probability per DMA transaction")
    faults.add_argument("--ecc-rate", type=float, default=0.01,
                        help="correctable-ECC probability per transfer")
    faults.add_argument("--hang-rate", type=float, default=0.001,
                        help="core-hang probability per kernel per group")
    faults.add_argument("--sync-rate", type=float, default=0.001,
                        help="lost-sync probability per operation")
    faults.add_argument("--retries", type=int, default=3)
    faults.add_argument("--queue-limit", type=int, default=32)
    faults.add_argument("--sla-ms", type=float, default=50.0)
    faults.add_argument("--rate", type=float, default=100.0,
                        help="tenant-a request rate per second")
    faults.add_argument("--duration", type=float, default=0.5,
                        help="trace duration in seconds")

    profile = commands.add_parser(
        "profile", help="per-category/per-engine tables from the metrics registry"
    )
    profile.add_argument("model")
    profile.add_argument("--device", default="i20", choices=("i20", "i10"))
    profile.add_argument("--batch", type=int, default=1)
    profile.add_argument("--groups", type=int, default=None)
    profile.add_argument("--fleet", action="store_true",
                         help="append fleet-resilience gauges from a "
                              "replica-kill chaos demo on the same registry")

    trace = commands.add_parser(
        "trace", help="whole-stack Chrome trace for chrome://tracing / Perfetto"
    )
    trace.add_argument("model")
    trace.add_argument("-o", "--output", default="trace.json")
    trace.add_argument("--groups", type=int, default=2)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--fault-rate", type=float, default=0.02,
                       help="transient fault rate per hardware event")
    trace.add_argument("--rate", type=float, default=200.0,
                       help="request rate per second")
    trace.add_argument("--duration", type=float, default=0.05,
                       help="request-trace duration in seconds")

    chaos = commands.add_parser(
        "chaos", help="deterministic chaos suite over the fleet manager"
    )
    chaos.add_argument("--quick", action="store_true",
                       help="run only the CI smoke subset")
    chaos.add_argument("--seed", type=int, default=0,
                       help="root seed; every scenario/trace stream derives "
                            "from it")
    chaos.add_argument("--scenario", action="append", default=None,
                       help="run a specific scenario (repeatable)")
    chaos.add_argument("--list", action="store_true",
                       help="list built-in scenarios and exit")
    chaos.add_argument("--json", action="store_true",
                       help="emit the canonical JSON suite report")
    chaos.add_argument("--measured", action="store_true",
                       help="use detailed-simulator service times instead "
                            "of the synthetic defaults")
    chaos.add_argument("--workers", type=int, default=None,
                       help="shard scenarios across N worker processes "
                            "(default: CPU count; 1 forces serial; results "
                            "are byte-identical either way)")
    chaos.add_argument("--routing", choices=("heap", "reference"),
                       default=None,
                       help="fleet replica-selection implementation "
                            "(default: heap, or REPRO_FLEET_ROUTING; the "
                            "reference path is the pinned O(N) scan — "
                            "reports are byte-identical either way)")

    fuzz = commands.add_parser(
        "fuzz", help="differential graph fuzzer over the compile pipeline"
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="root seed; generation, mutation and inputs all "
                           "derive labelled streams from it")
    fuzz.add_argument("--budget", type=int, default=50,
                      help="number of generate/mutate/check rounds")
    fuzz.add_argument("--quick", action="store_true",
                      help="CI smoke subset (budget 25)")
    fuzz.add_argument("--json", action="store_true",
                      help="emit the canonical JSON campaign report")
    fuzz.add_argument("--replay", action="store_true",
                      help="replay the checked-in regression corpus instead "
                           "of fuzzing")
    fuzz.add_argument("--write-corpus", action="store_true",
                      help="regenerate tests/graph/corpus from the seed")
    fuzz.add_argument("--list", action="store_true",
                      help="list mutation kinds and exit")

    loadgen = commands.add_parser(
        "loadgen", help="deterministic open-loop load generation demo"
    )
    loadgen.add_argument("--seed", type=int, default=0,
                         help="root seed; every spec draws its own labelled "
                              "stream from it")
    loadgen.add_argument("--duration", type=float, default=0.5,
                         help="trace duration in seconds")
    loadgen.add_argument("--scale", type=float, default=1.0,
                         help="rate multiplier applied to the demo specs")
    loadgen.add_argument("--quick", action="store_true",
                         help="CI smoke variant (scale 0.25, duration 0.2s)")
    loadgen.add_argument("--json", action="store_true",
                         help="emit the canonical byte-stable JSON summary")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "specs": _cmd_specs,
        "models": _cmd_models,
        "run": _cmd_run,
        "estimate": _cmd_estimate,
        "evaluate": _cmd_evaluate,
        "faults": _cmd_faults,
        "profile": _cmd_profile,
        "trace": _cmd_trace,
        "chaos": _cmd_chaos,
        "fuzz": _cmd_fuzz,
        "loadgen": _cmd_loadgen,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
