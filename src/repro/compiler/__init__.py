"""Operator compiler ("TopsEngine"): tiling, vectorize, tensorize, regalloc, packetize."""

from repro.compiler.codegen import CodegenError, GeneratedKernel, execute_kernel, generate_elementwise_kernel
from repro.compiler.errors import CompileError
from repro.compiler.kernel import Kernel, KernelCost
from repro.compiler.lowering import CompiledModel, LoweringError, lower_graph, lower_node
from repro.compiler.pipeline import CompileResult, compile_graph
from repro.compiler.packetizer import PacketizeReport, dependence_graph, packetize
from repro.compiler.regalloc import AllocationError, AllocationResult, allocate_registers, total_conflicts
from repro.compiler.tensorize import (
    GemmShape,
    TensorizationPlan,
    TensorizeError,
    conv2d_as_gemm,
    matrix_engine_efficiency,
    tensorize_gemm,
)
from repro.compiler.tiling import TilingError, TilingPlan, TilingSearchSpace, tune_tiling
from repro.compiler.vectorize import (
    ScalarLoop,
    ScalarOp,
    SuperwordGroup,
    VectorizationResult,
    pack_superwords,
    vectorize_loop,
)

__all__ = [
    "AllocationError", "CodegenError", "CompileError", "CompileResult",
    "GeneratedKernel", "compile_graph",
    "execute_kernel", "generate_elementwise_kernel", "AllocationResult", "CompiledModel", "GemmShape",
    "Kernel", "KernelCost", "LoweringError", "PacketizeReport", "ScalarLoop",
    "ScalarOp", "SuperwordGroup", "TensorizationPlan", "TensorizeError",
    "TilingError", "TilingPlan", "TilingSearchSpace", "VectorizationResult",
    "allocate_registers", "conv2d_as_gemm", "dependence_graph", "lower_graph",
    "lower_node", "matrix_engine_efficiency", "pack_superwords", "packetize",
    "tensorize_gemm", "total_conflicts", "tune_tiling", "vectorize_loop",
]
