"""Kernel code generation: elementwise graph kernels -> VLIW programs.

The last mile of the TopsEngine pipeline for the operator class the DSL
example hand-writes: chains of elementwise/activation operators (exactly
what the fusion pass produces between matrix anchors) are compiled into
real, executable VLIW code —

1. the tensor extent is strip-mined by the vector lane count
   (:mod:`repro.compiler.vectorize`'s loop-level strategy),
2. each strip emits loads, the operator chain (vector slot for arithmetic,
   SFU slot for transcendentals), and a store,
3. virtual registers rotate over a few banks of names so consecutive strips
   can overlap in the packetizer,
4. the stream goes through :func:`~repro.compiler.packetizer.packetize`
   (alias analysis on) and
   :func:`~repro.compiler.regalloc.allocate_registers`.

The result runs on the functional :class:`~repro.engines.compute_core.
ComputeCore` and must match the numpy reference executor bit-for-bit up to
SFU LUT accuracy — tests enforce it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.errors import CompileError
from repro.compiler.packetizer import PacketizeReport, packetize
from repro.compiler.regalloc import AllocationResult, allocate_registers
from repro.core.datatypes import DType
from repro.engines.compute_core import ComputeCore
from repro.engines.vector import lanes_for
from repro.engines.vliw import Instruction, Program
from repro.graph.fusion import fused_members
from repro.graph.ir import Graph, Node

#: graph ops the vector slot implements directly
_VECTOR_OPS = {
    "add": "vadd",
    "sub": "vsub",
    "mul": "vmul",
    "div": "vdiv",
    "maximum": "vmax",
    "minimum": "vmin",
    "relu": "vrelu",
}

#: graph ops routed to the SFU slot
_SFU_OPS = frozenset(
    {"sigmoid", "tanh", "gelu", "swish", "softplus", "erf", "exp", "sqrt"}
)

#: how many virtual-register name banks strips rotate through
_ROTATION = 3


class CodegenError(CompileError):
    """The kernel contains an operator codegen cannot emit."""


@dataclass
class GeneratedKernel:
    """Executable artifact for one elementwise kernel."""

    name: str
    program: Program
    inputs: tuple[str, ...]
    output: str
    elements: int
    schedule: PacketizeReport
    allocation: AllocationResult

    @property
    def code_bytes(self) -> int:
        return self.program.code_bytes


def supports(node: Node) -> bool:
    """Whether codegen can compile this (possibly fused) node."""
    for member in fused_members(node):
        if member.op_type not in _VECTOR_OPS and member.op_type not in _SFU_OPS:
            return False
    return True


def _flat_extent(graph: Graph, tensor: str) -> int:
    return graph.tensor_type(tensor).num_elements()


def generate_elementwise_kernel(
    node: Node,
    graph: Graph,
    dtype: DType = DType.FP32,
) -> GeneratedKernel:
    """Compile one elementwise (chain) kernel to an allocated VLIW program."""
    members = fused_members(node)
    if not supports(node):
        unsupported = [
            member.op_type
            for member in members
            if member.op_type not in _VECTOR_OPS and member.op_type not in _SFU_OPS
        ]
        raise CodegenError(f"{node.name}: cannot codegen ops {unsupported}")
    if len(node.outputs) != 1:
        raise CodegenError(f"{node.name}: elementwise kernels have one output")

    output = node.outputs[0]
    elements = _flat_extent(graph, output)
    for tensor in node.inputs:
        if _flat_extent(graph, tensor) != elements:
            raise CodegenError(
                f"{node.name}: broadcasting not supported in codegen "
                f"({tensor} has a different extent)"
            )
    lanes = lanes_for(dtype)

    instructions: list[Instruction] = []
    register_counter = [0]

    def fresh(bank: int) -> str:
        register_counter[0] += 1
        return f"t{bank}_{register_counter[0]}"

    internal_producers = {
        member.outputs[0]: member for member in members
    }

    for strip_index, start in enumerate(range(0, elements, lanes)):
        stop = min(start + lanes, elements)
        bank = strip_index % _ROTATION
        values: dict[str, str] = {}  # tensor name -> register holding it

        def load(tensor: str) -> str:
            if tensor in values:
                return values[tensor]
            register = fresh(bank)
            instructions.append(
                Instruction("ld", register, imm=(tensor, start, stop))
            )
            values[tensor] = register
            return register

        for member in members:
            sources = []
            for name in member.inputs:
                if name in internal_producers and name in values:
                    sources.append(values[name])
                else:
                    sources.append(load(name))
            destination = fresh(bank)
            if member.op_type in _VECTOR_OPS:
                instructions.append(
                    Instruction(
                        _VECTOR_OPS[member.op_type], destination, tuple(sources)
                    )
                )
            else:
                instructions.append(
                    Instruction(
                        "sfu", destination, (sources[0],),
                        imm=(member.op_type,),
                    )
                )
            values[member.outputs[0]] = destination
        instructions.append(
            Instruction(
                "st", None, (values[output],), imm=(output, start, stop)
            )
        )

    program, schedule = packetize(instructions, alias_analysis=True)
    allocation = allocate_registers(program)
    return GeneratedKernel(
        name=node.name,
        program=allocation.program,
        inputs=tuple(
            name for name in node.inputs if name not in internal_producers
        ),
        output=output,
        elements=elements,
        schedule=schedule,
        allocation=allocation,
    )


def execute_kernel(
    kernel: GeneratedKernel,
    inputs: dict[str, np.ndarray],
    dtype: DType = DType.FP32,
) -> np.ndarray:
    """Run the generated program on a functional compute core."""
    core = ComputeCore(dtype=dtype, l1_capacity_bytes=64 << 20)
    for name in kernel.inputs:
        if name not in inputs:
            raise CodegenError(f"missing kernel input {name!r}")
        payload = np.asarray(inputs[name], dtype=np.float64).ravel()
        if payload.size != kernel.elements:
            raise CodegenError(
                f"input {name!r} has {payload.size} elements, kernel wants "
                f"{kernel.elements}"
            )
        core.l1.write(name, payload)
    core.l1.write(kernel.output, np.zeros(kernel.elements))
    core.run(kernel.program)
    return core.l1.read(kernel.output)
