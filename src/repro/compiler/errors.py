"""Typed compile-pipeline errors.

Every failure inside the TopsInference/TopsEngine pipeline — validation,
optimization passes, lowering, tiling, register allocation — surfaces as a
:class:`CompileError` (or subclass) carrying the offending node's name and
the pipeline stage, never a bare ``KeyError``/``IndexError``. The class
subclasses :class:`repro.graph.ir.GraphError` so existing
``except GraphError`` / ``except ValueError`` call sites keep working.
"""

from __future__ import annotations

from repro.graph.ir import GraphError


class CompileError(GraphError):
    """The compile pipeline rejected a graph; carries node + stage."""

    def __init__(
        self,
        message: str,
        node: str | None = None,
        stage: str | None = None,
    ) -> None:
        super().__init__(message)
        self.node = node
        self.stage = stage


__all__ = ["CompileError"]
