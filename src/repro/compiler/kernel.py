"""Compiled kernel descriptor: what lowering hands to the runtime.

A :class:`Kernel` carries everything the executor and the performance model
need about one fused operator: arithmetic work, memory traffic at the fusion
boundary, code size (for instruction-buffer behaviour), and the tiling /
tensorization plans the auto-tuners chose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.datatypes import DType


@dataclass(frozen=True)
class KernelCost:
    """Raw resource demands of one kernel."""

    flops: float
    input_bytes: int
    output_bytes: int
    weight_bytes: int
    internal_bytes: int = 0
    """Intermediate tensors fusion keeps on-chip (saved L3 traffic)."""

    @property
    def boundary_bytes(self) -> int:
        """Bytes that must cross the L3 boundary."""
        return self.input_bytes + self.output_bytes + self.weight_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per boundary byte — the roofline x-coordinate."""
        if self.boundary_bytes == 0:
            return float("inf")
        return self.flops / self.boundary_bytes


@dataclass
class Kernel:
    """One schedulable unit of work on a processing group."""

    name: str
    category: str
    dtype: DType
    cost: KernelCost
    code_bytes: int
    members: int = 1
    """How many graph nodes fused into this kernel."""
    tiling: "object | None" = None
    tensorization: "object | None" = None
    vectorization: "object | None" = None
    sparsity: float = 0.0
    """Fraction of zero elements in this kernel's activations."""
    attrs: dict = field(default_factory=dict)

    @property
    def is_fused(self) -> bool:
        return self.members > 1
