"""Lowering: optimized graph -> compiled kernels for one chip config.

This is where TopsEngine's pieces meet: for every (possibly fused) node the
lowerer

- aggregates FLOPs and splits memory traffic into boundary bytes (crossing
  L3) vs internal bytes (kept on-chip by fusion),
- runs **auto-tensorization** for conv/GEMM anchors to get the matrix-engine
  utilization for the node's actual shapes,
- runs the **data-flow auto-tuner** to pick a tiling and the matching DMA
  configuration count (1 with repeat mode),
- estimates kernel **code size**, which the instruction-buffer model charges
  on fetch.

The output :class:`CompiledModel` is an ordered kernel list the runtime
executes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.errors import CompileError
from repro.compiler.kernel import Kernel, KernelCost
from repro.compiler.tensorize import (
    GemmShape,
    TensorizationPlan,
    conv2d_as_gemm,
    tensorize_gemm,
)
from repro.compiler.tiling import TilingPlan, tune_tiling
from repro.core.config import ChipConfig
from repro.core.datatypes import DType
from repro.graph.fusion import fused_members
from repro.graph.ir import Graph, GraphError, Node
from repro.graph.ops import node_flops, spec

#: instruction-count estimates per op category, used for code size
_CODE_INSTRUCTIONS = {
    "conv": 1400,
    "gemm": 1100,
    "elementwise": 180,
    "activation": 260,
    "norm": 320,
    "softmax": 380,
    "pool": 240,
    "reduce": 220,
    "layout": 160,
    "embedding": 200,
    "sort": 900,
}
_BYTES_PER_INSTRUCTION = 16


class LoweringError(CompileError):
    """Lowering hit a node it cannot compile."""


@dataclass
class CompiledModel:
    """Ordered kernels plus compile-time metadata for one graph."""

    name: str
    kernels: list[Kernel]
    dtype: DType
    chip: ChipConfig
    fusion_groups: int = 0

    @property
    def total_flops(self) -> float:
        return sum(kernel.cost.flops for kernel in self.kernels)

    @property
    def total_boundary_bytes(self) -> int:
        return sum(kernel.cost.boundary_bytes for kernel in self.kernels)

    @property
    def total_internal_bytes(self) -> int:
        return sum(kernel.cost.internal_bytes for kernel in self.kernels)

    @property
    def total_code_bytes(self) -> int:
        return sum(kernel.code_bytes for kernel in self.kernels)

    @property
    def weight_bytes(self) -> int:
        return sum(kernel.cost.weight_bytes for kernel in self.kernels)

    @property
    def peak_activation_bytes(self) -> int:
        """Largest single-kernel activation footprint (inputs + outputs
        live simultaneously while a kernel runs)."""
        return max(
            (
                kernel.cost.input_bytes + kernel.cost.output_bytes
                for kernel in self.kernels
            ),
            default=0,
        )

    def memory_footprint_bytes(self) -> int:
        """Device memory one resident instance needs: all weights + kernel
        code + double-buffered peak activations."""
        return (
            self.weight_bytes
            + self.total_code_bytes
            + 2 * self.peak_activation_bytes
        )

    def fits(self, capacity_bytes: int) -> bool:
        return self.memory_footprint_bytes() <= capacity_bytes


def _node_gemm_shape(node: Node, graph: Graph) -> GemmShape | None:
    """GEMM view of a conv/dense/matmul node for the tensorizer."""
    if node.op_type == "conv2d":
        out_type = graph.tensor_type(node.outputs[0])
        weight_type = graph.tensor_type(node.inputs[1])
        batch, _out_c, out_h, out_w = out_type.shape
        out_c, weight_in, k_h, k_w = weight_type.shape
        if any(isinstance(dim, str) for dim in (batch, out_h, out_w)):
            raise LoweringError(
                f"{node.name}: bind symbolic dims before lowering",
                node=node.name,
            )
        return conv2d_as_gemm(batch, out_c, out_h, out_w, weight_in, k_h, k_w)
    if node.op_type == "conv1d":
        out_type = graph.tensor_type(node.outputs[0])
        weight_type = graph.tensor_type(node.inputs[1])
        batch, out_c, out_l = out_type.shape
        _o, weight_in, kernel = weight_type.shape
        if any(isinstance(dim, str) for dim in (batch, out_l)):
            raise LoweringError(
                f"{node.name}: bind symbolic dims before lowering",
                node=node.name,
            )
        return GemmShape(m=batch * out_l, n=out_c, k=weight_in * kernel)
    if node.op_type == "conv_transpose2d":
        in_type = graph.tensor_type(node.inputs[0])
        weight_type = graph.tensor_type(node.inputs[1])
        batch, in_c, in_h, in_w = in_type.shape
        _i, out_c, k_h, k_w = weight_type.shape
        if any(isinstance(dim, str) for dim in (batch, in_h, in_w)):
            raise LoweringError(
                f"{node.name}: bind symbolic dims before lowering",
                node=node.name,
            )
        return GemmShape(m=batch * in_h * in_w, n=out_c * k_h * k_w, k=in_c)
    if node.op_type == "dense":
        in_type = graph.tensor_type(node.inputs[0])
        weight_type = graph.tensor_type(node.inputs[1])
        rows = 1
        for dim in in_type.shape[:-1]:
            if isinstance(dim, str):
                raise LoweringError(
                    f"{node.name}: bind symbolic dims before lowering",
                    node=node.name,
                )
            rows *= dim
        out_features, in_features = weight_type.shape
        return GemmShape(m=rows, n=out_features, k=in_features)
    if node.op_type == "matmul":
        a_type = graph.tensor_type(node.inputs[0])
        out_type = graph.tensor_type(node.outputs[0])
        if not (a_type.is_static and out_type.is_static):
            raise LoweringError(
                f"{node.name}: bind symbolic dims before lowering",
                node=node.name,
            )
        batch = 1
        for dim in out_type.shape[:-2]:
            batch *= dim
        m, n = out_type.shape[-2], out_type.shape[-1]
        k = a_type.shape[-1]
        return GemmShape(m=batch * m, n=n, k=k)
    return None


def _code_bytes(members: list[Node]) -> int:
    instructions = sum(
        _CODE_INSTRUCTIONS.get(spec(member.op_type).category, 200)
        for member in members
    )
    return instructions * _BYTES_PER_INSTRUCTION


def lower_node(
    node: Node,
    graph: Graph,
    chip: ChipConfig,
    dtype: DType,
) -> Kernel:
    """Compile one (fused or primitive) node into a kernel."""
    members = fused_members(node)
    internal = set(node.attrs.get("internal_tensors", []))

    flops = 0.0
    for member in members:
        input_types = [graph.tensor_type(name) for name in member.inputs]
        output_types = [graph.tensor_type(name) for name in member.outputs]
        flops += node_flops(member, input_types, output_types)

    # Byte counts use the *deployment* dtype: an FP16 compile moves half
    # the bytes the builder's FP32 tensor types would suggest.
    def _nbytes(name: str) -> int:
        return graph.tensor_type(name).num_elements() * dtype.bytes

    input_bytes = 0
    weight_bytes = 0
    for name in node.inputs:
        if name in graph.initializers:
            weight_bytes += _nbytes(name)
        else:
            input_bytes += _nbytes(name)
    output_bytes = sum(_nbytes(name) for name in node.outputs)
    internal_bytes = sum(_nbytes(name) for name in internal)

    anchor = node.attrs.get("anchor", node.op_type)
    category = spec(anchor).category if anchor != "fused" else "elementwise"
    cost = KernelCost(
        flops=flops,
        input_bytes=input_bytes,
        output_bytes=output_bytes,
        weight_bytes=weight_bytes,
        internal_bytes=internal_bytes,
    )

    tensorization: TensorizationPlan | None = None
    anchor_node = members[0]
    gemm_shape = _node_gemm_shape(anchor_node, graph)
    if gemm_shape is not None:
        tensorization = tensorize_gemm(
            gemm_shape, dtype, fine_grained=chip.features.fine_grained_vmm
        )

    tiling: TilingPlan | None = None
    if cost.boundary_bytes > 0 and flops > 0:
        group_cores = chip.cores_per_group
        compute_rate = chip.core_flops_per_ns(dtype) * group_cores
        tiling = tune_tiling(
            cost,
            l1_capacity_bytes=chip.l1_per_core.capacity_bytes * group_cores,
            compute_flops_per_ns=compute_rate,
            dma_bandwidth_gbps=chip.l3.bandwidth_gbps / chip.total_groups,
            dma_config_overhead_ns=chip.dma_config_overhead_ns,
            repeat_mode=chip.features.repeat_dma,
        )

    sparsity = 0.0
    for member in members:
        sparsity = max(sparsity, float(member.attr("sparsity", 0.0)))

    return Kernel(
        name=node.name,
        category=category,
        dtype=dtype,
        cost=cost,
        code_bytes=_code_bytes(members),
        members=len(members),
        tiling=tiling,
        tensorization=tensorization,
        sparsity=sparsity,
        attrs={"op_type": node.op_type, "anchor": anchor},
    )


def lower_graph(
    graph: Graph, chip: ChipConfig, dtype: DType = DType.FP16
) -> CompiledModel:
    """Compile every node of an optimized graph in execution order."""
    kernels = []
    fusion_groups = 0
    for node in graph.topological_nodes():
        if node.op_type == "fused":
            fusion_groups += 1
        try:
            kernels.append(lower_node(node, graph, chip, dtype))
        except CompileError:
            raise
        except GraphError as error:
            raise LoweringError(
                f"lowering node {node.name!r} ({node.op_type}): {error}",
                node=node.name,
                stage="lowering",
            ) from error
        except Exception as error:
            raise LoweringError(
                f"lowering node {node.name!r} ({node.op_type}) crashed: "
                f"{error!r}",
                node=node.name,
                stage="lowering",
            ) from error
    return CompiledModel(
        name=graph.name,
        kernels=kernels,
        dtype=dtype,
        chip=chip,
        fusion_groups=fusion_groups,
    )
