"""VLIW packetizer with alias analysis (paper §V-B).

"VLIW packetizer is enhanced along with the instruction scheduler. We made
enhancements on alias analysis to reduce ambiguous dependencies. Independent
instructions are discovered and packed into one instruction packet, then
issued all at once. Besides the improvements in runtime performance, kernel
code size is optimized."

Input: a straight-line list of instructions over virtual registers.
The packetizer:

1. builds the dependence graph — register RAW/WAR/WAW edges plus memory
   edges between loads/stores that *may alias*;
2. with alias analysis ON, two memory ops alias only when they touch the
   same tensor name (our symbolic addressing makes this exact); OFF (the
   pre-enhancement behaviour), every store conflicts with every other
   memory op — the "ambiguous dependencies" the paper removed;
3. greedy list-scheduling packs ready instructions into packets, one per
   functional slot.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.engines.vliw import Instruction, Packet, Program, Slot


@dataclass(frozen=True)
class PacketizeReport:
    """Scheduling statistics for one packetization run."""

    instructions: int
    packets: int
    memory_edges: int

    @property
    def ilp(self) -> float:
        """Instructions per packet — the parallelism the scheduler found."""
        if self.packets == 0:
            return 0.0
        return self.instructions / self.packets


def _memory_tensor(instruction: Instruction) -> str | None:
    """The tensor a ld/st touches (symbolic address = first immediate)."""
    if instruction.opcode in ("ld", "st") and instruction.imm:
        return str(instruction.imm[0])
    return None


def dependence_graph(
    instructions: list[Instruction], alias_analysis: bool = True
) -> nx.DiGraph:
    """Edges point from an instruction to ones that must follow it."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(instructions)))
    last_writer: dict[str, int] = {}
    readers_since_write: dict[str, list[int]] = {}
    memory_ops: list[int] = []

    for index, instruction in enumerate(instructions):
        # Register dependencies.
        for register in instruction.registers_read:
            if register in last_writer:
                graph.add_edge(last_writer[register], index, kind="raw")
            readers_since_write.setdefault(register, []).append(index)
        for register in instruction.registers_written:
            if register in last_writer:
                graph.add_edge(last_writer[register], index, kind="waw")
            for reader in readers_since_write.get(register, []):
                if reader != index:
                    graph.add_edge(reader, index, kind="war")
            last_writer[register] = index
            readers_since_write[register] = []

        # Memory dependencies.
        tensor = _memory_tensor(instruction)
        if tensor is not None:
            is_store = instruction.opcode == "st"
            for earlier in memory_ops:
                other = instructions[earlier]
                other_store = other.opcode == "st"
                if not (is_store or other_store):
                    continue  # two loads never conflict
                if alias_analysis:
                    conflict = _memory_tensor(other) == tensor
                else:
                    conflict = True  # ambiguous: assume everything aliases
                if conflict:
                    graph.add_edge(earlier, index, kind="mem")
            memory_ops.append(index)
    return graph


def packetize(
    instructions: list[Instruction], alias_analysis: bool = True
) -> tuple[Program, PacketizeReport]:
    """List-schedule ``instructions`` into legal VLIW packets."""
    graph = dependence_graph(instructions, alias_analysis=alias_analysis)
    remaining_preds = {node: graph.in_degree(node) for node in graph.nodes}
    scheduled: set[int] = set()
    packets: list[Packet] = []

    while len(scheduled) < len(instructions):
        ready = sorted(
            node
            for node in graph.nodes
            if node not in scheduled and remaining_preds[node] == 0
        )
        if not ready:
            raise RuntimeError("dependence graph has a cycle — packetizer bug")
        used_slots: set[Slot] = set()
        written: set[str] = set()
        chosen: list[int] = []
        for node in ready:
            instruction = instructions[node]
            if instruction.slot in used_slots:
                continue
            # The Packet invariant forbids intra-packet WAW; dependence
            # edges already forbid RAW/WAR among ready instructions.
            if any(register in written for register in instruction.registers_written):
                continue
            chosen.append(node)
            used_slots.add(instruction.slot)
            written.update(instruction.registers_written)
        packets.append(Packet(tuple(instructions[node] for node in chosen)))
        for node in chosen:
            scheduled.add(node)
            for successor in graph.successors(node):
                remaining_preds[successor] -= 1

    memory_edges = sum(
        1 for _u, _v, kind in graph.edges(data="kind") if kind == "mem"
    )
    report = PacketizeReport(
        instructions=len(instructions),
        packets=len(packets),
        memory_edges=memory_edges,
    )
    return Program(packets=packets), report
