"""Hardened compile pipeline: validate → optimize → (guard) → lower.

:func:`compile_graph` is the one entry point the runtime uses. It enforces
two contracts a production compiler owes its callers:

- **Typed failure.** A malformed graph always surfaces as a
  :class:`~repro.compiler.errors.CompileError` (or the
  :class:`~repro.graph.ir.GraphValidationError` taxonomy) naming the
  offending node and the pipeline stage — never a bare
  ``KeyError``/``IndexError`` from deep inside a pass.
- **No silent miscompiles.** With ``verify_fusion=True`` the fusion
  equivalence guard (:mod:`repro.graph.equivalence`) replays every fused
  group against its unfused members on seeded inputs; on mismatch the
  pipeline warns, bumps ``fusion_guard_fallbacks_total``, and recompiles
  with fusion disabled instead of shipping wrong numerics.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.compiler.errors import CompileError
from repro.compiler.lowering import CompiledModel, lower_graph
from repro.core.config import ChipConfig
from repro.core.datatypes import DType
from repro.graph.equivalence import FusionGuardReport, verify_fused_graph
from repro.graph.ir import Graph, GraphError
from repro.graph.passes import optimize


@dataclass
class CompileResult:
    """A compiled model plus how the hardened pipeline got there."""

    model: CompiledModel
    fusion: bool
    """Whether the *shipped* model has fusion applied (False after a
    guard fallback even if the caller asked for fusion)."""
    guard: FusionGuardReport | None = None
    fell_back: bool = False


def _wrap(stage: str, graph: Graph, error: Exception) -> CompileError:
    if isinstance(error, GraphError):
        wrapped = CompileError(
            f"{stage} failed for graph {graph.name!r}: {error}",
            node=getattr(error, "node", None),
            stage=stage,
        )
    else:
        wrapped = CompileError(
            f"{stage} crashed for graph {graph.name!r}: {error!r}",
            stage=stage,
        )
    return wrapped


def compile_graph(
    graph: Graph,
    chip: ChipConfig,
    dtype: DType = DType.FP16,
    fusion: bool = True,
    verify_fusion: bool = False,
    seed: int = 0,
    obs=None,
) -> CompileResult:
    """Validate, optimize (optionally guarded) and lower one graph.

    The caller's graph is never mutated: the pipeline works on deep
    copies (``graph.bind({})``), which also means a guard fallback can
    restart from the pristine pre-fusion graph.
    """
    pristine = graph.bind({})
    try:
        pristine.validate(signatures=True)
    except GraphError:
        raise  # already typed, with node provenance
    except Exception as error:  # pragma: no cover - validator is total
        raise _wrap("validate", graph, error) from error

    def _optimize(fuse: bool) -> Graph:
        working = pristine.bind({})
        try:
            optimized, _report = optimize(working, fusion=fuse)
        except CompileError:
            raise
        except Exception as error:
            raise _wrap("optimize", graph, error) from error
        return optimized

    optimized = _optimize(fusion)
    guard: FusionGuardReport | None = None
    fell_back = False
    effective_fusion = fusion
    if verify_fusion and fusion:
        guard = verify_fused_graph(optimized, seed=seed, obs=obs)
        if not guard.ok:
            bad = ", ".join(check.node for check in guard.mismatches)
            warnings.warn(
                f"fusion equivalence guard: graph {graph.name!r} groups "
                f"[{bad}] diverge from their unfused members; compiling "
                "with fusion disabled",
                RuntimeWarning,
                stacklevel=2,
            )
            if obs is not None:
                obs.metrics.counter(
                    "fusion_guard_fallbacks_total",
                    "compiles that reverted to unfused graphs",
                ).inc(len(guard.mismatches))
            optimized = _optimize(False)
            fell_back = True
            effective_fusion = False

    try:
        model = lower_graph(optimized, chip, dtype)
    except CompileError:
        raise  # lower_graph already attaches node + stage
    except Exception as error:  # pragma: no cover - lower_graph wraps
        raise _wrap("lower", graph, error) from error
    return CompileResult(
        model=model,
        fusion=effective_fusion,
        guard=guard,
        fell_back=fell_back,
    )


__all__ = ["CompileResult", "compile_graph"]
