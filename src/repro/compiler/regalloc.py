"""Register allocation avoiding bank conflicts (paper §V-B).

"Register allocator tries to avoid register bank conflicts that lead to
pipeline stalls. By preventing register bank conflicts during compilation,
the VLIW pipeline can access required instruction operands without incurring
hardware/software overheads."

The allocator renames *virtual* registers (``t0``, ``t1``...) to the 32
physical registers (``v0``..``v31``, 4 banks) such that

- registers with overlapping **live ranges** never share a physical
  register (classic liveness-based coloring — long strip-mined kernels
  reuse registers across strips), and
- within each packet, source operands prefer **distinct banks**, because a
  packet reading two same-bank registers stalls a cycle per extra operand
  (:meth:`repro.engines.vliw.Packet.stall_cycles`).

Greedy coloring in live-range order; bank choice minimizes same-packet read
collisions. Residual conflicts are reported, not hidden — a packet reading
five operands cannot be conflict-free on four banks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.errors import CompileError
from repro.engines.vliw import (
    REGISTER_BANKS,
    Instruction,
    Packet,
    Program,
    register_bank,
)

NUM_PHYSICAL_REGISTERS = 32


class AllocationError(CompileError, RuntimeError):
    """The program needs more live registers than the file provides.

    Dual-bases: :class:`~repro.compiler.errors.CompileError` folds it
    into the typed compile-error taxonomy; ``RuntimeError`` preserves
    the class's historical base for existing ``except RuntimeError``
    call sites.
    """


@dataclass(frozen=True)
class AllocationResult:
    """Output of one allocation run."""

    program: Program
    mapping: dict[str, str]
    conflicts_before: int
    conflicts_after: int

    @property
    def conflicts_removed(self) -> int:
        return self.conflicts_before - self.conflicts_after


def total_conflicts(program: Program) -> int:
    return sum(packet.bank_conflicts() for packet in program.packets)


def _live_ranges(program: Program) -> dict[str, tuple[int, int]]:
    """[first definition or use, last use] packet index per register."""
    ranges: dict[str, tuple[int, int]] = {}
    for index, packet in enumerate(program.packets):
        for instruction in packet.instructions:
            for register in (
                instruction.registers_read + instruction.registers_written
            ):
                if register in ranges:
                    start, _ = ranges[register]
                    ranges[register] = (start, index)
                else:
                    ranges[register] = (index, index)
    return ranges


def _co_read_sets(program: Program) -> list[set[str]]:
    """Registers read together in one packet (the bank-conflict domain)."""
    return [
        {
            register
            for instruction in packet.instructions
            for register in instruction.registers_read
        }
        for packet in program.packets
    ]


def allocate_registers(program: Program, prefix: str = "v") -> AllocationResult:
    """Rename every register to a liveness-safe, bank-conflict-poor layout."""
    conflicts_before = total_conflicts(program)
    ranges = _live_ranges(program)
    co_reads = _co_read_sets(program)

    # Which packets each register is co-read in (for bank preference).
    read_in: dict[str, list[int]] = {register: [] for register in ranges}
    for index, group in enumerate(co_reads):
        for register in group:
            read_in[register].append(index)

    def overlaps(a: tuple[int, int], b: tuple[int, int]) -> bool:
        return a[0] <= b[1] and b[0] <= a[1]

    mapping: dict[str, str] = {}
    assigned_ranges: dict[str, list[tuple[str, tuple[int, int]]]] = {}
    # allocate in order of first definition for determinism
    order = sorted(ranges, key=lambda register: (ranges[register], register))
    for register in order:
        live = ranges[register]
        # Physical registers whose current occupants' ranges all avoid ours.
        free: list[int] = []
        for physical in range(NUM_PHYSICAL_REGISTERS):
            name = f"{prefix}{physical}"
            occupants = assigned_ranges.get(name, [])
            if all(not overlaps(live, other) for _virt, other in occupants):
                free.append(physical)
        if not free:
            raise AllocationError(
                f"program needs more than {NUM_PHYSICAL_REGISTERS} "
                "simultaneously-live registers"
            )
        # Bank preference: count collisions with already-assigned co-reads.
        def collision_count(physical: int) -> int:
            bank = physical % REGISTER_BANKS
            collisions = 0
            for packet_index in read_in[register]:
                for other in co_reads[packet_index]:
                    if other == register or other not in mapping:
                        continue
                    if register_bank(mapping[other]) == bank:
                        collisions += 1
            return collisions

        best = min(free, key=lambda physical: (collision_count(physical), physical))
        name = f"{prefix}{best}"
        mapping[register] = name
        assigned_ranges.setdefault(name, []).append((register, live))

    rewritten = _rewrite(program, mapping)
    return AllocationResult(
        program=rewritten,
        mapping=mapping,
        conflicts_before=conflicts_before,
        conflicts_after=total_conflicts(rewritten),
    )


def _rewrite(program: Program, mapping: dict[str, str]) -> Program:
    packets = []
    for packet in program.packets:
        packets.append(
            Packet(
                tuple(
                    Instruction(
                        opcode=instruction.opcode,
                        dest=mapping.get(instruction.dest, instruction.dest),
                        srcs=tuple(
                            mapping.get(register, register)
                            for register in instruction.srcs
                        ),
                        imm=instruction.imm,
                    )
                    for instruction in packet.instructions
                )
            )
        )
    return Program(packets=packets)
