"""Auto-tensorization: mapping linear algebra onto VMM patterns (§V-B).

"Auto-tensorization is developed to harness DTU's matrix engine. It targets
special computation patterns, such as matrix multiplication and convolution.
Loop transformations, e.g., loop tiling and loop switching, are applied to
help identify VMM computations according to the various vector/matrix shapes
the matrix engine supports."

Given a GEMM-shaped computation ``(M, N, K)`` the tensorizer picks the VMM
pattern that wastes the fewest MACs on padding. Fine-grained VMM (DTU 2.0)
may choose any supported ``rows x cols``; the coarse GEMM engine (DTU 1.0
behaviour / ablation) is locked to the full square tile, which hurts the
tall-and-skinny matrices §III calls out (group/depth-wise convolutions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compiler.errors import CompileError
from repro.core.datatypes import DType
from repro.engines.matrix import supported_patterns


class TensorizeError(CompileError):
    """The computation cannot map onto the matrix engine.

    Subclasses :class:`~repro.compiler.errors.CompileError` (a
    ``ValueError`` via ``GraphError``), so prior ``except ValueError``
    call sites keep working.
    """


@dataclass(frozen=True)
class GemmShape:
    """Problem shape: ``C[M, N] += A[M, K] @ B[K, N]``."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) < 1:
            raise TensorizeError(f"degenerate GEMM shape {self}")

    @property
    def useful_macs(self) -> int:
        return self.m * self.n * self.k

    @property
    def is_tall_skinny(self) -> bool:
        """Heavily rectangular shapes where coarse tiling wastes work."""
        longest = max(self.m, self.n, self.k)
        shortest = min(self.m, self.n, self.k)
        return longest >= 8 * shortest


def conv2d_as_gemm(
    batch: int,
    out_channels: int,
    out_height: int,
    out_width: int,
    in_channels_per_group: int,
    kernel_h: int,
    kernel_w: int,
) -> GemmShape:
    """The im2col view of a convolution (per group)."""
    return GemmShape(
        m=batch * out_height * out_width,
        n=out_channels,
        k=in_channels_per_group * kernel_h * kernel_w,
    )


@dataclass(frozen=True)
class TensorizationPlan:
    """Chosen VMM mapping for one GEMM."""

    shape: GemmShape
    pattern_rows: int
    pattern_cols: int
    vmm_count: int
    issued_macs: int

    @property
    def utilization(self) -> float:
        """Useful MACs / issued MACs — padding waste brings this below 1."""
        if self.issued_macs == 0:
            return 0.0
        return self.shape.useful_macs / self.issued_macs


def _candidate_patterns(dtype: DType, fine_grained: bool) -> list[tuple[int, int]]:
    patterns = sorted(
        {
            (pattern.rows, pattern.cols)
            for pattern in supported_patterns()
            if pattern.dtype is dtype
        }
    )
    if fine_grained:
        return patterns
    # Coarse GEMM engine: only the largest (square-most) tile exists.
    return [max(patterns, key=lambda rc: rc[0] * rc[1])]


def tensorize_gemm(
    shape: GemmShape,
    dtype: DType = DType.FP32,
    fine_grained: bool = True,
) -> TensorizationPlan:
    """Choose the VMM pattern minimizing issued MACs for this GEMM.

    The loop nest maps as: K tiles over pattern rows (vector length),
    N tiles over pattern cols (output lanes), M iterations of VMM issues.
    "Loop switching" (§V-B) also tries the transposed mapping — computing
    ``C^T = B^T A^T`` swaps M and N, which rescues narrow-output GEMMs
    (e.g. a 3-channel conv) from catastrophic column padding.
    """
    best: TensorizationPlan | None = None
    mappings = [shape]
    if fine_grained and shape.m != shape.n:
        mappings.append(GemmShape(m=shape.n, n=shape.m, k=shape.k))
    for mapped in mappings:
        for rows, cols in _candidate_patterns(dtype, fine_grained):
            k_tiles = math.ceil(mapped.k / rows)
            n_tiles = math.ceil(mapped.n / cols)
            vmm_count = mapped.m * k_tiles * n_tiles
            issued = vmm_count * rows * cols
            plan = TensorizationPlan(
                shape=shape,
                pattern_rows=rows,
                pattern_cols=cols,
                vmm_count=vmm_count,
                issued_macs=issued,
            )
            if best is None or plan.issued_macs < best.issued_macs:
                best = plan
    if best is None:
        raise TensorizeError(f"no VMM pattern available for {dtype}")
    return best


def matrix_engine_efficiency(
    shape: GemmShape, dtype: DType = DType.FP16, fine_grained: bool = True
) -> float:
    """Shortcut: utilization of the chosen plan (performance-model input)."""
    return tensorize_gemm(shape, dtype, fine_grained).utilization


def gpu_tile_utilization(
    shape: GemmShape,
    tile_m: int = 64,
    tile_n: int = 64,
    tile_k: int = 32,
) -> float:
    """Tensor-core tile utilization of a GPU GEMM kernel.

    GPU tensor-core kernels tile the problem with large thread-block tiles;
    dimensions that do not fill a tile pad and waste MACs — the GPU-side
    analogue of our VMM padding, and the reason small / tall-skinny GEMMs
    (Conformer blocks, depthwise convs) underuse GPUs while big square ones
    (BERT, VGG) run near peak. Both problem orientations are considered,
    mirroring library kernel selection.
    """
    best = 0.0
    for m, n in ((shape.m, shape.n), (shape.n, shape.m)):
        padded = (
            math.ceil(m / tile_m) * tile_m
            * math.ceil(n / tile_n) * tile_n
            * math.ceil(shape.k / tile_k) * tile_k
        )
        best = max(best, shape.useful_macs / padded)
    return min(best, 1.0)
