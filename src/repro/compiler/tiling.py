"""Auto-tuning on data flows: tiling search over the memory hierarchy.

Paper §V-B: "Auto-tuning on data flows searches for efficient data tiling
solutions that benefit most from DTU's memory hierarchy and bandwidth. The
generated data flows are mapped to specific DMA transactions, performing
data layout transformations on the fly. By pipelining the computation and
data flow, DTU's computational power is effectively utilized."

The tuner models the canonical load-compute-store pipeline with
multiple-buffering: a kernel's working set is cut into ``tiles`` slices;
each slice is DMA'd L3->L1 while the previous slice computes. Given compute
throughput and DMA bandwidth it evaluates candidate tile counts and buffer
depths, returning the plan with the best pipelined time — and, because tiles
follow a fixed stride, the plan maps onto one repeat-mode DMA configuration
(Fig. 6) when the hardware supports it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.errors import CompileError
from repro.compiler.kernel import KernelCost


class TilingError(CompileError):
    """No legal tiling exists (e.g. working set below one element).

    Subclasses :class:`~repro.compiler.errors.CompileError`, which is a
    ``ValueError`` through ``GraphError`` — existing
    ``except ValueError`` call sites keep working.
    """


@dataclass(frozen=True)
class TilingPlan:
    """One evaluated data-flow solution."""

    tiles: int
    buffers: int
    tile_bytes: int
    compute_time_ns: float
    dma_time_ns: float
    pipelined_time_ns: float
    dma_configurations: int

    @property
    def overlap_efficiency(self) -> float:
        """Serial time / pipelined time; > 1 means overlap is paying off."""
        serial = self.compute_time_ns + self.dma_time_ns
        if self.pipelined_time_ns == 0:
            return 1.0
        return serial / self.pipelined_time_ns


@dataclass(frozen=True)
class TilingSearchSpace:
    """Bounds of the tuner's search."""

    max_tiles: int = 64
    buffer_depths: tuple[int, ...] = (2, 3)
    """Double and triple buffering, the schemes §III mentions."""


def _pipeline_time(
    tiles: int,
    buffers: int,
    compute_per_tile_ns: float,
    dma_per_tile_ns: float,
    config_overhead_ns: float,
    configurations: int,
) -> float:
    """Makespan of a ``tiles``-stage load-compute-store software pipeline.

    With >= 2 buffers, steady-state advances at max(compute, dma) per tile;
    the pipeline prologue pays one DMA fill. A single buffer serializes.
    """
    config_time = configurations * config_overhead_ns
    if buffers < 2:
        return config_time + tiles * (compute_per_tile_ns + dma_per_tile_ns)
    bottleneck = max(compute_per_tile_ns, dma_per_tile_ns)
    return config_time + dma_per_tile_ns + tiles * bottleneck


#: memo of completed searches — the tuner is a pure function of its
#: arguments, and a model's many same-shape kernels repeat them exactly.
_TUNE_MEMO: dict[tuple, TilingPlan] = {}


def tune_tiling(
    cost: KernelCost,
    l1_capacity_bytes: int,
    compute_flops_per_ns: float,
    dma_bandwidth_gbps: float,
    dma_config_overhead_ns: float,
    repeat_mode: bool = True,
    search: TilingSearchSpace | None = None,
) -> TilingPlan:
    """Pick the best tiling for one kernel; deterministic exhaustive search."""
    search = search or TilingSearchSpace()
    memo_key = (
        cost, l1_capacity_bytes, compute_flops_per_ns, dma_bandwidth_gbps,
        dma_config_overhead_ns, repeat_mode, search,
    )
    memoized = _TUNE_MEMO.get(memo_key)
    if memoized is not None:
        return memoized
    working_set = cost.boundary_bytes + cost.internal_bytes
    if working_set <= 0:
        raise TilingError("kernel moves no data; nothing to tile")
    if compute_flops_per_ns <= 0 or dma_bandwidth_gbps <= 0:
        raise TilingError("throughputs must be positive")

    # Track the winning candidate as scalars; only the winner is
    # materialized as a TilingPlan (the search visits ~128 candidates).
    best: TilingPlan | None = None
    best_time: float | None = None
    best_candidate: tuple | None = None
    for buffers in search.buffer_depths:
        for tiles in range(1, search.max_tiles + 1):
            tile_bytes = -(-working_set // tiles)  # ceil
            if tile_bytes * buffers > l1_capacity_bytes:
                continue  # tile (x buffering copies) must fit in L1
            compute_per_tile = (cost.flops / tiles) / compute_flops_per_ns
            dma_per_tile = tile_bytes / dma_bandwidth_gbps
            configurations = 1 if repeat_mode else tiles
            time = _pipeline_time(
                tiles,
                buffers,
                compute_per_tile,
                dma_per_tile,
                dma_config_overhead_ns,
                configurations,
            )
            if best_time is None or time < best_time:
                best_time = time
                best_candidate = (
                    tiles, buffers, tile_bytes, compute_per_tile,
                    dma_per_tile, configurations,
                )
    if best_candidate is not None:
        tiles, buffers, tile_bytes, compute_per_tile, dma_per_tile, configurations = (
            best_candidate
        )
        best = TilingPlan(
            tiles=tiles,
            buffers=buffers,
            tile_bytes=tile_bytes,
            compute_time_ns=compute_per_tile * tiles,
            dma_time_ns=dma_per_tile * tiles,
            pipelined_time_ns=best_time,
            dma_configurations=configurations,
        )
    if best is None:
        # Working set so large that even max_tiles slices overflow L1:
        # fall back to the finest slicing and accept spilling through L2.
        tiles = search.max_tiles
        tile_bytes = -(-working_set // tiles)
        compute_per_tile = (cost.flops / tiles) / compute_flops_per_ns
        dma_per_tile = tile_bytes / dma_bandwidth_gbps
        configurations = 1 if repeat_mode else tiles
        best = TilingPlan(
            tiles=tiles,
            buffers=2,
            tile_bytes=tile_bytes,
            compute_time_ns=compute_per_tile * tiles,
            dma_time_ns=dma_per_tile * tiles,
            pipelined_time_ns=_pipeline_time(
                tiles, 2, compute_per_tile, dma_per_tile,
                dma_config_overhead_ns, configurations,
            ),
            dma_configurations=configurations,
        )
    _TUNE_MEMO[memo_key] = best
    return best
