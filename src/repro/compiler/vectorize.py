"""Auto-vectorization at the loop and super-word levels (paper §V-B).

A tiny loop IR stands in for the operator compiler's internal form:
:class:`ScalarLoop` is a counted loop over a body of scalar operations.
:func:`vectorize_loop` strip-mines it by the vector lane count, producing a
vector main loop plus a scalar tail, and reports the expected speedup.
:func:`pack_superwords` models SLP: isomorphic independent scalar statements
inside a straight-line block pack into vector lanes.

Transcendental calls are diverted to the SFU slot ("TopsEngine ensures
transcendental functions the DTU supports are properly vectorized").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.datatypes import DType
from repro.engines.sfu import SpecialFunctionUnit
from repro.engines.vector import lanes_for

_SFU_FUNCTIONS = frozenset(
    SpecialFunctionUnit().supported_functions
) | {"gelu", "swish"}


@dataclass(frozen=True)
class ScalarOp:
    """One scalar statement inside a loop body."""

    op: str
    dest: str
    srcs: tuple[str, ...] = ()

    @property
    def is_transcendental(self) -> bool:
        return self.op in _SFU_FUNCTIONS


@dataclass(frozen=True)
class ScalarLoop:
    """``for i in range(extent): body`` over element ``i`` of each operand."""

    extent: int
    body: tuple[ScalarOp, ...]

    def __post_init__(self) -> None:
        if self.extent < 0:
            raise ValueError(f"negative loop extent {self.extent}")
        if not self.body:
            raise ValueError("empty loop body")


@dataclass(frozen=True)
class VectorizationResult:
    """What the vectorizer produced for one loop."""

    lanes: int
    vector_iterations: int
    tail_iterations: int
    vector_ops: int
    sfu_ops: int
    scalar_ops: int

    @property
    def total_issued_ops(self) -> int:
        return self.vector_ops + self.sfu_ops + self.scalar_ops

    @property
    def speedup(self) -> float:
        """Issue-slot speedup vs fully scalar execution.

        Every iteration of the original loop issued the whole body; after
        vectorization, each vector iteration covers ``lanes`` of them.
        """
        original_iterations = self.vector_iterations * self.lanes + self.tail_iterations
        issued_iterations = self.vector_iterations + self.tail_iterations
        if issued_iterations == 0:
            return 1.0
        return original_iterations / issued_iterations


def vectorize_loop(
    loop: ScalarLoop, dtype: DType = DType.FP32
) -> VectorizationResult:
    """Strip-mine ``loop`` by the SIMD width for ``dtype``."""
    lanes = lanes_for(dtype)
    vector_iterations = loop.extent // lanes
    tail = loop.extent - vector_iterations * lanes
    sfu_per_body = sum(1 for op in loop.body if op.is_transcendental)
    vector_per_body = len(loop.body) - sfu_per_body
    return VectorizationResult(
        lanes=lanes,
        vector_iterations=vector_iterations,
        tail_iterations=tail,
        vector_ops=vector_iterations * vector_per_body,
        sfu_ops=vector_iterations * sfu_per_body,
        scalar_ops=tail * len(loop.body),
    )


@dataclass(frozen=True)
class SuperwordGroup:
    """Isomorphic scalar statements packed into one vector operation."""

    op: str
    width: int


def pack_superwords(
    block: list[ScalarOp], dtype: DType = DType.FP32
) -> tuple[list[SuperwordGroup], list[ScalarOp]]:
    """SLP packing: group independent same-opcode statements into lanes.

    Statements are independent when no statement reads another's dest within
    the group (a conservative, order-preserving check). Returns the packed
    groups and the scalar leftovers.
    """
    lanes = lanes_for(dtype)
    groups: list[SuperwordGroup] = []
    leftovers: list[ScalarOp] = []
    pending: dict[str, list[ScalarOp]] = {}
    for op in block:
        bucket = pending.setdefault(op.op, [])
        # Dependence check: op must not read any dest already in its bucket.
        if any(prior.dest in op.srcs for prior in bucket):
            _flush_bucket(bucket, lanes, groups, leftovers)
            bucket = pending[op.op] = []
        bucket.append(op)
        if len(bucket) == lanes:
            groups.append(SuperwordGroup(op=op.op, width=lanes))
            pending[op.op] = []
    for bucket in pending.values():
        _flush_bucket(bucket, lanes, groups, leftovers)
    return groups, leftovers


def _flush_bucket(
    bucket: list[ScalarOp],
    lanes: int,
    groups: list[SuperwordGroup],
    leftovers: list[ScalarOp],
) -> None:
    # Packing fewer than 2 statements buys nothing.
    if len(bucket) >= 2:
        groups.append(SuperwordGroup(op=bucket[0].op, width=len(bucket)))
    else:
        leftovers.extend(bucket)
