"""Chip-level configuration and the accelerator facade."""

from repro.core.config import ChipConfig, FeatureFlags, MemoryLevelConfig, dtu1_config, dtu2_config
from repro.core.datatypes import DType, DTypeKind, tensor_bytes

__all__ = [
    "ChipConfig", "DType", "DTypeKind", "FeatureFlags",
    "MemoryLevelConfig", "dtu1_config", "dtu2_config", "tensor_bytes",
]
