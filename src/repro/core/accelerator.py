"""The accelerator facade: one simulated Cloudblazer card.

:class:`Accelerator` assembles the full SoC of Fig. 2 — clusters of
processing groups over a shared L3 — plus the chip-wide power machinery
(CPME, per-core DVFS governor) on a single simulator instance. It is the
object the runtime executes compiled models against, and the top of the
library's public API:

>>> from repro.core.accelerator import Accelerator
>>> card = Accelerator.cloudblazer_i20()
>>> card.chip.total_cores
24
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ChipConfig, FeatureFlags, dtu1_config, dtu2_config
from repro.core.processing_group import ProcessingGroup, build_group
from repro.core.resource import GroupId, ResourceManager
from repro.memory.hierarchy import MemoryLevel
from repro.power.cpme import Cpme
from repro.power.dvfs import DvfsController
from repro.power.model import DvfsCurve, UnitPowerModel, chip_power_units
from repro.sim.kernel import Simulator, make_simulator
from repro.sim.trace import Trace


@dataclass
class Accelerator:
    """A simulated accelerator card (DTU + HBM + power management)."""

    chip: ChipConfig
    # make_simulator honours REPRO_SIM_ENGINE: the whole card (and any
    # fleet of cards) can be flipped onto the pinned reference event core.
    sim: Simulator = field(default_factory=make_simulator)
    trace: Trace = field(default_factory=Trace)
    groups: list[ProcessingGroup] = field(default_factory=list)
    l3: MemoryLevel | None = None
    resources: ResourceManager | None = None
    cpme: Cpme | None = None
    dvfs: DvfsController | None = None
    power_units: dict[str, UnitPowerModel] = field(default_factory=dict)
    faults: "object | None" = None
    """FaultInjector driving an active campaign (see :meth:`attach_faults`)."""
    obs: "object | None" = None
    """Observability hub receiving spans/metrics (see :meth:`attach_observability`)."""

    def __post_init__(self) -> None:
        if self.groups:
            return
        self.l3 = MemoryLevel(self.sim, self.chip.l3, name="L3")
        self.resources = ResourceManager(self.chip)
        for group_id in self.resources.all_groups():
            self.groups.append(
                build_group(self.sim, self.chip, group_id, trace=self.trace)
            )
        curve = DvfsCurve(
            f_min_ghz=self.chip.base_clock_ghz, f_max_ghz=self.chip.max_clock_ghz
        )
        self.power_units = chip_power_units(
            cores=self.chip.total_cores,
            dma_engines=self.chip.total_groups,
            tdp_watts=self.chip.tdp_watts,
            curve=curve,
        )
        self.cpme = Cpme(power_limit_watts=self.chip.tdp_watts)
        self.cpme.register_units(self.power_units)
        self.dvfs = DvfsController(
            curve=curve, enabled=self.chip.features.power_management
        )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def cloudblazer_i20(cls, features: FeatureFlags | None = None) -> "Accelerator":
        """The paper's flagship: DTU 2.0 on a Cloudblazer i20 card."""
        return cls(chip=dtu2_config(features))

    @classmethod
    def cloudblazer_i10(cls) -> "Accelerator":
        """The predecessor: DTU 1.0 on a Cloudblazer i10 card."""
        return cls(chip=dtu1_config())

    # -- fault injection ------------------------------------------------------

    def attach_faults(self, injector) -> None:
        """Wire a :class:`~repro.faults.FaultInjector` into every hook point.

        Propagates the injector to each group's DMA engine, L2 slice and
        synchronization engine, plus the shared L3 — the components then
        draw faults at their natural event granularity. Pass ``None`` to
        detach and restore the bit-identical fault-free timing path.
        """
        self.faults = injector
        self.l3.faults = injector
        for group in self.groups:
            group.dma.faults = injector
            group.sync.faults = injector
            group.l2.level.faults = injector

    # -- observability ------------------------------------------------------

    def attach_observability(self, obs) -> None:
        """Wire an :class:`~repro.obs.Observability` hub into the card.

        The executor and runtime then report spans and metrics for every
        launch (simulator engine intervals, kernel timings, fault events,
        power samples). Pass ``None`` to detach; with no hub attached every
        reporting hook is skipped and timing is bit-identical.
        """
        self.obs = obs

    # -- convenience --------------------------------------------------------

    def group(self, group_id: GroupId) -> ProcessingGroup:
        for candidate in self.groups:
            if candidate.group_id == group_id:
                return candidate
        raise KeyError(f"no group {group_id}")

    @property
    def clock_ghz(self) -> float:
        """Current compute-core clock, governed by DVFS when enabled."""
        if self.dvfs is not None and self.chip.features.power_management:
            return self.dvfs.f_ghz
        return self.chip.max_clock_ghz
