"""Chip configurations for DTU 1.0 and DTU 2.0.

All numbers come straight from the paper:

- Table I — Cloudblazer i20 (DTU 2.0) board specs.
- §II-A — DTU 1.0: 32 VLIW cores in 4 clusters, 256 KB L1 per core, 4 MB L2
  per cluster, 2x 8 GB HBM2 at 512 GB/s, PCIe4 x16 (64 GB/s).
- §IV — DTU 2.0: 2 clusters x 12 cores; L2 split into 3 parts of 4 cores
  each; total L1/L2 capacity 3x DTU 1.0 (so 4x / 6x per-core / per-cluster);
  L3 capacity unchanged, bandwidth 1.6x via HBM2E; every 4 cores bundle with
  1 DMA engine and 1 synchronization engine, forming a *processing group*.
- §VI-D — DVFS range 1.0–1.4 GHz on DTU 2.0.

The configs are frozen dataclasses so that a simulator instance can never
mutate the chip out from under a benchmark sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.datatypes import DType

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class FeatureFlags:
    """DTU 2.0 features that can be toggled for ablation studies.

    Each flag corresponds to a row of the paper's Table II; disabling one
    reverts the simulator to the DTU 1.0 behaviour for that mechanism.
    """

    operator_fusion: bool = True
    repeat_dma: bool = True
    icache_prefetch: bool = True
    sparse_dma: bool = True
    l2_broadcast: bool = True
    affinity_allocation: bool = True
    fine_grained_vmm: bool = True
    direct_l1_l3_dma: bool = True
    power_management: bool = True

    def disable(self, **flags: bool) -> "FeatureFlags":
        """Return a copy with the given flags overridden (False by name)."""
        return replace(self, **{name: value for name, value in flags.items()})


@dataclass(frozen=True)
class MemoryLevelConfig:
    """One level of the on-chip hierarchy as the simulator sees it."""

    name: str
    capacity_bytes: int
    bandwidth_gbps: float
    """Per-port bandwidth, GB/s."""
    ports: int
    latency_ns: float

    @property
    def total_bandwidth_gbps(self) -> float:
        return self.bandwidth_gbps * self.ports


@dataclass(frozen=True)
class ChipConfig:
    """Static description of one DTU generation."""

    name: str
    clusters: int
    cores_per_cluster: int
    groups_per_cluster: int
    peak_tflops: dict[DType, float]
    l1_per_core: MemoryLevelConfig
    l2_per_group: MemoryLevelConfig
    l3: MemoryLevelConfig
    instruction_buffer_bytes: int
    base_clock_ghz: float
    max_clock_ghz: float
    tdp_watts: float
    pcie_gbps: float
    dma_config_overhead_ns: float
    sync_latency_ns: float
    features: FeatureFlags = field(default_factory=FeatureFlags)

    @property
    def total_cores(self) -> int:
        return self.clusters * self.cores_per_cluster

    @property
    def total_groups(self) -> int:
        return self.clusters * self.groups_per_cluster

    @property
    def cores_per_group(self) -> int:
        return self.cores_per_cluster // self.groups_per_cluster

    def peak_flops(self, dtype: DType) -> float:
        """Chip-wide peak rate in FLOP/s (or OP/s for integer types)."""
        return self.peak_tflops[dtype] * 1e12

    def core_flops_per_ns(self, dtype: DType, clock_ghz: float | None = None) -> float:
        """Per-core throughput in FLOP per nanosecond at the given clock."""
        clock = self.max_clock_ghz if clock_ghz is None else clock_ghz
        per_core = self.peak_flops(dtype) / self.total_cores
        return per_core * (clock / self.max_clock_ghz) / 1e9

    def with_features(self, features: FeatureFlags) -> "ChipConfig":
        return replace(self, features=features)


def dtu2_config(features: FeatureFlags | None = None) -> ChipConfig:
    """DTU 2.0 as integrated on the Cloudblazer i20 (paper Table I, §IV)."""
    return ChipConfig(
        name="DTU 2.0",
        clusters=2,
        cores_per_cluster=12,
        groups_per_cluster=3,
        peak_tflops={
            DType.FP32: 32.0,
            DType.TF32: 128.0,
            DType.FP16: 128.0,
            DType.BF16: 128.0,
            DType.INT32: 32.0,
            DType.INT16: 128.0,
            DType.INT8: 256.0,
        },
        # Per-core L1 is 4x DTU 1.0's 256 KB (Table II row 4).
        l1_per_core=MemoryLevelConfig(
            name="L1", capacity_bytes=1 * MB, bandwidth_gbps=512.0, ports=1,
            latency_ns=2.0,
        ),
        # L2 per cluster is 6x DTU 1.0's 4 MB = 24 MB, split across 3 groups;
        # each slice has 4 parallel read/write ports (Table II row 6).
        l2_per_group=MemoryLevelConfig(
            name="L2", capacity_bytes=8 * MB, bandwidth_gbps=1024.0, ports=4,
            latency_ns=12.0,
        ),
        # Same 16 GB capacity as DTU 1.0, HBM2E at 1.6x bandwidth = 819 GB/s.
        l3=MemoryLevelConfig(
            name="L3", capacity_bytes=16 * GB, bandwidth_gbps=819.0, ports=1,
            latency_ns=120.0,
        ),
        instruction_buffer_bytes=128 * KB,
        base_clock_ghz=1.0,
        max_clock_ghz=1.4,
        tdp_watts=150.0,
        pcie_gbps=64.0,
        dma_config_overhead_ns=220.0,
        sync_latency_ns=40.0,
        features=features or FeatureFlags(),
    )


def dtu1_config() -> ChipConfig:
    """DTU 1.0 as integrated on the Cloudblazer i10 (paper §II-A)."""
    features = FeatureFlags(
        operator_fusion=True,   # fusion existed but had less memory headroom
        repeat_dma=False,
        icache_prefetch=False,
        sparse_dma=False,
        l2_broadcast=False,
        affinity_allocation=False,
        fine_grained_vmm=False,
        direct_l1_l3_dma=False,
        power_management=False,
    )
    return ChipConfig(
        name="DTU 1.0",
        clusters=4,
        cores_per_cluster=8,
        groups_per_cluster=1,
        peak_tflops={
            DType.FP32: 20.0,
            DType.TF32: 20.0,
            DType.FP16: 80.0,
            DType.BF16: 80.0,
            DType.INT32: 20.0,
            DType.INT16: 80.0,
            DType.INT8: 80.0,
        },
        l1_per_core=MemoryLevelConfig(
            name="L1", capacity_bytes=256 * KB, bandwidth_gbps=512.0, ports=1,
            latency_ns=2.0,
        ),
        l2_per_group=MemoryLevelConfig(
            name="L2", capacity_bytes=4 * MB, bandwidth_gbps=1024.0, ports=1,
            latency_ns=12.0,
        ),
        l3=MemoryLevelConfig(
            name="L3", capacity_bytes=16 * GB, bandwidth_gbps=512.0, ports=1,
            latency_ns=120.0,
        ),
        instruction_buffer_bytes=64 * KB,
        base_clock_ghz=1.0,
        max_clock_ghz=1.25,
        tdp_watts=150.0,
        pcie_gbps=64.0,
        dma_config_overhead_ns=220.0,
        sync_latency_ns=60.0,
        features=features,
    )
