"""Numeric data types supported by the DTU compute core.

The paper's Table I lists per-dtype peak rates for DTU 2.0 (FP32 32 TFLOPS;
TF32/FP16/BF16 128 TFLOPS; INT8 256 TOPS) and §II-A lists DTU 1.0's.  The
compute core "supports a full range of widely used data types, i.e., from
8-bit up to 32-bit integer and floating-point types" (§IV-A).

Functional engines in this repository carry all arithmetic in float64/float32
numpy arrays; :class:`DType` captures the *architectural* properties that the
performance and memory models need — element width and the throughput
multiplier relative to FP32 lanes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class DTypeKind(enum.Enum):
    FLOAT = "float"
    INT = "int"


@dataclass(frozen=True)
class _DTypeSpec:
    bits: int
    kind: DTypeKind
    rate_multiplier: float
    """Peak-throughput multiplier vs FP32 on DTU 2.0 (Table I ratios)."""


class DType(enum.Enum):
    """Architecturally visible element types."""

    FP32 = _DTypeSpec(32, DTypeKind.FLOAT, 1.0)
    TF32 = _DTypeSpec(32, DTypeKind.FLOAT, 4.0)
    FP16 = _DTypeSpec(16, DTypeKind.FLOAT, 4.0)
    BF16 = _DTypeSpec(16, DTypeKind.FLOAT, 4.0)
    INT32 = _DTypeSpec(32, DTypeKind.INT, 1.0)
    INT16 = _DTypeSpec(16, DTypeKind.INT, 4.0)
    INT8 = _DTypeSpec(8, DTypeKind.INT, 8.0)

    @property
    def bits(self) -> int:
        return self.value.bits

    @property
    def bytes(self) -> int:
        return self.value.bits // 8

    @property
    def kind(self) -> DTypeKind:
        return self.value.kind

    @property
    def is_float(self) -> bool:
        return self.value.kind is DTypeKind.FLOAT

    @property
    def rate_multiplier(self) -> float:
        return self.value.rate_multiplier

    @property
    def numpy_dtype(self) -> np.dtype:
        """Carrier numpy dtype used by the functional engines."""
        if self.is_float:
            return np.dtype(np.float32) if self.bits <= 32 else np.dtype(np.float64)
        return {8: np.dtype(np.int8), 16: np.dtype(np.int16), 32: np.dtype(np.int32)}[
            self.bits
        ]

    @classmethod
    def parse(cls, name: "str | DType") -> "DType":
        """Accept either a DType or its case-insensitive name."""
        if isinstance(name, cls):
            return name
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown dtype {name!r}") from None


def tensor_bytes(shape: tuple[int, ...], dtype: DType) -> int:
    """Size in bytes of a dense tensor of ``shape`` and ``dtype``."""
    count = 1
    for dim in shape:
        if dim < 0:
            raise ValueError(f"negative dimension in shape {shape}")
        count *= dim
    return count * dtype.bytes
