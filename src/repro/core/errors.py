"""Shared exception roots for the repro stack.

:class:`ReproRuntimeError` is the base every runtime-facing error derives
from (runtime misuse, RAS/fault-path errors), kept distinct from
``builtins.RuntimeError`` so callers can catch repro failures without
swallowing unrelated bugs. It lives in a leaf module so both the runtime
and the fault-injection layers can extend it without import cycles.
"""

from __future__ import annotations


class ReproRuntimeError(RuntimeError):
    """Base class for runtime misuse and RAS errors across the stack."""
