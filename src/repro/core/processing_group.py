"""Processing group: the isolation unit of DTU 2.0 (paper §IV, Fig. 2).

"every 4 compute cores in each cluster are bundled with 1 DMA engine and
1 synchronization engine. In this way, each cluster is abstracted as 3
identical and independent processing groups."

:class:`ProcessingGroup` wires those pieces to one Simulator: the 4-port L2
slice with affinity allocation, the group's DMA engine, sync engine, and the
per-core instruction buffers. The executor drives groups; the accelerator
facade builds them from a :class:`~repro.core.config.ChipConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ChipConfig
from repro.core.resource import GroupId
from repro.dma.engine import DmaEngine
from repro.memory.allocator import AffinityAllocator
from repro.memory.hierarchy import MemoryLevel
from repro.memory.icache import InstructionBuffer
from repro.memory.ports import PortedL2
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace
from repro.sync.engine import SyncEngine


@dataclass
class ProcessingGroup:
    """One isolated slice: cores + L2 slice + DMA + sync."""

    group_id: GroupId
    l1: list[MemoryLevel]
    l2: PortedL2
    allocator: AffinityAllocator
    dma: DmaEngine
    sync: SyncEngine
    icaches: list[InstructionBuffer]

    @property
    def num_cores(self) -> int:
        return len(self.l1)

    @property
    def name(self) -> str:
        return str(self.group_id)


def build_group(
    sim: Simulator,
    chip: ChipConfig,
    group_id: GroupId,
    trace: Trace | None = None,
) -> ProcessingGroup:
    """Instantiate one processing group per the chip configuration."""
    cores = chip.cores_per_group
    l1_levels = [
        MemoryLevel(
            sim, chip.l1_per_core, name=f"L1.{group_id}.core{core}"
        )
        for core in range(cores)
    ]
    l2_level = MemoryLevel(sim, chip.l2_per_group, name=f"L2.{group_id}")
    ported = PortedL2(l2_level, cores_per_group=cores)
    allocator = AffinityAllocator(
        ported, affinity_enabled=chip.features.affinity_allocation
    )
    dma = DmaEngine(
        sim,
        name=f"dma.{group_id}",
        config_overhead_ns=chip.dma_config_overhead_ns,
        allow_direct_l1_l3=chip.features.direct_l1_l3_dma,
        trace=trace,
    )
    sync = SyncEngine(
        sim,
        group_id=group_id.index,
        latency_ns=chip.sync_latency_ns,
    )
    icaches = [
        InstructionBuffer(
            capacity_bytes=chip.instruction_buffer_bytes,
            load_bandwidth_gbps=chip.l3.bandwidth_gbps / chip.total_cores,
            cache_mode=chip.features.icache_prefetch,
            prefetch_enabled=chip.features.icache_prefetch,
        )
        for _ in range(cores)
    ]
    return ProcessingGroup(
        group_id=group_id,
        l1=l1_levels,
        l2=ported,
        allocator=allocator,
        dma=dma,
        sync=sync,
        icaches=icaches,
    )
