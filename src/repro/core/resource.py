"""Resource abstraction for multi-task/tenancy (paper §IV-E, Fig. 7).

DTU 2.0 exposes each cluster as 3 identical, isolated *processing groups*
(4 cores + 1/3 of the cluster's L2 + 1 DMA engine + 1 sync engine). The
processing group is "the minimal unit for workload deployment": a tenant
gets 1, 2 or 3 groups of a cluster — or whole clusters — and groups never
interfere.

:class:`ResourceManager` implements the assignment policy: size a request
from its working set and throughput needs, allocate contiguous groups
inside one cluster when possible (L2 broadcast only works within a
cluster), and track isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ChipConfig


class ResourceError(RuntimeError):
    """Assignment impossible: no free groups or invalid request."""


@dataclass(frozen=True)
class GroupId:
    """Physical identity of one processing group."""

    cluster: int
    index: int
    """Index of the group within its cluster."""

    def __str__(self) -> str:
        return f"c{self.cluster}g{self.index}"


@dataclass(frozen=True)
class Assignment:
    """One tenant's slice of the chip."""

    tenant: str
    groups: tuple[GroupId, ...]

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def clusters(self) -> set[int]:
        return {group.cluster for group in self.groups}

    @property
    def within_one_cluster(self) -> bool:
        return len(self.clusters) == 1


def recommend_groups(
    working_set_bytes: int,
    chip: ChipConfig,
    latency_critical: bool = False,
) -> int:
    """Fig. 7 policy: size the request to the workload.

    Small workloads (working set within one group's L2) take 1 group;
    medium take 2; large (or latency-critical) take a full cluster.
    """
    l2_per_group = chip.l2_per_group.capacity_bytes
    if latency_critical:
        return chip.groups_per_cluster
    if working_set_bytes <= l2_per_group:
        return 1
    if working_set_bytes <= 2 * l2_per_group:
        return 2
    return chip.groups_per_cluster


@dataclass
class ResourceManager:
    """Tracks group ownership across the chip."""

    chip: ChipConfig
    _owners: dict[GroupId, str] = field(default_factory=dict)
    assignments: dict[str, Assignment] = field(default_factory=dict)

    def all_groups(self) -> list[GroupId]:
        return [
            GroupId(cluster=cluster, index=index)
            for cluster in range(self.chip.clusters)
            for index in range(self.chip.groups_per_cluster)
        ]

    def free_groups(self) -> list[GroupId]:
        return [group for group in self.all_groups() if group not in self._owners]

    def assign(self, tenant: str, num_groups: int) -> Assignment:
        """Allocate ``num_groups`` to ``tenant``, same-cluster when possible."""
        if tenant in self.assignments:
            raise ResourceError(f"tenant {tenant!r} already holds an assignment")
        if not 1 <= num_groups <= self.chip.total_groups:
            raise ResourceError(
                f"request of {num_groups} groups outside 1..{self.chip.total_groups}"
            )
        free = self.free_groups()
        if len(free) < num_groups:
            raise ResourceError(
                f"{num_groups} groups requested, only {len(free)} free"
            )
        chosen = self._choose(free, num_groups)
        assignment = Assignment(tenant=tenant, groups=tuple(chosen))
        for group in chosen:
            self._owners[group] = tenant
        self.assignments[tenant] = assignment
        return assignment

    def _choose(self, free: list[GroupId], num_groups: int) -> list[GroupId]:
        # Prefer a single cluster that can satisfy the whole request — the
        # isolation boundary tenants want and the broadcast domain needs.
        by_cluster: dict[int, list[GroupId]] = {}
        for group in free:
            by_cluster.setdefault(group.cluster, []).append(group)
        fitting = [
            groups for groups in by_cluster.values() if len(groups) >= num_groups
        ]
        if fitting:
            # Best fit: the cluster with the fewest free groups that still fits.
            best = min(fitting, key=len)
            return best[:num_groups]
        # Spill across clusters, most-free cluster first, deterministically.
        ordered = sorted(
            free, key=lambda group: (-len(by_cluster[group.cluster]), str(group))
        )
        return ordered[:num_groups]

    def release(self, tenant: str) -> None:
        assignment = self.assignments.pop(tenant, None)
        if assignment is None:
            raise ResourceError(f"tenant {tenant!r} holds nothing")
        for group in assignment.groups:
            del self._owners[group]

    def owner_of(self, group: GroupId) -> str | None:
        return self._owners.get(group)

    def verify_isolation(self) -> None:
        """Invariant: no group owned by two tenants (trivially true by
        construction; kept as an executable check for property tests)."""
        seen: dict[GroupId, str] = {}
        for tenant, assignment in self.assignments.items():
            for group in assignment.groups:
                if group in seen:
                    raise ResourceError(
                        f"group {group} owned by {seen[group]!r} and {tenant!r}"
                    )
                seen[group] = tenant
