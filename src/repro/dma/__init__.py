"""DMA engine substrate: transforms, sparse codec, repeat mode, broadcast."""

from repro.dma.broadcast import BroadcastError, BroadcastResult, broadcast_to_groups
from repro.dma.engine import DmaEngine, DmaRouteError, DmaStats
from repro.dma.repeat import RepeatDescriptor
from repro.dma.sparse import (
    CompressedTensor,
    SparseCodecError,
    SparseFormat,
    best_format,
    compress,
    decompress,
)
from repro.dma.transforms import (
    Broadcast,
    Pad,
    Reshape,
    Slice,
    TransformChain,
    TransformError,
    Transpose,
    concatenate,
)

__all__ = [
    "Broadcast", "BroadcastError", "BroadcastResult", "CompressedTensor",
    "DmaEngine", "DmaRouteError", "DmaStats", "Pad", "RepeatDescriptor",
    "Reshape", "Slice", "SparseCodecError", "SparseFormat", "TransformChain",
    "TransformError", "Transpose", "best_format", "broadcast_to_groups",
    "compress", "concatenate", "decompress",
]
