"""L2 data broadcasting across processing groups (paper §IV-C).

"in each cluster, DMA engines can perform data broadcasting in L2 memory
across 3 processing groups. According to user-configured destination
locations, 3 identical data copies are written all at once. It maximizes
bandwidth utilization and accelerates inter-group data sharing."

The functional part copies one source array to several destination stores;
the cost part reports how many transfer passes the operation needs — one
with broadcast hardware, one per destination without.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class BroadcastError(ValueError):
    """Invalid broadcast destination set."""


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome summary of one broadcast operation."""

    destinations: tuple[int, ...]
    nbytes_each: int
    passes: int

    @property
    def total_bytes_written(self) -> int:
        return self.nbytes_each * len(self.destinations)

    @property
    def source_reads(self) -> int:
        """How many times the source was read from its memory level."""
        return self.passes


def broadcast_to_groups(
    source: np.ndarray,
    group_stores: dict[int, dict[str, np.ndarray]],
    destinations: tuple[int, ...],
    tensor_name: str,
    hardware_broadcast: bool = True,
) -> BroadcastResult:
    """Write ``source`` into each destination group's L2 store.

    ``group_stores`` maps group id -> that group's L2 contents (name ->
    array); each destination receives an independent copy (mutating one
    group's tensor must not alias another's).
    """
    if not destinations:
        raise BroadcastError("broadcast needs at least one destination")
    if len(set(destinations)) != len(destinations):
        raise BroadcastError(f"duplicate destinations: {destinations}")
    missing = [group for group in destinations if group not in group_stores]
    if missing:
        raise BroadcastError(f"unknown destination groups: {missing}")
    array = np.asarray(source)
    for group in destinations:
        group_stores[group][tensor_name] = array.copy()
    passes = 1 if hardware_broadcast else len(destinations)
    return BroadcastResult(
        destinations=tuple(destinations),
        nbytes_each=array.nbytes,
        passes=passes,
    )
