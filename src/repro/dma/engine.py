"""The DMA engine: timed data movement through the memory hierarchy.

§IV-C behaviours modelled here:

- movement between *any* two levels on DTU 2.0, including direct L1<->L3
  (saving L2 bandwidth) and same-level moves; DTU 1.0 only allowed
  L1<->L2 and L2<->L3, so routing validates against a capability flag;
- per-transaction *configuration overhead* paid by the issuing compute
  core, reduced to one per sequence in repeat mode (Fig. 6);
- sparse transfers that charge the wire for compressed bytes while the
  destination receives the dense tensor;
- broadcast writes to several destination L2 slices in one pass.

The engine is a simulation actor: :meth:`transfer` is a process generator
that contends for the source and destination ports and advances simulated
time; :meth:`transfer_time_ns` is the closed-form estimate the data-flow
auto-tuner plans with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.hierarchy import MemoryLevel
from repro.sim.kernel import AllOf, Simulator, Timeout
from repro.sim.trace import Trace


class DmaRouteError(RuntimeError):
    """The chip generation cannot move data along the requested route."""


_LEVEL_RANK = {"L1": 1, "L2": 2, "L3": 3}


def _rank(level: MemoryLevel) -> int:
    for prefix, rank in _LEVEL_RANK.items():
        if level.name.startswith(prefix):
            return rank
    raise DmaRouteError(f"level {level.name!r} is not part of the hierarchy")


@dataclass
class DmaStats:
    """Counters one engine accumulates over a run."""

    transactions: int = 0
    configurations: int = 0
    bytes_moved: int = 0
    wire_bytes: int = 0
    config_time_ns: float = 0.0
    busy_time_ns: float = 0.0
    replays: int = 0
    faults: int = 0


@dataclass
class DmaEngine:
    """One processing group's DMA engine.

    ``faults`` is the accelerator's :class:`~repro.faults.FaultInjector`
    when a fault campaign is attached: each transaction then draws an
    outcome — clean, CRC-detected corruption (the transaction replays,
    config + passes repeated, bounded by the plan's retry limit) or an
    engine abort (fatal for the launch; the executor raises after the
    simulation drains). With no injector the timing path is untouched.
    """

    sim: Simulator
    name: str = "dma"
    config_overhead_ns: float = 220.0
    allow_direct_l1_l3: bool = True
    trace: Trace | None = None
    stats: DmaStats = field(default_factory=DmaStats)
    faults: object | None = None

    def validate_route(self, src: MemoryLevel, dst: MemoryLevel) -> None:
        """Reject routes the chip generation does not wire up."""
        src_rank, dst_rank = _rank(src), _rank(dst)
        if self.allow_direct_l1_l3:
            return  # DTU 2.0: "data movements in any direction"
        if {src_rank, dst_rank} in ({1, 2}, {2, 3}):
            return
        raise DmaRouteError(
            f"{self.name}: route {src.name} -> {dst.name} requires DTU 2.0's "
            "any-direction DMA"
        )

    # -- planning (closed form, no simulation) ------------------------------

    def transfer_time_ns(
        self,
        nbytes: int,
        src: MemoryLevel,
        dst: MemoryLevel,
        configurations: int = 1,
        wire_bytes: int | None = None,
        copies: int = 1,
        hardware_broadcast: bool = True,
    ) -> float:
        """Unloaded end-to-end estimate for one (possibly compound) move.

        ``copies`` models broadcast: with ``hardware_broadcast`` all copies
        are written in the same pass (to distinct L2 slices, in parallel);
        without it, each copy costs a full read+write pass.
        """
        self.validate_route(src, dst)
        wire = nbytes if wire_bytes is None else wire_bytes
        per_pass = max(src.transfer_time_ns(wire), dst.transfer_time_ns(nbytes))
        passes = 1 if hardware_broadcast else copies
        return configurations * self.config_overhead_ns + per_pass * passes

    # -- simulation process ---------------------------------------------------

    def transfer(
        self,
        nbytes: int,
        src: MemoryLevel,
        dst: "MemoryLevel | list[MemoryLevel]",
        configurations: int = 1,
        wire_bytes: int | None = None,
        hardware_broadcast: bool = True,
        label: str = "dma",
    ):
        """Process generator: perform the move, contending for real ports.

        ``dst`` may be a list of levels — a broadcast. With hardware
        broadcast the source is read once and every destination is written
        in the same pass; without, the read+write pass repeats per copy.
        """
        destinations = dst if isinstance(dst, list) else [dst]
        for destination in destinations:
            self.validate_route(src, destination)
        wire = nbytes if wire_bytes is None else wire_bytes
        start = self.sim.now

        if hardware_broadcast:
            passes = [destinations]
        else:
            passes = [[destination] for destination in destinations]

        replays = 0
        while True:
            config_time = configurations * self.config_overhead_ns
            self.stats.configurations += configurations
            self.stats.config_time_ns += config_time
            yield Timeout(config_time)

            for pass_destinations in passes:
                read = self.sim.spawn(src.transfer(wire), name=f"{self.name}.read")
                writes = [
                    self.sim.spawn(
                        destination.transfer(nbytes), name=f"{self.name}.write"
                    )
                    for destination in pass_destinations
                ]
                yield AllOf([read.done_event] + [write.done_event for write in writes])

            if self.faults is None:
                break
            outcome = self.faults.dma_outcome(self.name, label, self.sim.now)
            if outcome is None:
                break
            self.stats.faults += 1
            if outcome == "abort":
                break  # fatal: queued on the injector; executor raises later
            # CRC mismatch at the destination: replay the whole transaction.
            replays += 1
            if replays > self.faults.plan.dma_retry_limit:
                self.faults.dma_replays_exhausted(self.name, label, self.sim.now)
                break
            self.stats.replays += 1

        if self.faults is not None:
            # Corruption the CRC *missed*: no replay, no abort, no timing
            # change — just a detected=False record (repro.faults.silent).
            self.faults.silent_dma(self.name, label, self.sim.now)

        end = self.sim.now
        self.stats.transactions += 1
        self.stats.bytes_moved += nbytes * len(destinations)
        self.stats.wire_bytes += wire * len(passes)
        self.stats.busy_time_ns += end - start
        if self.trace is not None:
            self.trace.record(self.name, label, start, end)
