"""Repeat mode: one configuration, many regular DMA transactions (Fig. 6).

§IV-C: "It triggers multiple DMA transactions that follow a repetitive and
regular pattern with one single DMA configuration. [...] Here, the large
tensor is consumed in small slices (labeled from 1 to 9) with fixed strides.
Without the repeat mode, N DMA transactions/configurations are required.
Enabling repeat mode eliminates (N-1)/N of the DMA configuration overheads."

:class:`RepeatDescriptor` is the single configuration; expanding it yields
the per-transaction slice windows (functional), while the cost model charges
one configuration overhead for the whole sequence instead of N.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dma.transforms import Slice, TransformError


@dataclass(frozen=True)
class RepeatDescriptor:
    """Strided slicing of a large tensor into ``count`` equal windows."""

    dim: int
    window: int
    stride: int
    count: int

    def __post_init__(self) -> None:
        if self.window < 1 or self.stride < 1 or self.count < 1:
            raise TransformError(f"degenerate repeat descriptor: {self}")

    def required_extent(self) -> int:
        """Minimum extent of ``dim`` the source tensor must have."""
        return (self.count - 1) * self.stride + self.window

    def slices(self) -> list[Slice]:
        """The N individual transactions this one configuration triggers."""
        return [
            Slice(
                dim=self.dim,
                start=index * self.stride,
                stop=index * self.stride + self.window,
            )
            for index in range(self.count)
        ]

    def expand(self, array: np.ndarray) -> list[np.ndarray]:
        """Functionally produce every window (what lands at the destination)."""
        extent = array.shape[self.dim % array.ndim]
        if extent < self.required_extent():
            raise TransformError(
                f"repeat needs extent >= {self.required_extent()} on dim "
                f"{self.dim}, tensor has {extent}"
            )
        return [window.apply(array) for window in self.slices()]

    def configurations_needed(self, repeat_mode: bool) -> int:
        """DMA configuration writes: 1 with repeat mode, N without (Fig. 6)."""
        return 1 if repeat_mode else self.count

    def config_overhead_saved(self) -> float:
        """Fraction of configuration overhead repeat mode eliminates."""
        return (self.count - 1) / self.count
