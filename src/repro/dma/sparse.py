"""Hardware-defined sparse compression for DMA transfers (paper §IV-C).

"to optimize bandwidth for transferring sparse data, DMA engines in DTU 2.0
supports automatic data decompression. Given the data compressed in
hardware-defined formats, DMA engines decompress the data while storing them
at the destination memory locations."

Two hardware formats are modelled, matching common accelerator practice:

- **bitmask**: a 1-bit-per-element validity mask plus packed non-zero
  payload. Compression ratio ~``1 / (density + 1/8/element_bytes)``.
- **run-length (RLE)** over zero runs: ``(zero_run_u16, value)`` pairs,
  better for long zero bursts (e.g. post-ReLU feature maps).

Both round-trip exactly (tests verify) and expose ``compressed_bytes`` so
the DMA timing model can charge the wire for compressed traffic only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class SparseFormat(enum.Enum):
    BITMASK = "bitmask"
    RLE = "rle"


class SparseCodecError(ValueError):
    """Malformed compressed payload or unsupported configuration."""


@dataclass(frozen=True)
class CompressedTensor:
    """Wire format of one compressed DMA payload."""

    format: SparseFormat
    shape: tuple[int, ...]
    element_bytes: int
    payload: bytes

    @property
    def compressed_bytes(self) -> int:
        # Header: format byte + rank + dims (4 B each) + element size.
        return len(self.payload) + 2 + 4 * len(self.shape)

    @property
    def dense_bytes(self) -> int:
        count = 1
        for extent in self.shape:
            count *= extent
        return count * self.element_bytes

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.dense_bytes / self.compressed_bytes


def _as_flat_f32(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.float32).ravel()


def compress(array: np.ndarray, format: SparseFormat) -> CompressedTensor:
    """Compress a dense tensor into the hardware wire format."""
    array = np.asarray(array)
    flat = _as_flat_f32(array)
    if format is SparseFormat.BITMASK:
        payload = _compress_bitmask(flat)
    elif format is SparseFormat.RLE:
        payload = _compress_rle(flat)
    else:
        raise SparseCodecError(f"unsupported format {format}")
    return CompressedTensor(
        format=format,
        shape=tuple(array.shape),
        element_bytes=4,
        payload=payload,
    )


def decompress(compressed: CompressedTensor, corruptor=None) -> np.ndarray:
    """Invert :func:`compress`; what the DMA does while storing.

    ``corruptor`` (a :class:`~repro.faults.silent.SilentCorruptor`) models
    a marginal decompression datapath: the decoded tensor may come back
    with one element silently wrong — format checks still pass, nothing
    raises. ``None`` (the default) is the exact legacy path.
    """
    if compressed.format is SparseFormat.BITMASK:
        flat = _decompress_bitmask(compressed)
    elif compressed.format is SparseFormat.RLE:
        flat = _decompress_rle(compressed)
    else:
        raise SparseCodecError(f"unsupported format {compressed.format}")
    expected = 1
    for extent in compressed.shape:
        expected *= extent
    if flat.size != expected:
        raise SparseCodecError(
            f"payload decodes to {flat.size} elements, shape wants {expected}"
        )
    dense = flat.reshape(compressed.shape)
    if corruptor is not None:
        dense = corruptor.corrupt_sparse(dense)
    return dense


def _compress_bitmask(flat: np.ndarray) -> bytes:
    mask = flat != 0
    packed_mask = np.packbits(mask)
    values = flat[mask]
    return packed_mask.tobytes() + values.tobytes()


def _decompress_bitmask(compressed: CompressedTensor) -> np.ndarray:
    count = 1
    for extent in compressed.shape:
        count *= extent
    mask_bytes = (count + 7) // 8
    raw = compressed.payload
    if len(raw) < mask_bytes:
        raise SparseCodecError("bitmask payload truncated")
    mask = np.unpackbits(
        np.frombuffer(raw[:mask_bytes], dtype=np.uint8), count=count
    ).astype(bool)
    values = np.frombuffer(raw[mask_bytes:], dtype=np.float32)
    if values.size != int(mask.sum()):
        raise SparseCodecError(
            f"bitmask says {int(mask.sum())} values, payload has {values.size}"
        )
    flat = np.zeros(count, dtype=np.float32)
    flat[mask] = values
    return flat


def _compress_rle(flat: np.ndarray) -> bytes:
    """(zero_run: u16, value: f32) records; a record decodes to ``run``
    zeros followed by ``value``. Zero runs longer than 65535 split into
    (0xFFFF, 0.0) cap records (each covering 65536 zeros); trailing zeros
    end with a (run-1, 0.0) record.

    Vectorized: one pass of array ops over the nonzero positions instead
    of a Python loop per element. Byte-identical to
    :func:`_compress_rle_loop` (pinned in ``tests/dma/test_sparse.py``).
    """
    size = flat.size
    nonzero = np.flatnonzero(flat)
    # Zeros between consecutive nonzeros (and before the first one).
    previous = np.empty(nonzero.shape, dtype=np.int64)
    if nonzero.size:
        previous[0] = -1
        previous[1:] = nonzero[:-1]
    gaps = nonzero - previous - 1
    caps = gaps >> 16  # full 65536-zero cap records per gap
    remainders = gaps & 0xFFFF
    counts = caps + 1  # each nonzero emits its caps then one value record
    total = int(counts.sum())
    runs = np.full(total, 0xFFFF, dtype=np.uint32)
    values = np.zeros(total, dtype=np.float32)
    if nonzero.size:
        value_slots = np.cumsum(counts) - 1
        runs[value_slots] = remainders
        values[value_slots] = flat[nonzero]
    # Trailing zeros: caps, then (run-1, 0.0) for the remainder.
    tail = size - (int(nonzero[-1]) + 1 if nonzero.size else 0)
    tail_caps, tail_rem = tail >> 16, tail & 0xFFFF
    if tail_caps or tail_rem:
        extra = np.full(tail_caps + (1 if tail_rem else 0), 0xFFFF, dtype=np.uint32)
        if tail_rem:
            extra[-1] = tail_rem - 1
        runs = np.concatenate([runs, extra])
        values = np.concatenate(
            [values, np.zeros(extra.size, dtype=np.float32)]
        )
    return runs.astype(np.uint16).tobytes() + values.tobytes()


def _compress_rle_loop(flat: np.ndarray) -> bytes:
    """Element-at-a-time reference encoder the fast path is pinned against."""
    records_runs: list[int] = []
    records_values: list[float] = []
    run = 0
    for value in flat:
        if value == 0 and run < 0xFFFF:
            run += 1
            continue
        records_runs.append(run)
        records_values.append(float(value))
        run = 0
    # Trailing zeros: emit (run-1, 0.0) so decode reproduces them.
    if run:
        records_runs.append(run - 1)
        records_values.append(0.0)
    runs = np.asarray(records_runs, dtype=np.uint16)
    values = np.asarray(records_values, dtype=np.float32)
    return runs.tobytes() + values.tobytes()


def _decompress_rle(compressed: CompressedTensor) -> np.ndarray:
    count = 1
    for extent in compressed.shape:
        count *= extent
    raw = compressed.payload
    if len(raw) % 6 != 0:
        raise SparseCodecError("RLE payload is not a whole number of records")
    records = len(raw) // 6
    runs = np.frombuffer(raw[: records * 2], dtype=np.uint16)
    values = np.frombuffer(raw[records * 2 :], dtype=np.float32)
    # Record i lands its value at cumulative(run + 1) - 1; everything
    # before it in the gap is zeros — one scatter instead of a Python
    # loop of per-record concatenations.
    ends = np.cumsum(runs.astype(np.int64) + 1)
    total = int(ends[-1]) if ends.size else 0
    flat = np.zeros(total, dtype=np.float32)
    if ends.size:
        flat[ends - 1] = values
    if flat.size != count:
        raise SparseCodecError(
            f"RLE decodes to {flat.size} elements, shape wants {count}"
        )
    return flat


def _decompress_rle_loop(compressed: CompressedTensor) -> np.ndarray:
    """Record-at-a-time reference decoder the fast path is pinned against."""
    count = 1
    for extent in compressed.shape:
        count *= extent
    raw = compressed.payload
    if len(raw) % 6 != 0:
        raise SparseCodecError("RLE payload is not a whole number of records")
    records = len(raw) // 6
    runs = np.frombuffer(raw[: records * 2], dtype=np.uint16)
    values = np.frombuffer(raw[records * 2 :], dtype=np.float32)
    pieces: list[np.ndarray] = []
    for run, value in zip(runs, values):
        if run:
            pieces.append(np.zeros(int(run), dtype=np.float32))
        pieces.append(np.asarray([value], dtype=np.float32))
    flat = np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.float32)
    if flat.size != count:
        raise SparseCodecError(
            f"RLE decodes to {flat.size} elements, shape wants {count}"
        )
    return flat


def best_format(array: np.ndarray) -> SparseFormat:
    """Pick the format with the smaller wire size for this tensor."""
    bitmask = compress(array, SparseFormat.BITMASK)
    rle = compress(array, SparseFormat.RLE)
    if rle.compressed_bytes < bitmask.compressed_bytes:
        return SparseFormat.RLE
    return SparseFormat.BITMASK
