"""On-the-fly tensor layout transformations performed by the DMA engine.

§IV-C: "During data transfer, DMA engines can perform tensor layout
transformations on the fly according to the configuration, such as padding,
slicing, transposing, and concatenation on specified tensor dimensions."

Each transform is a small declarative config object with an ``apply`` method
(the functional semantics, on numpy arrays) and an ``output_shape`` method
(for planning without data). A :class:`TransformChain` composes them the way
one DMA descriptor chains its stages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class TransformError(ValueError):
    """A transform configuration is inconsistent with its input."""


@dataclass(frozen=True)
class Pad:
    """Zero-pad ``dim`` with ``before``/``after`` elements."""

    dim: int
    before: int
    after: int
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.before < 0 or self.after < 0:
            raise TransformError(f"negative padding: {self}")

    def output_shape(self, shape: tuple[int, ...]) -> tuple[int, ...]:
        if not -len(shape) <= self.dim < len(shape):
            raise TransformError(f"pad dim {self.dim} out of range for {shape}")
        dim = self.dim % len(shape)
        return tuple(
            size + (self.before + self.after if axis == dim else 0)
            for axis, size in enumerate(shape)
        )

    def apply(self, array: np.ndarray) -> np.ndarray:
        dim = self.dim % array.ndim
        widths = [(0, 0)] * array.ndim
        widths[dim] = (self.before, self.after)
        return np.pad(array, widths, constant_values=self.value)


@dataclass(frozen=True)
class Slice:
    """Take ``[start:stop:step]`` along ``dim``."""

    dim: int
    start: int
    stop: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.step < 1:
            raise TransformError(f"slice step must be >= 1: {self}")
        if self.stop < self.start:
            raise TransformError(f"slice stop before start: {self}")

    def output_shape(self, shape: tuple[int, ...]) -> tuple[int, ...]:
        if not -len(shape) <= self.dim < len(shape):
            raise TransformError(f"slice dim {self.dim} out of range for {shape}")
        dim = self.dim % len(shape)
        if self.stop > shape[dim]:
            raise TransformError(f"slice {self} exceeds extent {shape[dim]}")
        length = (self.stop - self.start + self.step - 1) // self.step
        return tuple(
            length if axis == dim else size for axis, size in enumerate(shape)
        )

    def apply(self, array: np.ndarray) -> np.ndarray:
        self.output_shape(array.shape)  # validate
        dim = self.dim % array.ndim
        index: list = [slice(None)] * array.ndim
        index[dim] = slice(self.start, self.stop, self.step)
        return array[tuple(index)]


@dataclass(frozen=True)
class Transpose:
    """Permute dimensions."""

    axes: tuple[int, ...]

    def output_shape(self, shape: tuple[int, ...]) -> tuple[int, ...]:
        if sorted(self.axes) != list(range(len(shape))):
            raise TransformError(
                f"axes {self.axes} are not a permutation for rank {len(shape)}"
            )
        return tuple(shape[axis] for axis in self.axes)

    def apply(self, array: np.ndarray) -> np.ndarray:
        self.output_shape(array.shape)  # validate
        return np.transpose(array, self.axes)


@dataclass(frozen=True)
class Reshape:
    """Reinterpret the buffer with a new shape of equal element count."""

    shape: tuple[int, ...]

    def output_shape(self, shape: tuple[int, ...]) -> tuple[int, ...]:
        if int(np.prod(shape)) != int(np.prod(self.shape)):
            raise TransformError(f"cannot reshape {shape} to {self.shape}")
        return self.shape

    def apply(self, array: np.ndarray) -> np.ndarray:
        return array.reshape(self.shape)


@dataclass(frozen=True)
class Broadcast:
    """Materialize a size-1 dimension to ``size`` copies."""

    dim: int
    size: int

    def output_shape(self, shape: tuple[int, ...]) -> tuple[int, ...]:
        dim = self.dim % len(shape)
        if shape[dim] != 1:
            raise TransformError(f"broadcast dim {dim} has extent {shape[dim]} != 1")
        return tuple(
            self.size if axis == dim else extent for axis, extent in enumerate(shape)
        )

    def apply(self, array: np.ndarray) -> np.ndarray:
        self.output_shape(array.shape)  # validate
        return np.repeat(array, self.size, axis=self.dim % array.ndim)


Transform = Pad | Slice | Transpose | Reshape | Broadcast


def concatenate(arrays: list[np.ndarray], dim: int) -> np.ndarray:
    """DMA-side concatenation of several source regions along ``dim``."""
    if not arrays:
        raise TransformError("concatenate needs at least one array")
    ranks = {array.ndim for array in arrays}
    if len(ranks) != 1:
        raise TransformError(f"rank mismatch in concatenate: {ranks}")
    return np.concatenate(arrays, axis=dim)


@dataclass(frozen=True)
class TransformChain:
    """A DMA descriptor's ordered transformation pipeline."""

    stages: tuple[Transform, ...] = ()

    def output_shape(self, shape: tuple[int, ...]) -> tuple[int, ...]:
        for stage in self.stages:
            shape = stage.output_shape(shape)
        return shape

    def apply(self, array: np.ndarray) -> np.ndarray:
        for stage in self.stages:
            array = stage.apply(array)
        return array

    def moved_bytes(self, shape: tuple[int, ...], element_bytes: int) -> int:
        """Bytes the DMA writes at the destination after all stages."""
        out_shape = self.output_shape(shape)
        count = 1
        for extent in out_shape:
            count *= extent
        return count * element_bytes
