"""Functional models of the DTU 2.0 compute-core engines."""

from repro.engines.compute_core import ComputeCore, ExecutionError, L1Buffer
from repro.engines.matrix import MatrixEngine, VmmPattern, VmmPatternError, supported_patterns
from repro.engines.sfu import SpecialFunctionUnit
from repro.engines.sorting import sort_vector, top_k
from repro.engines.vector import VectorEngine, VectorLengthError, lanes_for
from repro.engines.vliw import Instruction, Packet, Program, Slot

__all__ = [
    "ComputeCore", "ExecutionError", "Instruction", "L1Buffer", "MatrixEngine",
    "Packet", "Program", "Slot", "SpecialFunctionUnit", "VectorEngine",
    "VectorLengthError", "VmmPattern", "VmmPatternError", "lanes_for",
    "sort_vector", "supported_patterns", "top_k",
]
