"""ABFT: algorithm-based fault tolerance for the matrix engine's GEMM.

Huang–Abraham checksums detect silent data corruption *inside* the
result, with no second execution. For ``C = A @ B``:

- **row checksum** (strict): ``ones @ C`` must equal ``(ones @ A) @ B``
  — a length-``n`` vector whose residual localizes corrupted *columns*;
- **column checksum** (strict): ``C @ ones`` must equal ``A @ (B @ ones)``
  — a length-``m`` vector whose residual localizes corrupted *rows*;
- **Freivalds probe** (cheap): ``C @ r`` vs ``A @ (B @ r)`` for one
  seeded ±1 vector ``r`` — an O(mk + kn) check that catches any single
  corrupted element with probability 1 (a nonzero error row dots a ±1
  vector to zero only if multiple errors cancel).

Both modes cost two matrix-vector products against the O(m·k·n) GEMM
itself, so the gated overhead budget (``serving.sdc_overhead`` bench:
strict <= 2.0x, probe <= 1.2x) has comfortable headroom.

Tolerances are *relative to magnitude checksums* (``ones @ |A| @ |B|``),
not to the values being compared: the fast-path GEMM and the checksum
reassociate IEEE-754 sums, so residuals up to ~``(m+k)·eps`` of the
magnitude sum are legitimate rounding, while injected corruptions (see
:mod:`repro.faults.silent`) carry relative errors >= ~2^-12 of a single
element — orders of magnitude above the default ``rtol`` of 1e-9.

Detached contract: ``mode="off"`` is a bit-identical pass-through to
:meth:`~repro.engines.matrix.MatrixEngine.gemm` — no checksum is
computed, no randomness is consumed.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

import numpy as np

from repro.engines.matrix import MatrixEngine
from repro.faults.errors import SilentCorruptionFault

__all__ = [
    "AbftReport",
    "checked_gemm",
    "golden_digest",
    "verify_gemm",
]

MODES = ("off", "probe", "strict")

#: Default relative tolerance against the magnitude checksum. Sits well
#: above float64 reassociation noise (~(m+k)·2^-52) and well below the
#: smallest injected corruption (~2^-12 of one element).
DEFAULT_RTOL = 1e-9
DEFAULT_ATOL = 1e-12


@dataclass(frozen=True)
class AbftReport:
    """Outcome of one checksum verification."""

    mode: str
    ok: bool
    bad_rows: tuple[int, ...] = ()
    """Rows the column checksum implicates (strict and probe modes)."""
    bad_cols: tuple[int, ...] = ()
    """Columns the row checksum implicates (strict mode only)."""
    max_residual: float = 0.0
    """Largest residual, normalized by its tolerance (> 1 means failed)."""

    @property
    def cells(self) -> tuple[tuple[int, int], ...]:
        """Suspect (row, col) localization — the strict-mode cross product."""
        return tuple(
            (row, col) for row in self.bad_rows for col in self.bad_cols
        )


def _as_2d(array: np.ndarray, label: str) -> np.ndarray:
    array = np.asarray(array, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"{label} must be 2-D, got shape {array.shape}")
    return array


def verify_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    mode: str = "strict",
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    probe_seed: int = 0,
) -> AbftReport:
    """Checksum-verify that ``c`` is (numerically) ``a @ b``.

    Never raises on a mismatch — returns the report and lets the caller
    decide (``checked_gemm`` raises a typed
    :class:`~repro.faults.errors.SilentCorruptionFault`).
    """
    if mode == "off":
        return AbftReport(mode="off", ok=True)
    if mode not in MODES:
        raise ValueError(f"ABFT mode must be one of {MODES}, got {mode!r}")
    a = _as_2d(a, "a")
    b = _as_2d(b, "b")
    c = _as_2d(c, "c")
    m, k = a.shape
    if b.shape[0] != k or c.shape != (m, b.shape[1]):
        raise ValueError(
            f"inconsistent GEMM shapes: {a.shape} x {b.shape} -> {c.shape}"
        )
    n = b.shape[1]
    if m == 0 or n == 0:
        return AbftReport(mode=mode, ok=True)
    abs_a = np.abs(a)
    abs_b = np.abs(b)

    if mode == "probe":
        # Freivalds with a seeded ±1 probe vector: one draw sequence per
        # verification, deterministic for a given probe_seed.
        rng = random.Random(probe_seed)
        r = np.array([1.0 if rng.random() < 0.5 else -1.0 for _ in range(n)])
        residual = np.abs(c @ r - a @ (b @ r))
        # |B @ r| <= |B| @ ones elementwise, so this bounds the true
        # magnitude sum of every term in the probe product.
        tolerance = atol + rtol * (abs_a @ (abs_b @ np.ones(n)))
        failed = residual > tolerance
        scaled = residual / tolerance
        return AbftReport(
            mode="probe",
            ok=not bool(failed.any()),
            bad_rows=tuple(int(i) for i in np.flatnonzero(failed)),
            max_residual=float(scaled.max()) if scaled.size else 0.0,
        )

    ones_m = np.ones(m)
    ones_n = np.ones(n)
    row_residual = np.abs(ones_m @ c - (ones_m @ a) @ b)
    row_tolerance = atol + rtol * ((ones_m @ abs_a) @ abs_b)
    col_residual = np.abs(c @ ones_n - a @ (b @ ones_n))
    col_tolerance = atol + rtol * (abs_a @ (abs_b @ ones_n))
    bad_cols = row_residual > row_tolerance
    bad_rows = col_residual > col_tolerance
    scaled = max(
        float((row_residual / row_tolerance).max()),
        float((col_residual / col_tolerance).max()),
    )
    return AbftReport(
        mode="strict",
        ok=not bool(bad_cols.any() or bad_rows.any()),
        bad_rows=tuple(int(i) for i in np.flatnonzero(bad_rows)),
        bad_cols=tuple(int(i) for i in np.flatnonzero(bad_cols)),
        max_residual=scaled,
    )


def checked_gemm(
    engine: MatrixEngine,
    a: np.ndarray,
    b: np.ndarray,
    mode: str = "strict",
    tile_rows: int | None = None,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    probe_seed: int = 0,
) -> np.ndarray:
    """ABFT-wrapped :meth:`~repro.engines.matrix.MatrixEngine.gemm`.

    Runs the engine's GEMM, then verifies the result against the operand
    checksums. On a mismatch the corruptor's recorded events (if the
    engine has one attached) are marked ``detected`` with method
    ``abft`` and the typed fault raises. ``mode="off"`` is a pure
    pass-through — bit-identical results, zero extra work.
    """
    result = engine.gemm(a, b, tile_rows=tile_rows)
    if mode == "off":
        return result
    report = verify_gemm(
        a, b, result, mode=mode, rtol=rtol, atol=atol, probe_seed=probe_seed
    )
    if report.ok:
        return result
    corruptor = engine.corruptor
    fault: SilentCorruptionFault | None = None
    if corruptor is not None:
        for event in corruptor.undetected:
            if event.site == "gemm":
                corruptor.mark_detected(event, "abft")
                fault = event.fault
    if fault is None:
        fault = SilentCorruptionFault(
            f"ABFT {report.mode} checksum mismatch: rows {report.bad_rows} "
            f"cols {report.bad_cols} (residual {report.max_residual:.3g}x "
            f"tolerance)"
        )
    raise fault


def golden_digest(array: np.ndarray) -> str:
    """Pinned digest of a result tensor, for golden-vector screens.

    Covers dtype, shape and exact bytes, so any single-bit corruption of
    any element changes the digest.
    """
    array = np.ascontiguousarray(array)
    hasher = hashlib.sha256()
    hasher.update(str(array.dtype).encode())
    hasher.update(str(array.shape).encode())
    hasher.update(array.tobytes())
    return hasher.hexdigest()
