"""Compute core: a functional interpreter over the DTU VLIW ISA.

Ties the scalar/vector/matrix/SFU engines together behind the VLIW packet
model of :mod:`repro.engines.vliw`. The core executes straight-line packet
programs against an explicit register file and an attached L1 buffer,
producing both *results* (numpy arrays) and *costs* (cycles, stalls) — the
former validate correctness, the latter feed the performance simulator.

The ISA here is the subset TopsEngine's code generator targets; it is rich
enough to run real fused DNN kernels (see ``examples/operator_dev.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.datatypes import DType
from repro.engines.matrix import MatrixEngine
from repro.engines.sfu import SpecialFunctionUnit
from repro.engines.vector import VectorEngine
from repro.engines.vliw import Instruction, Packet, Program, Slot
from repro.sim.trace import Trace


class ExecutionError(RuntimeError):
    """The core hit an illegal runtime condition (bad register, bad op)."""


@dataclass
class L1Buffer:
    """The core's private L1 data buffer, addressed by symbolic names.

    Capacity accounting is real: storing beyond ``capacity_bytes`` raises,
    which is exactly the constraint the tiling auto-tuner must respect.
    """

    capacity_bytes: int
    tensors: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def used_bytes(self) -> int:
        return sum(array.nbytes for array in self.tensors.values())

    def write(self, name: str, array: np.ndarray) -> None:
        array = np.asarray(array)
        existing = self.tensors.get(name)
        projected = self.used_bytes - (existing.nbytes if existing is not None else 0)
        if projected + array.nbytes > self.capacity_bytes:
            raise ExecutionError(
                f"L1 overflow: {projected + array.nbytes} bytes > "
                f"{self.capacity_bytes} capacity writing {name!r}"
            )
        self.tensors[name] = array

    def read(self, name: str) -> np.ndarray:
        if name not in self.tensors:
            raise ExecutionError(f"L1 read of absent tensor {name!r}")
        return self.tensors[name]

    def free(self, name: str) -> None:
        self.tensors.pop(name, None)


@dataclass
class CoreState:
    """Architectural state of one core."""

    scalar: dict[str, float] = field(default_factory=dict)
    vector: dict[str, np.ndarray] = field(default_factory=dict)

    def read_scalar(self, register: str) -> float:
        if register not in self.scalar:
            raise ExecutionError(f"read of unwritten scalar register {register}")
        return self.scalar[register]

    def read_vector(self, register: str) -> np.ndarray:
        if register not in self.vector:
            raise ExecutionError(f"read of unwritten vector register {register}")
        return self.vector[register]


class ComputeCore:
    """One VLIW compute core with attached functional engines and L1."""

    def __init__(
        self,
        core_id: int = 0,
        dtype: DType = DType.FP32,
        l1_capacity_bytes: int = 1024 * 1024,
        trace: Trace | None = None,
        fault_injector=None,
    ) -> None:
        self.core_id = core_id
        self.dtype = dtype
        self.trace = trace
        self.vector_engine = VectorEngine(dtype=dtype, trace=trace)
        self.matrix_engine = MatrixEngine(dtype=dtype, trace=trace)
        self.sfu = SpecialFunctionUnit(trace=trace)
        self.l1 = L1Buffer(capacity_bytes=l1_capacity_bytes)
        self.state = CoreState()
        self.cycles_retired = 0
        self.stall_cycles = 0
        self.halted = False
        #: optional repro.faults.FaultInjector; when set, each packet may
        #: hang the core (watchdog raises CoreHangFault to the caller).
        self.fault_injector = fault_injector

    # -- program execution ------------------------------------------------

    def run(self, program: Program) -> int:
        """Execute every packet; returns total cycles including stalls.

        With a fault injector attached, a per-packet draw may hang the
        core: architectural state stops advancing and the watchdog
        surfaces a :class:`~repro.faults.CoreHangFault` to the caller,
        which is expected to reset and replay the program.
        """
        self.halted = False
        for index, packet in enumerate(program.packets):
            if self.fault_injector is not None and self.fault_injector.core_hang(
                f"core{self.core_id}", time_ns=float(self.cycles_retired)
            ):
                from repro.faults.errors import CoreHangFault

                self.halted = True
                raise CoreHangFault(
                    f"core{self.core_id}: hung at packet {index} of "
                    f"{len(program.packets)}; watchdog reset"
                )
            self._execute_packet(packet)
            if self.halted:
                break
        return self.cycles_retired

    def _execute_packet(self, packet: Packet) -> None:
        # Reads happen before writes within a packet (VLIW semantics), which
        # the Packet legality check already guarantees by construction.
        for instruction in packet.instructions:
            self._execute(instruction)
        self.cycles_retired += packet.latency
        self.stall_cycles += packet.stall_cycles
        self.cycles_retired += packet.stall_cycles

    def _execute(self, instruction: Instruction) -> None:
        handler = {
            Slot.SCALAR: self._run_scalar,
            Slot.VECTOR: self._run_vector,
            Slot.MATRIX: self._run_matrix,
            Slot.SFU: self._run_sfu,
            Slot.LOAD: self._run_load,
            Slot.STORE: self._run_store,
            Slot.CONTROL: self._run_control,
        }[instruction.slot]
        handler(instruction)

    # -- slot handlers -----------------------------------------------------

    def _run_scalar(self, instruction: Instruction) -> None:
        op = instruction.opcode
        if op == "smov":
            self.state.scalar[instruction.dest] = float(instruction.imm[0])
        elif op in ("sadd", "smul"):
            a = self.state.read_scalar(instruction.srcs[0])
            b = self.state.read_scalar(instruction.srcs[1])
            self.state.scalar[instruction.dest] = a + b if op == "sadd" else a * b
        else:
            raise ExecutionError(f"unhandled scalar op {op}")

    def _run_vector(self, instruction: Instruction) -> None:
        op = instruction.opcode
        engine = self.vector_engine
        read = self.state.read_vector
        if op in ("vadd", "vsub", "vmul", "vdiv", "vmax", "vmin"):
            result = engine.binary(op[1:], read(instruction.srcs[0]), read(instruction.srcs[1]))
        elif op == "vfma":
            result = engine.fma(
                read(instruction.srcs[0]),
                read(instruction.srcs[1]),
                read(instruction.srcs[2]),
            )
        elif op == "vrelu":
            result = engine.unary("relu", read(instruction.srcs[0]))
        elif op == "vcmp":
            result = engine.compare(
                instruction.imm[0], read(instruction.srcs[0]), read(instruction.srcs[1])
            )
        elif op == "vsel":
            result = engine.select(
                read(instruction.srcs[0]),
                read(instruction.srcs[1]),
                read(instruction.srcs[2]),
            )
        elif op == "vreduce":
            value = engine.reduce(instruction.imm[0], read(instruction.srcs[0]))
            self.state.scalar[instruction.dest] = value
            return
        else:
            raise ExecutionError(f"unhandled vector op {op}")
        self.state.vector[instruction.dest] = result

    def _run_matrix(self, instruction: Instruction) -> None:
        op = instruction.opcode
        if op == "mload":
            # imm = (tensor name in L1, matrix-register slot); tensor names
            # are symbolic addresses, not registers, so they ride in imm.
            name = instruction.imm[0]
            slot = int(instruction.imm[1]) if len(instruction.imm) > 1 else 0
            self.matrix_engine.load_matrix(slot, self.l1.read(name))
        elif op == "vmm":
            slot, acc = int(instruction.imm[0]), int(instruction.imm[1])
            transposed = bool(instruction.imm[2]) if len(instruction.imm) > 2 else False
            accumulate = bool(instruction.imm[3]) if len(instruction.imm) > 3 else False
            result = self.matrix_engine.vmm(
                self.state.read_vector(instruction.srcs[0]),
                slot=slot,
                acc=acc,
                transposed=transposed,
                accumulate=accumulate,
            )
            if instruction.dest:
                self.state.vector[instruction.dest] = result
        elif op == "maccread":
            acc = int(instruction.imm[0])
            self.state.vector[instruction.dest] = self.matrix_engine.read_accumulator(acc)
        else:
            raise ExecutionError(f"unhandled matrix op {op}")

    def _run_sfu(self, instruction: Instruction) -> None:
        function = instruction.imm[0]
        operand = self.state.read_vector(instruction.srcs[0])
        composite = {
            "gelu": self.sfu.gelu,
            "swish": self.sfu.swish,
            "softplus": self.sfu.softplus,
        }
        if function in composite:
            result = composite[function](operand)
        else:
            result = self.sfu.evaluate(function, operand)
        self.state.vector[instruction.dest] = result

    def _run_load(self, instruction: Instruction) -> None:
        name = instruction.imm[0]
        array = self.l1.read(name)
        if len(instruction.imm) > 1:
            start, stop = instruction.imm[1], instruction.imm[2]
            array = array[start:stop]
        flat = np.asarray(array, dtype=np.float64).ravel()
        if flat.size > self.vector_engine.lanes:
            raise ExecutionError(
                f"load of {flat.size} elements exceeds {self.vector_engine.lanes} lanes"
            )
        self.state.vector[instruction.dest] = flat

    def _run_store(self, instruction: Instruction) -> None:
        name = instruction.imm[0]
        value = self.state.read_vector(instruction.srcs[0])
        if len(instruction.imm) > 2:
            # Strided store into a pre-allocated region: imm = (name, start,
            # stop); strip-mined kernels write their output this way.
            start, stop = instruction.imm[1], instruction.imm[2]
            target = self.l1.read(name)
            if stop - start != value.size:
                raise ExecutionError(
                    f"store of {value.size} elements into [{start}:{stop}]"
                )
            target[start:stop] = value
        else:
            self.l1.write(name, value.copy())

    def _run_control(self, instruction: Instruction) -> None:
        if instruction.opcode == "halt":
            self.halted = True
        # sync/prefetch/nop have timing effects modelled at the simulator
        # level; functionally they are no-ops here.
