"""Matrix engine: fine-grained vector-matrix multiplication (VMM).

§IV-A1 + Fig. 3: the engine owns 2 matrix registers (32 rows x 512 bits),
32 vector registers (512-bit) and 1024 accumulation registers (512-bit).
For FP32 the supported matrix shapes are 16x16, 8x16 and 4x16 with vector
lengths 16, 8 and 4; other dtypes scale the lane count with element width.
Computation proceeds as a series of outer-product steps — the input vector
is "operated with each row of the input matrix" and the running sum lives
in an accumulation register, maximizing reuse and minimizing data movement.

Table II advertises "more than 40 VMM patterns"; :func:`supported_patterns`
enumerates ours (shape x dtype x transpose x accumulate), and the engine
rejects anything outside the list, the same way the fixed-function hardware
would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.datatypes import DType
from repro.engines.vector import VECTOR_BITS, lanes_for
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.faults.silent import SilentCorruptor

MATRIX_REGISTER_ROWS = 32
NUM_MATRIX_REGISTERS = 2
NUM_ACCUMULATION_REGISTERS = 1024


class VmmPatternError(ValueError):
    """Requested a VMM shape the matrix engine does not implement."""


@dataclass(frozen=True)
class VmmPattern:
    """One hardware-supported VMM configuration."""

    dtype: DType
    rows: int
    cols: int
    transposed: bool
    accumulate: bool

    @property
    def vector_length(self) -> int:
        """Length of the input vector: rows normally, cols when transposed."""
        return self.cols if self.transposed else self.rows

    @property
    def output_length(self) -> int:
        return self.rows if self.transposed else self.cols

    @property
    def macs(self) -> int:
        return self.rows * self.cols


_PATTERNS: tuple[VmmPattern, ...] | None = None


def supported_patterns() -> tuple[VmmPattern, ...]:
    """All VMM patterns DTU 2.0's matrix engine accepts (>40, per Table II).

    For each dtype with ``L = 512 / bits`` lanes the matrix is ``m x L`` with
    ``m`` in ``{L/4, L/2, L}`` capped at the 32 matrix-register rows, each
    pattern available transposed / plain and accumulating / overwriting.

    The table is a pure function of the hardware description, so it is
    built once and memoized — the compiler's tensorization pass consults
    it for every candidate node.
    """
    global _PATTERNS
    if _PATTERNS is not None:
        return _PATTERNS
    patterns: list[VmmPattern] = []
    seen: set[VmmPattern] = set()
    for dtype in DType:
        lanes = lanes_for(dtype)
        for rows in (lanes // 4, lanes // 2, lanes):
            rows = min(rows, MATRIX_REGISTER_ROWS)
            for transposed in (False, True):
                for accumulate in (False, True):
                    pattern = VmmPattern(
                        dtype=dtype,
                        rows=rows,
                        cols=lanes,
                        transposed=transposed,
                        accumulate=accumulate,
                    )
                    if pattern not in seen:
                        seen.add(pattern)
                        patterns.append(pattern)
    _PATTERNS = tuple(patterns)
    return _PATTERNS


_SUPPORTED: frozenset[tuple] = frozenset(
    (p.dtype, p.rows, p.cols, p.transposed) for p in supported_patterns()
)


def is_supported(dtype: DType, rows: int, cols: int, transposed: bool = False) -> bool:
    return (dtype, rows, cols, transposed) in _SUPPORTED


@dataclass
class MatrixEngine:
    """Functional model of the VMM facility.

    The register files are explicit: a matrix must be *loaded* into one of
    the two matrix registers before VMM, and results accumulate into one of
    the 1024 accumulation registers — mirroring Fig. 3's data-preparation
    stage and letting tests assert capacity limits.
    """

    dtype: DType = DType.FP32
    trace: Trace | None = None
    corruptor: "SilentCorruptor | None" = None
    """Optional silent-corruption source (:mod:`repro.faults.silent`).
    When attached, :meth:`gemm` results may be corrupted *after* all
    architectural state updates — the register file keeps the true
    partials, exactly like a defect on the result readout path — and
    nothing raises. ``None`` (the default) is bit-identical to a build
    without the fault layer."""
    matrix_registers: list = field(
        default_factory=lambda: [None] * NUM_MATRIX_REGISTERS
    )
    accumulators: dict[int, np.ndarray] = field(default_factory=dict)
    macs_executed: int = field(default=0, init=False)
    vmm_issued: int = field(default=0, init=False)

    @property
    def lanes(self) -> int:
        return lanes_for(self.dtype)

    def _charge(self, macs: int) -> None:
        self.macs_executed += macs
        self.vmm_issued += 1
        if self.trace is not None:
            self.trace.bump("matrix.vmm")
            self.trace.bump("matrix.macs", macs)

    def load_matrix(self, slot: int, matrix: np.ndarray) -> None:
        """Fill matrix register ``slot`` (Fig. 3 data-preparation stage)."""
        if not 0 <= slot < NUM_MATRIX_REGISTERS:
            raise VmmPatternError(
                f"matrix register slot {slot} out of range "
                f"[0, {NUM_MATRIX_REGISTERS})"
            )
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise VmmPatternError(f"matrix register holds 2-D data, got {matrix.shape}")
        rows, cols = matrix.shape
        if rows > MATRIX_REGISTER_ROWS:
            raise VmmPatternError(
                f"{rows} rows exceed the {MATRIX_REGISTER_ROWS}-row matrix register"
            )
        if cols * self.dtype.bits > VECTOR_BITS:
            raise VmmPatternError(
                f"{cols} columns of {self.dtype.name} exceed a 512-bit row"
            )
        self.matrix_registers[slot] = matrix

    def vmm(
        self,
        vector: np.ndarray,
        slot: int = 0,
        acc: int = 0,
        transposed: bool = False,
        accumulate: bool = False,
    ) -> np.ndarray:
        """vector x matrix -> accumulation register ``acc``.

        With ``transposed`` the loaded matrix acts as its transpose, which is
        how the hardware reuses one loaded operand for both GEMM directions.
        """
        matrix = self.matrix_registers[slot]
        if matrix is None:
            raise VmmPatternError(f"matrix register {slot} is empty")
        rows, cols = matrix.shape
        if not is_supported(self.dtype, rows, cols, transposed):
            raise VmmPatternError(
                f"VMM pattern {rows}x{cols} transposed={transposed} for "
                f"{self.dtype.name} is not hardware-supported"
            )
        if not 0 <= acc < NUM_ACCUMULATION_REGISTERS:
            raise VmmPatternError(f"accumulator {acc} out of range")
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1:
            raise VmmPatternError(f"VMM input must be 1-D, got {vector.shape}")
        operand = matrix.T if transposed else matrix
        if vector.shape[0] != operand.shape[0]:
            raise VmmPatternError(
                f"vector length {vector.shape[0]} does not match matrix "
                f"rows {operand.shape[0]}"
            )
        # Outer-product accumulation, one matrix row per step (Fig. 3): the
        # running partial sum never leaves the accumulation register.
        partial = np.zeros(operand.shape[1], dtype=np.float64)
        for element, row in zip(vector, operand):
            partial += element * row
        self._charge(rows * cols)
        if accumulate and acc in self.accumulators:
            if self.accumulators[acc].shape != partial.shape:
                raise VmmPatternError(
                    f"accumulator {acc} holds length "
                    f"{self.accumulators[acc].shape[0]}, cannot accumulate "
                    f"length {partial.shape[0]}"
                )
            partial = partial + self.accumulators[acc]
        self.accumulators[acc] = partial
        return partial

    def read_accumulator(self, acc: int) -> np.ndarray:
        if acc not in self.accumulators:
            raise VmmPatternError(f"accumulator {acc} has no value")
        return self.accumulators[acc]

    def clear_accumulator(self, acc: int) -> None:
        self.accumulators.pop(acc, None)

    def vmm_quantized(
        self,
        q_vector: np.ndarray,
        q_matrix: np.ndarray,
        vector_scale: float,
        matrix_scale: float,
        slot: int = 0,
        acc: int = 0,
    ) -> np.ndarray:
        """INT8 VMM: integer operands, wide accumulation, one dequantize.

        This is how Table I's 256 TOPS mode computes: operands arrive as
        INT8 codes (range [-127, 127]), the outer-product accumulation runs
        exactly in the wide accumulation registers (integers are exact in
        float64 up to 2^53), and the result dequantizes once with the
        product of the two scales — no per-MAC rounding error.
        """
        q_vector = np.asarray(q_vector)
        q_matrix = np.asarray(q_matrix)
        for operand, label in ((q_vector, "vector"), (q_matrix, "matrix")):
            if np.any(np.abs(operand) > 127) or np.any(operand != np.rint(operand)):
                raise VmmPatternError(
                    f"quantized {label} must hold integer codes in [-127, 127]"
                )
        self.load_matrix(slot, q_matrix.astype(np.float64))
        integer_result = self.vmm(q_vector.astype(np.float64), slot=slot, acc=acc)
        return integer_result * (vector_scale * matrix_scale)

    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        tile_rows: int | None = None,
    ) -> np.ndarray:
        """Library-level GEMM built from tiled VMM calls.

        This is how TopsDNN composes matrix multiplication on DTU 2.0: each
        row of ``a`` drives VMM against column tiles of ``b``, accumulating
        over the K dimension in accumulation registers. The result equals
        ``a @ b`` (tests check against numpy).

        Executes on the vectorized fast path: one batched NumPy update per
        K step instead of one Python-level VMM call per (row, column tile,
        K tile). Results, architectural cost accounting (VMMs issued, MACs,
        trace counters) and final register-file state are bit-identical to
        :meth:`gemm_reference` — pinned by the equivalence tests in
        ``tests/engines/test_matrix_fastpath.py``.
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise VmmPatternError(f"bad GEMM shapes {a.shape} x {b.shape}")
        m, k = a.shape
        _, n = b.shape
        lanes = self.lanes
        tile_k = tile_rows or lanes
        tile_k = min(tile_k, lanes, MATRIX_REGISTER_ROWS)
        if m == 0 or n == 0 or k == 0:
            # Degenerate extents take the reference path (it is trivially
            # fast there and keeps the error behaviour identical).
            result = self.gemm_reference(a, b, tile_rows)
            if self.corruptor is not None:
                result = self.corruptor.corrupt_gemm(result)
            return result

        num_col_tiles = -(-n // lanes)
        num_k_tiles = -(-k // tile_k)
        if not is_supported(self.dtype, tile_k, lanes, False):
            # The reference loop loads the first tile before vmm() rejects
            # the pattern; mirror that register-file side effect exactly.
            first = np.zeros((tile_k, lanes), dtype=np.float64)
            first[: min(tile_k, k), : min(lanes, n)] = b[:tile_k, :lanes]
            self.matrix_registers[0] = first
            raise VmmPatternError(
                f"VMM pattern {tile_k}x{lanes} transposed=False for "
                f"{self.dtype.name} is not hardware-supported"
            )

        # The reference loop folds each K tile sequentially: the tile's
        # partial sum is itself a sequential fold over its rows, then
        # ``new_acc = partial + old_acc``. Rows of ``a`` and columns of
        # ``b`` never interact, so we batch those two dimensions and keep
        # the K order — bit-identical IEEE-754 association. Skipping the
        # zero-padded tail rows/columns is exact too: the padded products
        # are +/-0.0 and the running partial is never -0.0.
        acc = np.zeros((m, n), dtype=np.float64)
        outer = np.empty((m, n), dtype=np.float64)
        columns = a.T.reshape(k, m, 1)  # a[:, kk] as ready-to-broadcast views
        for t in range(num_k_tiles):
            k0 = t * tile_k
            k1 = min(k0 + tile_k, k)
            partial = np.zeros((m, n), dtype=np.float64)
            for kk in range(k0, k1):
                np.multiply(columns[kk], b[kk], out=outer)
                partial += outer
            acc = partial if t == 0 else partial + acc

        # Identical architectural charges: one VMM of tile_k x lanes MACs
        # per (column tile, row, K tile), exactly as the reference issues.
        vmm_calls = num_col_tiles * m * num_k_tiles
        self.vmm_issued += vmm_calls
        self.macs_executed += vmm_calls * tile_k * lanes
        if self.trace is not None:
            self.trace.bump("matrix.vmm", vmm_calls)
            self.trace.bump("matrix.macs", vmm_calls * tile_k * lanes)

        # Reconstruct the final register-file state the reference loop
        # leaves behind: accumulator ``row % 1024`` holds the last column
        # tile's lane-padded partial for that row, and matrix register 0
        # holds the last tile loaded.
        last_col0 = (num_col_tiles - 1) * lanes
        last_col1 = min(last_col0 + lanes, n)
        width = last_col1 - last_col0
        padded = np.zeros((m, lanes), dtype=np.float64)
        padded[:, :width] = acc[:, last_col0:last_col1]
        for row in range(m):
            self.accumulators[row % NUM_ACCUMULATION_REGISTERS] = padded[row]
        last_k0 = (num_k_tiles - 1) * tile_k
        last_k1 = min(last_k0 + tile_k, k)
        last_tile = np.zeros((tile_k, lanes), dtype=np.float64)
        last_tile[: last_k1 - last_k0, :width] = b[last_k0:last_k1, last_col0:last_col1]
        self.matrix_registers[0] = last_tile
        if self.corruptor is not None:
            # Corruption lands after every architectural state update: the
            # accumulation registers keep the true partials, only the
            # returned result is wrong — wrong numbers, no error signal.
            acc = self.corruptor.corrupt_gemm(acc)
        return acc

    def gemm_reference(
        self,
        a: np.ndarray,
        b: np.ndarray,
        tile_rows: int | None = None,
    ) -> np.ndarray:
        """The original tile-loop GEMM: one VMM call per (row, column tile,
        K tile). Kept as the architectural reference the fast path is pinned
        against, and as the slow side of the ``engine.gemm`` benchmark."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise VmmPatternError(f"bad GEMM shapes {a.shape} x {b.shape}")
        m, k = a.shape
        _, n = b.shape
        lanes = self.lanes
        tile_k = tile_rows or lanes
        tile_k = min(tile_k, lanes, MATRIX_REGISTER_ROWS)
        out = np.zeros((m, n), dtype=np.float64)
        for col0 in range(0, n, lanes):
            col1 = min(col0 + lanes, n)
            for row in range(m):
                acc_id = row % NUM_ACCUMULATION_REGISTERS
                self.clear_accumulator(acc_id)
                for k0 in range(0, k, tile_k):
                    k1 = min(k0 + tile_k, k)
                    tile = np.zeros((tile_k, lanes), dtype=np.float64)
                    tile[: k1 - k0, : col1 - col0] = b[k0:k1, col0:col1]
                    vec = np.zeros(tile_k, dtype=np.float64)
                    vec[: k1 - k0] = a[row, k0:k1]
                    self.load_matrix(0, tile)
                    self.vmm(vec, slot=0, acc=acc_id, accumulate=True)
                out[row, col0:col1] = self.read_accumulator(acc_id)[: col1 - col0]
        return out
