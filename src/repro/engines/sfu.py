"""Special Function Unit: transcendental functions via LUT + quadratic Taylor.

§IV-A2: "Cooperated with the vector engine, the SPU executes efficient
calculations on transcendental functions by computing the quadratic Taylor
polynomial, according to the derivative values found in the Lookup Table. It
supports activation functions such as Softplus, Tanh, Sigmoid, Gelu, Swish,
Softmax, etc." — Table II says around 10 transcendental functions are
accelerated.

Our functional model mirrors the mechanism exactly: each supported function
has a table of ``(f(x0), f'(x0), f''(x0))`` entries at uniformly spaced knots
over a clamped input range; evaluation picks the nearest knot and computes

    f(x) ~= f(x0) + f'(x0) (x - x0) + f''(x0) (x - x0)^2 / 2.

With 1024 knots over the active range the approximation error is small
enough for FP16 inference (tests bound it), just as on the real SFU.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sim.trace import Trace

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


# name -> (f, f', f'', (range_lo, range_hi))
# Derivatives are expressed analytically so that LUT construction is exact
# at the knots. Ranges cover where the function is non-trivial; outside,
# inputs clamp to the boundary knot (matching saturating hardware LUTs).
_FUNCTIONS: dict = {}


def _register(name, fn, d1, d2, lo, hi):
    _FUNCTIONS[name] = (fn, d1, d2, (lo, hi))


_register(
    "exp",
    np.exp, np.exp, np.exp,
    -20.0, 20.0,
)
_register(
    "tanh",
    np.tanh,
    lambda x: 1.0 - np.tanh(x) ** 2,
    lambda x: -2.0 * np.tanh(x) * (1.0 - np.tanh(x) ** 2),
    -8.0, 8.0,
)
_register(
    "sigmoid",
    _sigmoid,
    lambda x: _sigmoid(x) * (1.0 - _sigmoid(x)),
    lambda x: _sigmoid(x) * (1.0 - _sigmoid(x)) * (1.0 - 2.0 * _sigmoid(x)),
    -16.0, 16.0,
)
_register(
    "softplus",
    lambda x: np.log1p(np.exp(-np.abs(x))) + np.maximum(x, 0.0),
    _sigmoid,
    lambda x: _sigmoid(x) * (1.0 - _sigmoid(x)),
    -16.0, 16.0,
)
# The power-law family (log / sqrt / rsqrt / reciprocal) is evaluated with
# hardware range reduction: the input is split as x = m * 2^e with mantissa
# m in [1, 2), the LUT covers only [1, 2), and the exponent recombines
# exactly — the standard SFU trick that keeps relative error flat across
# the whole positive range. See SpecialFunctionUnit._evaluate_reduced.
_RANGE_REDUCED = {"log", "sqrt", "rsqrt", "reciprocal"}

_register(
    "log",
    np.log,
    lambda x: 1.0 / x,
    lambda x: -1.0 / x**2,
    1.0, 2.0,
)
_register(
    "rsqrt",
    lambda x: 1.0 / np.sqrt(x),
    lambda x: -0.5 * x ** (-1.5),
    lambda x: 0.75 * x ** (-2.5),
    1.0, 2.0,
)
_register(
    "sqrt",
    np.sqrt,
    lambda x: 0.5 / np.sqrt(x),
    lambda x: -0.25 * x ** (-1.5),
    1.0, 2.0,
)
_register(
    "reciprocal",
    lambda x: 1.0 / x,
    lambda x: -1.0 / x**2,
    lambda x: 2.0 / x**3,
    1.0, 2.0,
)


def _erf_d1(x):
    return 2.0 / math.sqrt(math.pi) * np.exp(-(x**2))


_register(
    "erf",
    lambda x: np.vectorize(math.erf)(x).astype(np.float64),
    _erf_d1,
    lambda x: -2.0 * x * _erf_d1(x),
    -4.0, 4.0,
)


@dataclass(frozen=True)
class _Table:
    lo: float
    hi: float
    step: float
    f0: np.ndarray
    f1: np.ndarray
    f2: np.ndarray


class SpecialFunctionUnit:
    """The DTU 2.0 SFU: ~10 hardware-accelerated transcendental primitives.

    Composite activations (gelu, swish, softmax) are provided as methods
    that chain the primitive LUT evaluations with vector-engine arithmetic,
    exactly how the kernel library implements them on hardware.
    """

    def __init__(self, entries: int = 1024, trace: Trace | None = None) -> None:
        if entries < 4:
            raise ValueError("LUT needs at least 4 entries")
        self.entries = entries
        self.trace = trace
        self._tables: dict[str, _Table] = {}
        for name, (fn, d1, d2, (lo, hi)) in _FUNCTIONS.items():
            knots = np.linspace(lo, hi, entries)
            self._tables[name] = _Table(
                lo=lo,
                hi=hi,
                step=float(knots[1] - knots[0]),
                f0=np.asarray(fn(knots), dtype=np.float64),
                f1=np.asarray(d1(knots), dtype=np.float64),
                f2=np.asarray(d2(knots), dtype=np.float64),
            )

    @property
    def supported_functions(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))

    def _charge(self, name: str, count: int) -> None:
        if self.trace is not None:
            self.trace.bump(f"sfu.{name}", count)

    def evaluate(self, name: str, x: np.ndarray | float) -> np.ndarray:
        """Evaluate primitive ``name`` via the LUT + quadratic Taylor step."""
        if name not in self._tables:
            raise ValueError(
                f"SFU does not accelerate {name!r}; supported: "
                f"{self.supported_functions}"
            )
        x_arr = np.asarray(x, dtype=np.float64)
        self._charge(name, int(x_arr.size))
        if name in _RANGE_REDUCED:
            return self._evaluate_reduced(name, x_arr)
        return self._taylor(name, x_arr)

    def _taylor(self, name: str, x_arr: np.ndarray) -> np.ndarray:
        table = self._tables[name]
        clamped = np.clip(x_arr, table.lo, table.hi)
        index = np.clip(
            np.rint((clamped - table.lo) / table.step).astype(np.int64),
            0,
            self.entries - 1,
        )
        x0 = table.lo + index * table.step
        dx = clamped - x0
        return table.f0[index] + table.f1[index] * dx + 0.5 * table.f2[index] * dx**2

    def _evaluate_reduced(self, name: str, x_arr: np.ndarray) -> np.ndarray:
        """Exponent/mantissa range reduction for the power-law family."""
        positive = np.maximum(x_arr, np.finfo(np.float64).tiny)
        mantissa, exponent = np.frexp(positive)  # x = mantissa * 2^exp, m in [0.5, 1)
        mantissa, exponent = mantissa * 2.0, exponent - 1  # move m into [1, 2)
        base = self._taylor(name, mantissa)
        exponent = exponent.astype(np.float64)
        if name == "log":
            return base + exponent * math.log(2.0)
        if name == "sqrt":
            return base * np.exp2(exponent / 2.0)
        if name == "rsqrt":
            return base * np.exp2(-exponent / 2.0)
        if name == "reciprocal":
            return base * np.exp2(-exponent)
        raise AssertionError(f"unexpected reduced function {name}")

    # -- composite activations (library routines layered on the primitives) --

    def gelu(self, x: np.ndarray) -> np.ndarray:
        """GELU via the erf primitive: ``0.5 x (1 + erf(x / sqrt(2)))``."""
        x = np.asarray(x, dtype=np.float64)
        return 0.5 * x * (1.0 + self.evaluate("erf", x / math.sqrt(2.0)))

    def gelu_tanh(self, x: np.ndarray) -> np.ndarray:
        """The tanh-form GELU approximation many frameworks use."""
        x = np.asarray(x, dtype=np.float64)
        inner = _SQRT_2_OVER_PI * (x + 0.044715 * x**3)
        return 0.5 * x * (1.0 + self.evaluate("tanh", inner))

    def swish(self, x: np.ndarray) -> np.ndarray:
        """Swish / SiLU: ``x * sigmoid(x)``."""
        x = np.asarray(x, dtype=np.float64)
        return x * self.evaluate("sigmoid", x)

    def softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Numerically stable softmax built on the exp primitive."""
        x = np.asarray(x, dtype=np.float64)
        shifted = x - np.max(x, axis=axis, keepdims=True)
        exps = self.evaluate("exp", shifted)
        return exps / np.sum(exps, axis=axis, keepdims=True)

    def softplus(self, x: np.ndarray) -> np.ndarray:
        return self.evaluate("softplus", x)

    def tanh(self, x: np.ndarray) -> np.ndarray:
        return self.evaluate("tanh", x)

    def sigmoid(self, x: np.ndarray) -> np.ndarray:
        return self.evaluate("sigmoid", x)
