"""VMM-assisted data sorting for Top-K queries (paper Fig. 4).

The matrix engine sorts a vector in four hardware steps:

1. Generate the **relationship matrix** ``R`` by comparing vector elements
   against each other; ``R[i, j] = 1`` when element ``j`` outranks element
   ``i``. "Identical elements in the input vector are appropriately handled
   according to their original indices" — we break ties by original index,
   which makes the sort *stable*.
2. Column sums of ``R`` give the **order vector**: the rank of each element.
3. The order vector turns into the **transformation matrix** — a permutation
   matrix with the 1 in row ``i`` placed at the column named by the ``i``-th
   order entry.
4. A single VMM of the input vector with the transformation matrix emits the
   sorted vector.

Everything below runs on the :class:`~repro.engines.matrix.MatrixEngine` so
the functional path is the same silicon path the paper describes.
"""

from __future__ import annotations

import numpy as np

from repro.engines.matrix import MATRIX_REGISTER_ROWS, MatrixEngine, VmmPatternError


def relationship_matrix(vector: np.ndarray, descending: bool = True) -> np.ndarray:
    """Step 1: pairwise comparison matrix with index tie-breaking.

    ``R[i, j] = 1`` iff element ``j`` must be placed before element ``i`` in
    the output order.
    """
    vector = np.asarray(vector, dtype=np.float64)
    if vector.ndim != 1:
        raise ValueError(f"sorting operates on 1-D vectors, got {vector.shape}")
    values_i = vector[:, None]
    values_j = vector[None, :]
    if descending:
        wins = values_j > values_i
    else:
        wins = values_j < values_i
    index_i = np.arange(vector.size)[:, None]
    index_j = np.arange(vector.size)[None, :]
    ties = (values_j == values_i) & (index_j < index_i)
    return (wins | ties).astype(np.float64)


def order_vector(relationship: np.ndarray) -> np.ndarray:
    """Step 2: rank of each element = its column sum in ``R``."""
    relationship = np.asarray(relationship, dtype=np.float64)
    if relationship.ndim != 2 or relationship.shape[0] != relationship.shape[1]:
        raise ValueError(f"relationship matrix must be square, got {relationship.shape}")
    # Element j's rank is how many elements beat it: the sum over column j
    # counts every i that j does NOT precede... the paper sums columns of R,
    # where R[i, j]=1 means j precedes i, i.e. column j counts elements that
    # j outranks; rank = (n - 1) - outranked.
    n = relationship.shape[0]
    outranked = relationship.sum(axis=0)
    return (n - 1) - outranked.astype(np.int64)


def transformation_matrix(order: np.ndarray) -> np.ndarray:
    """Step 3: permutation matrix with ``T[order[j], j] = 1``.

    Applying it via VMM (``sorted = input @ T``... computed as
    ``T.T @ input``) routes element ``j`` of the input to position
    ``order[j]`` of the output.
    """
    order = np.asarray(order, dtype=np.int64)
    n = order.size
    if sorted(order.tolist()) != list(range(n)):
        raise ValueError(f"order vector {order} is not a permutation of 0..{n - 1}")
    transform = np.zeros((n, n), dtype=np.float64)
    transform[order, np.arange(n)] = 1.0
    return transform


def sort_vector(
    engine: MatrixEngine,
    vector: np.ndarray,
    descending: bool = True,
) -> np.ndarray:
    """Steps 1-4 end to end on the matrix engine (Fig. 4)."""
    vector = np.asarray(vector, dtype=np.float64)
    if vector.size > engine.lanes or vector.size > MATRIX_REGISTER_ROWS:
        raise VmmPatternError(
            f"hardware sort handles up to min(lanes={engine.lanes}, "
            f"{MATRIX_REGISTER_ROWS}) elements per pass, got {vector.size}"
        )
    relationship = relationship_matrix(vector, descending=descending)
    order = order_vector(relationship)
    transform = transformation_matrix(order)
    # Step 4: one VMM applies the permutation. Pad to a hardware pattern of
    # ``rows x lanes`` (rows capped at the 32-row matrix register); identity
    # padding on the diagonal leaves the payload untouched.
    lanes = engine.lanes
    rows = min(lanes, MATRIX_REGISTER_ROWS)
    size = vector.size
    padded = np.zeros((rows, lanes), dtype=np.float64)
    padded[:size, :size] = transform
    for extra in range(size, rows):
        padded[extra, extra] = 1.0
    vec = np.zeros(lanes, dtype=np.float64)
    vec[:size] = vector
    engine.load_matrix(0, padded)
    result = engine.vmm(vec, slot=0, transposed=True)
    return result[:size]


def top_k(
    engine: MatrixEngine,
    values: np.ndarray,
    k: int,
    largest: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Top-K selection built on the hardware sorter.

    Long inputs are processed in engine-sized chunks whose per-chunk winners
    are merged, the way TopsDNN implements Top-K recommendation (§IV-A1).
    Returns ``(values, indices)`` with stable ordering among ties.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"top_k expects a 1-D array, got {values.shape}")
    if not 1 <= k <= values.size:
        raise ValueError(f"k={k} out of range for {values.size} elements")
    chunk = min(engine.lanes, MATRIX_REGISTER_ROWS)
    # Candidate pool: the best min(k, chunk) of every chunk survive.
    candidate_indices: list[int] = []
    for start in range(0, values.size, chunk):
        segment = values[start : start + chunk]
        sorted_segment = sort_vector(engine, segment, descending=largest)
        keep = min(k, segment.size)
        for position in range(keep):
            target = sorted_segment[position]
            # Recover the original index with stable tie handling: first
            # occurrence not already claimed within this chunk.
            local = np.where(segment == target)[0]
            for candidate in local:
                absolute = int(start + candidate)
                if absolute not in candidate_indices:
                    candidate_indices.append(absolute)
                    break
    pool = np.array(candidate_indices, dtype=np.int64)
    order = np.argsort(-values[pool] if largest else values[pool], kind="stable")
    winners = pool[order][:k]
    return values[winners], winners
