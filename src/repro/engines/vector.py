"""Vector engine: the 512-bit SIMD unit of the DTU compute core.

DTU cores process 512-bit vectors (§IV-A: 32 vector registers of 512 bits).
The lane count therefore depends on element width: 16 lanes for 32-bit
types, 32 for 16-bit, 64 for INT8. The engine is *functional* — it computes
real results on numpy arrays — while also charging architectural costs
(operation counts) to an optional :class:`~repro.sim.trace.Trace` so the
performance model can account for vectorized work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.datatypes import DType
from repro.sim.trace import Trace

VECTOR_BITS = 512
NUM_VECTOR_REGISTERS = 32

_BINARY_OPS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    "max": np.maximum,
    "min": np.minimum,
}

_UNARY_OPS = {
    "neg": np.negative,
    "abs": np.abs,
    "relu": lambda x: np.maximum(x, 0.0),
}

_REDUCTIONS = {
    "sum": np.sum,
    "max": np.max,
    "min": np.min,
    "prod": np.prod,
}


def lanes_for(dtype: DType) -> int:
    """Number of SIMD lanes a 512-bit vector holds for ``dtype``."""
    return VECTOR_BITS // dtype.bits


class VectorLengthError(ValueError):
    """An operand does not fit the engine's lane count."""


@dataclass
class VectorEngine:
    """Functional model of one core's vector unit.

    All operands must be 1-D numpy arrays no longer than the lane count for
    the configured dtype; longer workloads are strip-mined by the compiler
    (see :mod:`repro.compiler.vectorize`), not by the hardware.
    """

    dtype: DType = DType.FP32
    trace: Trace | None = None
    ops_executed: int = field(default=0, init=False)

    @property
    def lanes(self) -> int:
        return lanes_for(self.dtype)

    def _check(self, *operands: np.ndarray) -> None:
        for operand in operands:
            if operand.ndim != 1:
                raise VectorLengthError(
                    f"vector engine operates on 1-D arrays, got shape {operand.shape}"
                )
            if operand.shape[0] > self.lanes:
                raise VectorLengthError(
                    f"operand of length {operand.shape[0]} exceeds "
                    f"{self.lanes} lanes for {self.dtype.name}"
                )

    def _charge(self, op: str) -> None:
        self.ops_executed += 1
        if self.trace is not None:
            self.trace.bump(f"vector.{op}")

    def binary(self, op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Lane-wise binary operation (add/sub/mul/div/max/min)."""
        if op not in _BINARY_OPS:
            raise ValueError(f"unknown binary vector op {op!r}")
        self._check(a, b)
        if a.shape != b.shape:
            raise VectorLengthError(f"shape mismatch {a.shape} vs {b.shape}")
        self._charge(op)
        return _BINARY_OPS[op](a.astype(np.float64), b.astype(np.float64))

    def unary(self, op: str, a: np.ndarray) -> np.ndarray:
        """Lane-wise unary operation (neg/abs/relu)."""
        if op not in _UNARY_OPS:
            raise ValueError(f"unknown unary vector op {op!r}")
        self._check(a)
        self._charge(op)
        return _UNARY_OPS[op](a.astype(np.float64))

    def fma(self, a: np.ndarray, b: np.ndarray, acc: np.ndarray) -> np.ndarray:
        """Fused multiply-add: ``a * b + acc`` in one issue slot."""
        self._check(a, b, acc)
        if not (a.shape == b.shape == acc.shape):
            raise VectorLengthError("fma operands must share a shape")
        self._charge("fma")
        return a.astype(np.float64) * b.astype(np.float64) + acc.astype(np.float64)

    def reduce(self, op: str, a: np.ndarray) -> float:
        """Horizontal reduction across lanes."""
        if op not in _REDUCTIONS:
            raise ValueError(f"unknown reduction {op!r}")
        self._check(a)
        if a.size == 0:
            raise VectorLengthError("cannot reduce an empty vector")
        self._charge(f"reduce_{op}")
        return float(_REDUCTIONS[op](a.astype(np.float64)))

    def select(self, mask: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Lane-wise select: ``a`` where mask is truthy, else ``b``."""
        self._check(mask, a, b)
        if not (mask.shape == a.shape == b.shape):
            raise VectorLengthError("select operands must share a shape")
        self._charge("select")
        return np.where(mask.astype(bool), a, b).astype(np.float64)

    def compare(self, op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Lane-wise comparison producing a 0/1 mask."""
        comparators = {
            "lt": np.less, "le": np.less_equal,
            "gt": np.greater, "ge": np.greater_equal,
            "eq": np.equal, "ne": np.not_equal,
        }
        if op not in comparators:
            raise ValueError(f"unknown comparison {op!r}")
        self._check(a, b)
        if a.shape != b.shape:
            raise VectorLengthError(f"shape mismatch {a.shape} vs {b.shape}")
        self._charge(f"cmp_{op}")
        return comparators[op](a, b).astype(np.float64)
