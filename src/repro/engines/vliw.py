"""VLIW instruction and packet model.

DTU cores are VLIW machines (§II-A, §IV-A): each cycle issues one *packet*
of independent instructions, one per functional slot. This module defines
the instruction set the operator compiler targets and the legality rules a
packet must satisfy:

- at most one instruction per slot class (scalar / vector / matrix / sfu /
  load / store / control),
- no intra-packet read-after-write or write-after-write hazards,
- register operands must respect the register-file bank structure (the
  register allocator in :mod:`repro.compiler.regalloc` removes bank
  conflicts; packets still *detect* them so the model can charge stalls
  when unallocated code executes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Slot(enum.Enum):
    """Functional-unit issue slots of the DTU VLIW core."""

    SCALAR = "scalar"
    VECTOR = "vector"
    MATRIX = "matrix"
    SFU = "sfu"
    LOAD = "load"
    STORE = "store"
    CONTROL = "control"


#: opcode -> (slot, issue latency in cycles)
OPCODES: dict[str, tuple[Slot, int]] = {
    # scalar
    "sadd": (Slot.SCALAR, 1),
    "smul": (Slot.SCALAR, 1),
    "smov": (Slot.SCALAR, 1),
    # vector
    "vadd": (Slot.VECTOR, 1),
    "vsub": (Slot.VECTOR, 1),
    "vmul": (Slot.VECTOR, 1),
    "vdiv": (Slot.VECTOR, 4),
    "vmax": (Slot.VECTOR, 1),
    "vmin": (Slot.VECTOR, 1),
    "vfma": (Slot.VECTOR, 1),
    "vrelu": (Slot.VECTOR, 1),
    "vcmp": (Slot.VECTOR, 1),
    "vsel": (Slot.VECTOR, 1),
    "vreduce": (Slot.VECTOR, 2),
    # matrix
    "mload": (Slot.MATRIX, 2),
    "vmm": (Slot.MATRIX, 4),
    "maccread": (Slot.MATRIX, 1),
    # sfu
    "sfu": (Slot.SFU, 4),
    # memory
    "ld": (Slot.LOAD, 2),
    "st": (Slot.STORE, 2),
    # control
    "sync": (Slot.CONTROL, 1),
    "prefetch": (Slot.CONTROL, 1),
    "nop": (Slot.CONTROL, 1),
    "halt": (Slot.CONTROL, 1),
}

#: Number of register banks per register file; same-bank operands in one
#: packet collide (§V-B register allocator motivation).
REGISTER_BANKS = 4


class IllegalPacketError(ValueError):
    """A packet violates VLIW issue rules."""


@dataclass(frozen=True)
class Instruction:
    """One VLIW operation.

    ``dest``/``srcs`` name registers ("v3", "s1", "a0"...); ``imm`` carries
    literal operands (shapes, function names, addresses).
    """

    opcode: str
    dest: str | None = None
    srcs: tuple[str, ...] = ()
    imm: tuple = ()

    def __post_init__(self) -> None:
        if self.opcode not in OPCODES:
            raise IllegalPacketError(f"unknown opcode {self.opcode!r}")

    @property
    def slot(self) -> Slot:
        return OPCODES[self.opcode][0]

    @property
    def latency(self) -> int:
        return OPCODES[self.opcode][1]

    @property
    def registers_read(self) -> tuple[str, ...]:
        return self.srcs

    @property
    def registers_written(self) -> tuple[str, ...]:
        return (self.dest,) if self.dest else ()


def register_bank(register: str) -> int:
    """Bank a register maps to: index modulo the bank count."""
    digits = "".join(ch for ch in register if ch.isdigit())
    if not digits:
        raise ValueError(f"register {register!r} has no index")
    return int(digits) % REGISTER_BANKS


@dataclass(frozen=True)
class Packet:
    """One issue group: a set of instructions dispatched together."""

    instructions: tuple[Instruction, ...]

    def __post_init__(self) -> None:
        if not self.instructions:
            raise IllegalPacketError("empty packet")
        slots = [instruction.slot for instruction in self.instructions]
        if len(slots) != len(set(slots)):
            raise IllegalPacketError(f"slot reuse within packet: {slots}")
        written: set[str] = set()
        for instruction in self.instructions:
            for register in instruction.registers_written:
                if register in written:
                    raise IllegalPacketError(
                        f"intra-packet WAW hazard on {register}"
                    )
                written.add(register)
        read = {
            register
            for instruction in self.instructions
            for register in instruction.registers_read
        }
        hazard = read & written
        if hazard:
            raise IllegalPacketError(f"intra-packet RAW hazard on {sorted(hazard)}")

    @property
    def latency(self) -> int:
        """Issue-to-complete cycles: the slowest slot in the packet."""
        return max(instruction.latency for instruction in self.instructions)

    def bank_conflicts(self) -> int:
        """Same-bank source-register collisions this packet would suffer.

        Each extra operand mapped to an already-used bank costs one stall
        cycle on hardware; the register allocator's job is to drive this
        to zero.
        """
        seen: dict[int, int] = {}
        for instruction in self.instructions:
            for register in instruction.registers_read:
                bank = register_bank(register)
                seen[bank] = seen.get(bank, 0) + 1
        return sum(count - 1 for count in seen.values() if count > 1)

    @property
    def stall_cycles(self) -> int:
        return self.bank_conflicts()


@dataclass
class Program:
    """A straight-line VLIW program: the unit the packetizer emits."""

    packets: list[Packet] = field(default_factory=list)

    @property
    def instruction_count(self) -> int:
        return sum(len(packet.instructions) for packet in self.packets)

    @property
    def cycle_count(self) -> int:
        """Cycles to drain the program, including bank-conflict stalls."""
        return sum(packet.latency + packet.stall_cycles for packet in self.packets)

    @property
    def code_bytes(self) -> int:
        """Encoded size: 16 bytes per instruction + 4 per packet header."""
        return self.instruction_count * 16 + len(self.packets) * 4
