"""Fault injection + RAS primitives for the simulated DTU 2.0."""

from repro.faults.errors import (
    CoreHangFault,
    DeadlineExceededError,
    DmaTransferFault,
    ExponentBitFlipFault,
    GroupFailedError,
    HardwareFault,
    MantissaBitFlipFault,
    PermanentFault,
    SilentCorruptionFault,
    SyncTimeoutError,
    TransientFault,
    UncorrectableEccError,
    ValueScaleFault,
)
from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.plan import FaultPlan
from repro.faults.schedule import FaultSchedule, StormPhase
from repro.faults.silent import CorruptionEvent, SilentCorruptor

__all__ = [
    "CoreHangFault",
    "CorruptionEvent",
    "DeadlineExceededError",
    "DmaTransferFault",
    "ExponentBitFlipFault",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FaultSchedule",
    "MantissaBitFlipFault",
    "SilentCorruptionFault",
    "SilentCorruptor",
    "StormPhase",
    "GroupFailedError",
    "HardwareFault",
    "PermanentFault",
    "SyncTimeoutError",
    "TransientFault",
    "UncorrectableEccError",
    "ValueScaleFault",
]
