"""Fault injection + RAS primitives for the simulated DTU 2.0."""

from repro.faults.errors import (
    CoreHangFault,
    DeadlineExceededError,
    DmaTransferFault,
    GroupFailedError,
    HardwareFault,
    PermanentFault,
    SyncTimeoutError,
    TransientFault,
    UncorrectableEccError,
)
from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.plan import FaultPlan
from repro.faults.schedule import FaultSchedule, StormPhase

__all__ = [
    "CoreHangFault",
    "DeadlineExceededError",
    "DmaTransferFault",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FaultSchedule",
    "StormPhase",
    "GroupFailedError",
    "HardwareFault",
    "PermanentFault",
    "SyncTimeoutError",
    "TransientFault",
    "UncorrectableEccError",
]
