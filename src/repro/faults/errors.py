"""Typed fault exceptions for the RAS layer.

The hierarchy mirrors how a datacenter operator triages an accelerator
fault: *transient* faults (a corrupted DMA transaction, an uncorrectable
ECC word in a data buffer, a hung core reset by the watchdog) are
recoverable by replaying the launch, so :meth:`Device.launch` retries
them with bounded backoff; *permanent* faults (a dead processing group)
are not, and the serving layer's circuit breaker routes around them
instead.
"""

from __future__ import annotations

from repro.core.errors import ReproRuntimeError


class HardwareFault(ReproRuntimeError):
    """Base class for injected hardware faults."""


class TransientFault(HardwareFault):
    """A fault that a retry of the enclosing launch can recover from."""


class PermanentFault(HardwareFault):
    """A fault that persists across retries (e.g. a dead group)."""


class DmaTransferFault(TransientFault):
    """A DMA transaction aborted, or stayed corrupt after bounded replays."""


class UncorrectableEccError(TransientFault):
    """Multi-bit ECC error in an on-chip buffer; data must be reloaded."""


class CoreHangFault(TransientFault):
    """A compute core stopped retiring packets; the watchdog reset it."""


class SyncTimeoutError(TransientFault):
    """A synchronization event was lost and recovered only by timeout."""


class GroupFailedError(PermanentFault):
    """A processing group was declared dead by the health tracker."""


class SilentCorruptionFault(HardwareFault):
    """A datapath returned wrong numbers with no error signal.

    The injection side never raises these — silent corruption is, by
    definition, invisible at the moment it happens (the launch completes,
    CRC and ECC see nothing). Instances are raised only by *detectors*:
    the ABFT-checked GEMM, golden-vector screens and dual-execution
    audits (docs/robustness.md, "Silent data corruption")."""


class MantissaBitFlipFault(SilentCorruptionFault):
    """A defective core flipped a mantissa bit of one result element."""


class ExponentBitFlipFault(SilentCorruptionFault):
    """A defective core flipped an exponent bit of one result element."""


class ValueScaleFault(SilentCorruptionFault):
    """A marginal datapath scaled a result element by a small factor."""


class DeadlineExceededError(ReproRuntimeError):
    """A launch finished (after retries) past its per-request deadline."""
