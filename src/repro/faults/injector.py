"""FaultInjector: seeded, deterministic fault draws at hardware hook points.

One injector is attached to one :class:`~repro.core.accelerator.Accelerator`
(via ``attach_faults``) and consulted at well-defined hook points:

- ``dma_outcome``    — after each DMA transaction (dma/engine.py),
- ``ecc_outcome``    — after each memory-level transfer (memory/hierarchy.py),
- ``perturb_compute``— per kernel per group (runtime/executor.py),
- ``sync_lost``      — per sync-engine operation (sync/engine.py),
- ``core_hang``      — per VLIW packet program (engines/compute_core.py).

Every hook is a no-op path when no injector is attached, so the default
simulation is bit-identical to a fault-free build. Draws come from one
``random.Random(plan.seed)`` stream; because the discrete-event simulator
is deterministic (ties break by spawn order), the same seed + plan +
workload reproduces the exact same fault sequence.

Transient perturbations (DMA replays, correctable ECC scrubs, slowdowns,
lost-sync timeouts) are realized as latency by the component itself and
recorded as *recovered*. Fatal faults (aborts, uncorrectable ECC, hangs)
are queued on the injector; the executor fast-forwards the rest of the
launch and raises the typed exception after the simulation drains, so
simulator state (ports, barriers) is never left dangling and the launch
can be retried on the same accelerator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.faults.errors import (
    CoreHangFault,
    DmaTransferFault,
    HardwareFault,
    UncorrectableEccError,
)
from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, for observability and determinism checks."""

    kind: str
    component: str
    time_ns: float
    recovered: bool
    detail: str = ""
    device: str = ""
    """Device identity the fault hit — distinguishes records across a
    fleet of accelerators sharing one observability hub."""
    detected: bool = True
    """Whether the stack *saw* this fault. Every legacy fault is detected
    by construction (CRC, ECC, watchdog, typed raise); silent corruption
    records start ``False`` and flip via :meth:`FaultInjector.mark_detected`
    when a checksum, screen or audit catches it."""
    method: str = ""
    """Detection channel that caught a silent fault (``abft``/``screen``/
    ``audit``); empty for legacy faults and for still-undetected ones."""


@dataclass
class FaultInjector:
    """Seeded fault source shared by every component of one accelerator."""

    plan: FaultPlan
    seed: int | None = None
    device: str = ""
    """Identity of the accelerator this injector is attached to; stamped
    on every record so a fleet's fault streams stay distinguishable."""
    records: list[FaultRecord] = field(default_factory=list)
    _rng: random.Random = field(init=False, repr=False)
    _fatal: list[HardwareFault] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed if self.seed is not None else self.plan.seed)

    # -- bookkeeping ---------------------------------------------------------

    def _draw(self, rate: float) -> bool:
        """One Bernoulli draw; zero rates consume no randomness."""
        return rate > 0.0 and self._rng.random() < rate

    def record(
        self,
        kind: str,
        component: str,
        time_ns: float,
        recovered: bool,
        detail: str = "",
        detected: bool = True,
        method: str = "",
    ) -> None:
        self.records.append(
            FaultRecord(
                kind=kind, component=component, time_ns=time_ns,
                recovered=recovered, detail=detail, device=self.device,
                detected=detected, method=method,
            )
        )

    def fail(
        self, fault: HardwareFault, kind: str, component: str, time_ns: float
    ) -> None:
        """Queue a fatal fault; the executor raises it after the sim drains."""
        self.record(kind, component, time_ns, recovered=False, detail=str(fault))
        self._fatal.append(fault)

    @property
    def fatal_pending(self) -> bool:
        return bool(self._fatal)

    def take_fatal(self) -> HardwareFault | None:
        """Pop the first queued fatal fault (clearing the rest) or None."""
        if not self._fatal:
            return None
        first, self._fatal = self._fatal[0], []
        return first

    def counters(self) -> dict[str, float]:
        """Aggregate fault counts, merged into ExecutionResult.counters."""
        silent = sum(not r.detected for r in self.records)
        out: dict[str, float] = {
            "faults_injected": float(len(self.records)),
            "faults_recovered": float(sum(r.recovered for r in self.records)),
            # Silent records are unrecovered but not fatal — nothing raised.
            "faults_fatal": float(
                sum(not r.recovered and r.detected for r in self.records)
            ),
        }
        if silent:
            # Key exists only when silent faults were injected, so legacy
            # counter dicts stay byte-identical without an SDC campaign.
            out["faults_silent"] = float(silent)
        for rec in self.records:
            key = f"fault.{rec.kind}"
            out[key] = out.get(key, 0.0) + 1.0
        return out

    @property
    def silent_records(self) -> list[FaultRecord]:
        """Injected-but-undetected corruption records (the SDC backlog)."""
        return [r for r in self.records if not r.detected]

    def mark_detected(self, record: FaultRecord, method: str) -> FaultRecord:
        """Flip one silent record's detection channel in place.

        Returns the updated (frozen, replaced) record; the original list
        slot is swapped so later ``silent_records`` views shrink.
        """
        from dataclasses import replace

        updated = replace(record, detected=True, method=method)
        for index, existing in enumerate(self.records):
            if existing is record:
                self.records[index] = updated
                break
        return updated

    # -- hook points -----------------------------------------------------------

    def dma_outcome(self, engine: str, label: str, time_ns: float) -> str | None:
        """Per-transaction draw: None (clean), 'corrupt', or 'abort'."""
        if self._draw(self.plan.dma_abort_rate):
            self.fail(
                DmaTransferFault(f"{engine}: aborted transaction {label!r}"),
                kind="dma.abort", component=engine, time_ns=time_ns,
            )
            return "abort"
        if self._draw(self.plan.dma_corrupt_rate):
            self.record("dma.corrupt", engine, time_ns, recovered=True, detail=label)
            return "corrupt"
        return None

    def dma_replays_exhausted(self, engine: str, label: str, time_ns: float) -> None:
        """A transaction stayed corrupt after ``dma_retry_limit`` replays."""
        self.fail(
            DmaTransferFault(
                f"{engine}: {label!r} still corrupt after "
                f"{self.plan.dma_retry_limit} replays"
            ),
            kind="dma.replay_exhausted", component=engine, time_ns=time_ns,
        )

    def ecc_outcome(self, level: str, time_ns: float) -> float:
        """Per-transfer draw; returns extra scrub latency in ns (0 if clean)."""
        if self._draw(self.plan.ecc_ue_rate):
            self.fail(
                UncorrectableEccError(f"{level}: uncorrectable ECC error"),
                kind="ecc.ue", component=level, time_ns=time_ns,
            )
            return 0.0
        if self._draw(self.plan.ecc_ce_rate):
            self.record("ecc.ce", level, time_ns, recovered=True)
            return self.plan.ecc_retry_ns
        return 0.0

    def perturb_compute(
        self, kernel: str, group: str, compute_ns: float, time_ns: float
    ) -> float:
        """Per-kernel-per-group draw; returns the perturbed compute time."""
        if self._draw(self.plan.core_hang_rate):
            self.fail(
                CoreHangFault(f"{group}: hung in {kernel!r}; watchdog reset"),
                kind="core.hang", component=group, time_ns=time_ns,
            )
            return max(compute_ns, self.plan.watchdog_timeout_ns)
        if self._draw(self.plan.core_slowdown_rate):
            self.record("core.slowdown", group, time_ns, recovered=True, detail=kernel)
            return compute_ns * self.plan.core_slowdown_factor
        return compute_ns

    def sync_lost(self, component: str, label: str, time_ns: float) -> bool:
        """Per-operation draw: was this sync event lost (timeout recovery)?"""
        if self._draw(self.plan.sync_loss_rate):
            self.record("sync.lost", component, time_ns, recovered=True, detail=label)
            return True
        return False

    def core_hang(self, component: str, time_ns: float = 0.0) -> bool:
        """Functional-core hook: should this program hang (raises upstream)?"""
        if self._draw(self.plan.core_hang_rate):
            self.record("core.hang", component, time_ns, recovered=False)
            return True
        return False

    # -- silent corruption (never raises, never perturbs timing) --------------

    def _silent_core(self) -> int:
        """Attribute one silent fault to a core (plan-pinned or drawn)."""
        cores = self.plan.sdc_cores
        if cores:
            return cores[self._rng.randrange(len(cores))] if len(cores) > 1 else cores[0]
        return self._rng.randrange(4)

    def _silent(self, rate: float, kind: str, component: str, time_ns: float, detail: str) -> bool:
        if not self._draw(rate):
            return False
        core = self._silent_core()
        self.record(
            kind, component, time_ns, recovered=False,
            detail=f"core{core}: {self.plan.sdc_mode} {detail}".rstrip(),
            detected=False,
        )
        return True

    def silent_compute(self, kernel: str, group: str, time_ns: float) -> bool:
        """Per-kernel draw: did a defective core silently corrupt this
        kernel's output? Timing is untouched and nothing raises — the
        ``detected=False`` record is the only trace until a screen,
        checksum or audit catches it."""
        return self._silent(
            self.plan.sdc_gemm_rate, "sdc.compute", group, time_ns, kernel
        )

    def silent_dma(self, engine: str, label: str, time_ns: float) -> bool:
        """Per-transaction draw: corruption the DMA CRC *missed*."""
        return self._silent(
            self.plan.sdc_dma_rate, "sdc.dma", engine, time_ns, label
        )

    def silent_sparse(self, component: str, label: str, time_ns: float) -> bool:
        """Per-decompression draw: the sparse codec emitted wrong values."""
        return self._silent(
            self.plan.sdc_sparse_rate, "sdc.sparse", component, time_ns, label
        )
