"""FaultPlan: the declarative description of a fault-injection campaign.

A plan is pure configuration — per-component fault *rates* plus the
latency penalties recovery costs — and carries the seed that makes a
campaign reproducible: the same plan and seed always produce the same
fault sequence against the same workload (the simulator itself is
deterministic, so draw order is deterministic too).

Rates are per *event* at the component's natural granularity:

- ``dma_corrupt_rate`` / ``dma_abort_rate`` — per DMA transaction,
- ``ecc_ce_rate`` / ``ecc_ue_rate`` — per memory-level transfer,
- ``core_hang_rate`` / ``core_slowdown_rate`` — per kernel per group,
- ``sync_loss_rate`` — per synchronization-engine operation.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class FaultPlan:
    """Per-component fault rates + recovery penalties for one campaign."""

    seed: int = 0

    # -- rates (probability per event, in [0, 1]) ---------------------------
    dma_corrupt_rate: float = 0.0
    """CRC-detected corruption of one DMA transaction -> replay."""
    dma_abort_rate: float = 0.0
    """DMA engine abort mid-transaction -> launch fails (retryable)."""
    ecc_ce_rate: float = 0.0
    """Correctable (single-bit) ECC event -> scrub + retry latency."""
    ecc_ue_rate: float = 0.0
    """Uncorrectable (multi-bit) ECC event -> launch fails (retryable)."""
    core_hang_rate: float = 0.0
    """Core stops retiring -> watchdog reset; launch fails (retryable)."""
    core_slowdown_rate: float = 0.0
    """Thermal/voltage derating of one kernel on one group."""
    sync_loss_rate: float = 0.0
    """Lost sync event -> recovered by the engine's timeout path."""

    # -- silent data corruption (never raises; see repro.faults.silent) -----
    sdc_gemm_rate: float = 0.0
    """Silent corruption of one GEMM/compute result — wrong numbers, no
    error signal. Per kernel per group on the timed path, per ``gemm``
    call on the functional :class:`~repro.engines.matrix.MatrixEngine`."""
    sdc_dma_rate: float = 0.0
    """Silent corruption of one DMA transaction's payload that the CRC
    *missed* (contrast ``dma_corrupt_rate``, which is CRC-detected)."""
    sdc_sparse_rate: float = 0.0
    """Silent corruption of one sparse-codec decompression."""

    # -- silent-corruption shape --------------------------------------------
    sdc_mode: str = "mantissa"
    """How values are corrupted: ``mantissa`` / ``exponent`` bit flips or
    ``scale`` (multiply by ``sdc_scale_factor``)."""
    sdc_scale_factor: float = 1.001953125
    """Multiplier the ``scale`` mode applies (1 + 2**-9 by default: a
    marginal-datapath error well above checksum rounding noise)."""
    sdc_cores: tuple[int, ...] = ()
    """Defective core indices corruption is attributed to; empty means
    any core (drawn uniformly) — per-core attribution feeds the fleet's
    repeat-offender containment."""

    # -- recovery penalties --------------------------------------------------
    dma_retry_limit: int = 3
    """Replays before a still-corrupt transaction is declared failed."""
    ecc_retry_ns: float = 600.0
    """Scrub-and-retry latency of one correctable ECC event."""
    core_slowdown_factor: float = 2.0
    """Compute-time multiplier of a derated kernel."""
    watchdog_timeout_ns: float = 200_000.0
    """Time a hung core burns before the watchdog resets it."""
    sync_timeout_ns: float = 5_000.0
    """Recovery latency of a lost synchronization event."""

    def __post_init__(self) -> None:
        for spec in fields(self):
            if not spec.name.endswith("_rate"):
                continue
            rate = getattr(self, spec.name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{spec.name} must be in [0, 1], got {rate}")
        if self.dma_retry_limit < 0:
            raise ValueError(f"dma_retry_limit must be >= 0, got {self.dma_retry_limit}")
        for name in ("ecc_retry_ns", "watchdog_timeout_ns", "sync_timeout_ns"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.core_slowdown_factor < 1.0:
            raise ValueError(
                f"core_slowdown_factor must be >= 1, got {self.core_slowdown_factor}"
            )
        if self.sdc_mode not in ("mantissa", "exponent", "scale"):
            raise ValueError(
                f"sdc_mode must be mantissa/exponent/scale, got {self.sdc_mode!r}"
            )
        if self.sdc_scale_factor <= 0.0 or self.sdc_scale_factor == 1.0:
            raise ValueError(
                f"sdc_scale_factor must be positive and != 1, "
                f"got {self.sdc_scale_factor}"
            )
        if any(core < 0 for core in self.sdc_cores):
            raise ValueError(f"sdc_cores must be >= 0, got {self.sdc_cores}")

    @property
    def enabled(self) -> bool:
        """True when any fault rate is non-zero."""
        return any(
            getattr(self, spec.name) > 0.0
            for spec in fields(self)
            if spec.name.endswith("_rate")
        )

    # -- aggregate views the serving layer plans with -----------------------

    @property
    def transient_event_rate(self) -> float:
        """Per-event probability of a retry-recoverable perturbation."""
        return 1.0 - (1.0 - self.dma_corrupt_rate) * (1.0 - self.ecc_ce_rate)

    @property
    def fatal_event_rate(self) -> float:
        """Per-event probability a launch must be replayed from scratch."""
        survive = (
            (1.0 - self.dma_abort_rate)
            * (1.0 - self.ecc_ue_rate)
            * (1.0 - self.core_hang_rate)
        )
        return 1.0 - survive

    @property
    def silent_event_rate(self) -> float:
        """Per-event probability of an *undetected* wrong result.

        Silent corruption contributes to neither transient nor fatal
        rates — nothing raises, nothing retries — which is exactly the
        threat: the serving layer would return the corrupted answer
        unless a detection layer (ABFT, screens, audits) is attached.
        """
        survive = (
            (1.0 - self.sdc_gemm_rate)
            * (1.0 - self.sdc_dma_rate)
            * (1.0 - self.sdc_sparse_rate)
        )
        return 1.0 - survive
