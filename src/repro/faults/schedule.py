"""FaultSchedule: time-varying, per-device composition of fault plans.

A :class:`~repro.faults.plan.FaultPlan` describes one *stationary* fault
campaign. Chaos engineering needs more shape than that: storms that ramp
up, bursts pinned to a window, a device killed outright for half a second,
correlated outages hitting several boards at once. A
:class:`FaultSchedule` composes a background plan with a list of
:class:`StormPhase` windows and answers, for any (time, device) pair, the
*effective* plan in force — which the fleet layer samples per request and
attaches to repair-probe launches.

Everything here is pure configuration: no randomness, no clocks. Draws
against the effective rates happen in the consumer (fleet / server) from
seed-derived streams (see :mod:`repro.seeding`), which keeps whole chaos
scenarios byte-for-byte reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.core.errors import ReproRuntimeError
from repro.faults.plan import FaultPlan

__all__ = ["FaultSchedule", "StormPhase"]

_RATE_FIELDS = tuple(
    spec.name for spec in fields(FaultPlan) if spec.name.endswith("_rate")
)


@dataclass(frozen=True)
class StormPhase:
    """One windowed fault storm: a plan active on some devices for a while."""

    start_s: float
    """Window start, in trace (fleet) seconds."""
    end_s: float
    """Window end; the phase is active on ``start_s <= t < end_s``."""
    plan: FaultPlan
    """Rates injected while the phase is active (penalties are ignored —
    the schedule's base plan supplies recovery costs)."""
    devices: tuple[int, ...] | None = None
    """Replica indices the storm hits; ``None`` means every device."""
    ramp: bool = False
    """Linearly ramp rates from zero at ``start_s`` to full at ``end_s``."""

    def __post_init__(self) -> None:
        if self.start_s < 0.0:
            raise ReproRuntimeError(
                f"storm start must be >= 0, got {self.start_s}"
            )
        if self.end_s <= self.start_s:
            raise ReproRuntimeError(
                f"storm window is empty: [{self.start_s}, {self.end_s})"
            )

    @classmethod
    def kill(
        cls, device: int, at_s: float, duration_s: float
    ) -> "StormPhase":
        """A hard device kill: every launch on ``device`` aborts fatally."""
        return cls(
            start_s=at_s,
            end_s=at_s + duration_s,
            plan=FaultPlan(dma_abort_rate=1.0),
            devices=(device,),
        )

    def active(self, time_ns: float, device: int) -> bool:
        if self.devices is not None and device not in self.devices:
            return False
        return self.start_s * 1e9 <= time_ns < self.end_s * 1e9

    def intensity(self, time_ns: float) -> float:
        """Rate multiplier in [0, 1]: ramps grow linearly over the window."""
        if not self.ramp:
            return 1.0
        span_ns = (self.end_s - self.start_s) * 1e9
        return min(1.0, max(0.0, (time_ns - self.start_s * 1e9) / span_ns))


@dataclass(frozen=True)
class FaultSchedule:
    """Background plan + storm windows -> effective plan per (time, device)."""

    base: FaultPlan = FaultPlan()
    phases: tuple[StormPhase, ...] = ()

    def plan_at(self, time_ns: float, device: int) -> FaultPlan:
        """The effective :class:`FaultPlan` for ``device`` at ``time_ns``.

        Rates compose as independent failure sources — the survival
        probabilities multiply: ``1 - (1-base) * prod(1 - storm*ramp)`` —
        so stacking storms never pushes a rate past 1. Recovery penalties
        (retry latencies, watchdog timeouts) come from the base plan.
        """
        live = [
            phase for phase in self.phases if phase.active(time_ns, device)
        ]
        if not live:
            return self.base
        overrides: dict[str, float] = {}
        for name in _RATE_FIELDS:
            survive = 1.0 - getattr(self.base, name)
            for phase in live:
                survive *= 1.0 - getattr(phase.plan, name) * phase.intensity(
                    time_ns
                )
            overrides[name] = 1.0 - survive
        return replace(self.base, **overrides)

    def rates_at(self, time_ns: float, device: int) -> tuple[float, float]:
        """Effective ``(transient_event_rate, fatal_event_rate)`` per event."""
        plan = self.plan_at(time_ns, device)
        return plan.transient_event_rate, plan.fatal_event_rate

    def silent_rate_at(self, time_ns: float, device: int) -> float:
        """Effective silent-corruption rate per event (0 on a quiet path).

        Kept separate from :meth:`rates_at` so existing consumers draw the
        same stream positions: a schedule with no silent rates never calls
        this into a randomness-consuming branch.
        """
        if not self.any_silent:
            return 0.0
        return self.plan_at(time_ns, device).silent_event_rate

    @property
    def any_silent(self) -> bool:
        """True when any plan (background or storm) can silently corrupt."""
        return self.base.silent_event_rate > 0.0 or any(
            phase.plan.silent_event_rate > 0.0 for phase in self.phases
        )

    @property
    def quiet(self) -> bool:
        """True when nothing (background or storm) ever injects a fault."""
        return not self.base.enabled and not any(
            phase.plan.enabled for phase in self.phases
        )

    def horizon_s(self) -> float:
        """Last storm end — scenarios should outlast this to see recovery."""
        return max((phase.end_s for phase in self.phases), default=0.0)
