"""Silent-data-corruption injection: wrong numbers, no error signal.

Real fleets are plagued by *defective cores* and marginal datapaths that
return incorrect results without raising anything — no CRC mismatch, no
ECC event, no watchdog. This module injects exactly that failure mode
into the functional engines:

- :class:`SilentCorruptor` flips a mantissa or exponent bit (or scales a
  value) in one element of a result array — a GEMM output
  (:meth:`~repro.engines.matrix.MatrixEngine.gemm`), a DMA payload, or a
  sparse-codec decompression — *after* the computation completes, so the
  corrupted launch is indistinguishable from a clean one;
- every corruption is seeded (one ``random.Random`` per corruptor),
  per-device and per-core-attributable, and recorded through the
  attached :class:`~repro.faults.injector.FaultInjector` as a
  ``detected=False`` :class:`~repro.faults.injector.FaultRecord`;
- nothing here ever raises: the typed
  :class:`~repro.faults.errors.SilentCorruptionFault` family is carried
  on :class:`CorruptionEvent` for *detectors* (the ABFT-checked GEMM in
  :mod:`repro.engines.abft`, fleet screens and audits in
  :mod:`repro.serving`) to raise when a checksum or digest disagrees.

Detached contract: a corruptor is opt-in. With none attached (or with
every ``sdc_*_rate`` zero — zero rates consume no randomness), every
consumer is bit-identical to a build without this module.

Injected errors are sized to be *honestly detectable*: mantissa flips
target the high-order mantissa bits (relative error >= ~2^-12), so they
sit well above the checksum reassociation noise the ABFT tolerance must
admit. Sub-tolerance ulp flips are out of scope of the detection pledge
and are documented as such (docs/robustness.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import random

import numpy as np

from repro.faults.errors import (
    ExponentBitFlipFault,
    MantissaBitFlipFault,
    SilentCorruptionFault,
    ValueScaleFault,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan

__all__ = ["CorruptionEvent", "SilentCorruptor"]

#: Lowest mantissa bit the ``mantissa`` mode will flip (of float64's 52):
#: bits 40..51 give relative errors between ~2^-12 and ~2^-1.
_MANTISSA_LOW_BIT = 40
#: Exponent bits eligible for the ``exponent`` mode (low exponent bits,
#: so values scale by 2^±small instead of overflowing to inf).
_EXPONENT_BITS = (52, 53, 54)


@dataclass(frozen=True)
class CorruptionEvent:
    """One silent corruption: where it landed and what it did."""

    site: str
    """Injection site: ``gemm`` / ``dma`` / ``sparse``."""
    mode: str
    core: int
    """Core the corruption is attributed to (defective-core containment
    keys on this)."""
    index: int
    """Flat index of the corrupted element."""
    original: float
    corrupted: float
    fault: SilentCorruptionFault
    """The typed fault a detector raises when it catches this event."""


_FAULT_TYPES = {
    "mantissa": MantissaBitFlipFault,
    "exponent": ExponentBitFlipFault,
    "scale": ValueScaleFault,
}


@dataclass
class SilentCorruptor:
    """Seeded source of silent numeric corruption for one device.

    Attach one to a :class:`~repro.engines.matrix.MatrixEngine` (its
    ``corruptor`` field) or pass it to the sparse codec's ``decompress``.
    Rates come from the same :class:`~repro.faults.plan.FaultPlan` the
    rest of a campaign uses (``sdc_gemm_rate`` / ``sdc_dma_rate`` /
    ``sdc_sparse_rate``); records flow into ``injector`` when one is
    attached so fleet telemetry sees the ``detected=False`` channel.
    """

    plan: FaultPlan
    seed: int = 0
    device: str = ""
    injector: FaultInjector | None = None
    events: list[CorruptionEvent] = field(default_factory=list)
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # -- bookkeeping ---------------------------------------------------------

    @property
    def undetected(self) -> list[CorruptionEvent]:
        """Events no detector has claimed yet."""
        if self.injector is None:
            return list(self.events)
        pending = {
            record.detail for record in self.injector.silent_records
        }
        return [
            event for event in self.events
            if self._detail(event) in pending
        ]

    def mark_detected(self, event: CorruptionEvent, method: str) -> None:
        """Report a detector catch back to the injector's record ledger."""
        if self.injector is None:
            return
        detail = self._detail(event)
        for record in self.injector.silent_records:
            if record.detail == detail:
                self.injector.mark_detected(record, method)
                return

    @staticmethod
    def _detail(event: CorruptionEvent) -> str:
        return (
            f"core{event.core}: {event.mode} {event.site}[{event.index}] "
            f"{event.original!r} -> {event.corrupted!r}"
        )

    # -- injection sites -----------------------------------------------------

    def corrupt_gemm(self, result: np.ndarray, time_ns: float = 0.0) -> np.ndarray:
        """Maybe corrupt one element of a GEMM result (in place)."""
        return self._maybe_corrupt(result, self.plan.sdc_gemm_rate, "gemm", time_ns)

    def corrupt_dma(self, payload: np.ndarray, time_ns: float = 0.0) -> np.ndarray:
        """Maybe corrupt one element of a DMA-transferred payload."""
        return self._maybe_corrupt(payload, self.plan.sdc_dma_rate, "dma", time_ns)

    def corrupt_sparse(self, dense: np.ndarray, time_ns: float = 0.0) -> np.ndarray:
        """Maybe corrupt one element of a decompressed dense tensor."""
        return self._maybe_corrupt(dense, self.plan.sdc_sparse_rate, "sparse", time_ns)

    # -- mechanics -----------------------------------------------------------

    def _maybe_corrupt(
        self, array: np.ndarray, rate: float, site: str, time_ns: float
    ) -> np.ndarray:
        # Zero rates consume no randomness: the detached path draws
        # nothing and returns the caller's array object untouched.
        if rate <= 0.0 or self._rng.random() >= rate:
            return array
        flat = array.reshape(-1)
        nonzero = np.flatnonzero(flat)
        if nonzero.size == 0:
            # An all-zero result offers nothing detectable to corrupt
            # above tolerance; the draw fired but no event lands.
            return array
        index = int(nonzero[self._rng.randrange(nonzero.size)])
        original = float(flat[index])
        mode = self.plan.sdc_mode
        corrupted = self._apply(original, mode)
        flat[index] = corrupted
        core = self._core()
        fault_type = _FAULT_TYPES[mode]
        event = CorruptionEvent(
            site=site, mode=mode, core=core, index=index,
            original=original, corrupted=corrupted,
            fault=fault_type(
                f"{self.device or 'device'} core{core}: silent {mode} "
                f"corruption in {site}[{index}]: {original!r} -> {corrupted!r}"
            ),
        )
        self.events.append(event)
        if self.injector is not None:
            self.injector.record(
                f"sdc.{site}", site, time_ns, recovered=False,
                detail=self._detail(event), detected=False,
            )
        return array

    def _core(self) -> int:
        cores = self.plan.sdc_cores
        if cores:
            return cores[self._rng.randrange(len(cores))] if len(cores) > 1 else cores[0]
        return self._rng.randrange(4)

    def _apply(self, value: float, mode: str) -> float:
        if mode == "scale":
            return value * self.plan.sdc_scale_factor
        bits = int(np.float64(value).view(np.uint64))
        if mode == "mantissa":
            bit = self._rng.randrange(_MANTISSA_LOW_BIT, 52)
        else:  # exponent
            bit = _EXPONENT_BITS[self._rng.randrange(len(_EXPONENT_BITS))]
        flipped = np.uint64(bits ^ (1 << bit)).view(np.float64)
        result = float(flipped)
        if not np.isfinite(result) or result == value:
            # Keep injected errors finite and real: fall back to scale.
            return value * self.plan.sdc_scale_factor
        return result
