"""Graph compiler front end ("TopsInference"): IR, import, passes, fusion."""

from repro.graph.builder import GraphBuilder
from repro.graph.fusion import FusionReport, fuse_operators, fused_members
from repro.graph.ir import Graph, GraphError, Node, TensorType
from repro.graph.onnx_like import export_graph, import_graph, load, save
from repro.graph.ops import OpError, infer_node, node_flops, spec
from repro.graph.reference import EvaluationError, ReferenceExecutor, materialize_weight
from repro.graph.passes import PassManager, dead_code_elimination, eliminate_identities, optimize
from repro.graph.shape_inference import bind_shapes, dynamic_symbols, infer_shapes

__all__ = [
    "FusionReport", "Graph", "GraphBuilder", "GraphError", "Node", "OpError",
    "PassManager", "TensorType", "bind_shapes", "dead_code_elimination",
    "dynamic_symbols", "eliminate_identities", "EvaluationError",
    "ReferenceExecutor", "materialize_weight", "export_graph", "fuse_operators",
    "fused_members", "import_graph", "infer_node", "infer_shapes", "load",
    "node_flops", "optimize", "save", "spec",
]
