"""Graph compiler front end ("TopsInference"): IR, import, passes, fusion."""

from repro.graph.builder import GraphBuilder
from repro.graph.equivalence import (
    FusionGuardReport,
    GroupCheck,
    check_fused_group,
    verify_fused_graph,
)
from repro.graph.fusion import FusionReport, fuse_operators, fused_members
from repro.graph.ir import (
    DuplicateNodeError,
    DuplicateProducerError,
    Graph,
    GraphCycleError,
    GraphError,
    GraphValidationError,
    Node,
    SignatureError,
    TensorRefError,
    TensorType,
    UndefinedTensorError,
    UnproducedOutputError,
    UntypedTensorError,
)
from repro.graph.onnx_like import (
    FormatVersionError,
    export_graph,
    import_graph,
    load,
    save,
)
from repro.graph.ops import OpError, infer_node, node_flops, spec
from repro.graph.reference import (
    EvaluationError,
    NumericsError,
    ReferenceExecutor,
    materialize_weight,
)
from repro.graph.passes import PassManager, dead_code_elimination, eliminate_identities, optimize
from repro.graph.shape_inference import bind_shapes, dynamic_symbols, infer_shapes

__all__ = [
    "DuplicateNodeError", "DuplicateProducerError", "FormatVersionError",
    "FusionGuardReport", "FusionReport", "Graph", "GraphBuilder",
    "GraphCycleError", "GraphError", "GraphValidationError", "GroupCheck",
    "Node", "NumericsError", "OpError", "PassManager", "SignatureError",
    "TensorRefError", "TensorType", "UndefinedTensorError",
    "UnproducedOutputError", "UntypedTensorError", "bind_shapes",
    "check_fused_group", "dead_code_elimination", "dynamic_symbols",
    "eliminate_identities", "EvaluationError", "ReferenceExecutor",
    "materialize_weight", "export_graph", "fuse_operators", "fused_members",
    "import_graph", "infer_node", "infer_shapes", "load", "node_flops",
    "optimize", "save", "spec", "verify_fused_graph",
]
