"""Fluent construction API for graphs — the importer's and model zoo's tool.

:class:`GraphBuilder` names tensors automatically, declares weight
initializers with their shapes, and finishes with shape inference, so model
definitions read like framework code:

>>> b = GraphBuilder("tiny")
>>> x = b.input("x", (1, 3, 32, 32))
>>> y = b.conv2d(x, out_channels=8, kernel=3, pad=1)
>>> y = b.relu(y)
>>> g = b.finish(outputs=[y])
>>> g.tensor_type(y).shape
(1, 8, 32, 32)
"""

from __future__ import annotations

import itertools

from repro.core.datatypes import DType
from repro.graph.ir import Graph, GraphError, Node, Shape, TensorType
from repro.graph.shape_inference import infer_shapes


class GraphBuilder:
    """Accumulates nodes and tensors for one graph."""

    def __init__(self, name: str, dtype: DType = DType.FP32) -> None:
        self.graph = Graph(name=name)
        self.dtype = dtype
        self._counters = itertools.count()
        self._op_counts: dict[str, int] = {}

    # -- naming -----------------------------------------------------------

    def _fresh(self, op_type: str) -> str:
        count = self._op_counts.get(op_type, 0)
        self._op_counts[op_type] = count + 1
        return f"{op_type}_{count}"

    # -- declarations --------------------------------------------------------

    def input(self, name: str, shape: Shape, dtype: DType | None = None) -> str:
        if name in self.graph.tensor_types:
            raise GraphError(f"tensor {name!r} already declared")
        self.graph.inputs.append(name)
        self.graph.tensor_types[name] = TensorType(tuple(shape), dtype or self.dtype)
        return name

    def weight(self, name: str, shape: Shape, dtype: DType | None = None) -> str:
        if name in self.graph.tensor_types:
            raise GraphError(f"tensor {name!r} already declared")
        self.graph.initializers.add(name)
        self.graph.tensor_types[name] = TensorType(tuple(shape), dtype or self.dtype)
        return name

    def node(
        self,
        op_type: str,
        inputs: list[str],
        attrs: dict | None = None,
        name: str | None = None,
        num_outputs: int = 1,
    ) -> str | tuple[str, ...]:
        """Append a node; returns its output tensor name(s)."""
        node_name = name or self._fresh(op_type)
        outputs = tuple(
            f"{node_name}.out{index}" if num_outputs > 1 else f"{node_name}.out"
            for index in range(num_outputs)
        )
        node = Node(
            name=node_name,
            op_type=op_type,
            inputs=list(inputs),
            outputs=list(outputs),
            attrs=attrs or {},
        )
        self.graph.nodes.append(node)
        # Eager shape inference lets the next layer query this one's shape
        # (e.g. conv2d reads its input's channel count to size the weight).
        input_types = [self.graph.tensor_type(tensor) for tensor in inputs]
        from repro.graph.ops import infer_node

        for tensor, tensor_type in zip(outputs, infer_node(node, input_types)):
            self.graph.tensor_types[tensor] = tensor_type
        return outputs if num_outputs > 1 else outputs[0]

    # -- common layers (thin sugar over .node) -------------------------------

    def conv2d(
        self,
        data: str,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        groups: int = 1,
        bias: bool = True,
        name: str | None = None,
    ) -> str:
        node_name = name or self._fresh("conv2d")
        in_channels = self.graph.tensor_type(data).shape[1]
        if isinstance(in_channels, str):
            raise GraphError("conv2d needs a static channel dim")
        weight = self.weight(
            f"{node_name}.w", (out_channels, in_channels // groups, kernel, kernel)
        )
        inputs = [data, weight]
        if bias:
            inputs.append(self.weight(f"{node_name}.b", (out_channels,)))
        return self.node(
            "conv2d",
            inputs,
            attrs={"stride": stride, "pad": pad, "groups": groups},
            name=node_name,
        )

    def conv1d(
        self,
        data: str,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        bias: bool = True,
        name: str | None = None,
    ) -> str:
        node_name = name or self._fresh("conv1d")
        in_channels = self.graph.tensor_type(data).shape[1]
        weight = self.weight(f"{node_name}.w", (out_channels, in_channels, kernel))
        inputs = [data, weight]
        if bias:
            inputs.append(self.weight(f"{node_name}.b", (out_channels,)))
        return self.node(
            "conv1d", inputs, attrs={"stride": stride, "pad": pad}, name=node_name
        )

    def dense(
        self, data: str, out_features: int, bias: bool = True, name: str | None = None
    ) -> str:
        node_name = name or self._fresh("dense")
        in_features = self.graph.tensor_type(data).shape[-1]
        if isinstance(in_features, str):
            raise GraphError("dense needs a static feature dim")
        weight = self.weight(f"{node_name}.w", (out_features, in_features))
        inputs = [data, weight]
        if bias:
            inputs.append(self.weight(f"{node_name}.b", (out_features,)))
        return self.node("dense", inputs, name=node_name)

    def batch_norm(self, data: str, name: str | None = None) -> str:
        node_name = name or self._fresh("batch_norm")
        channels = self.graph.tensor_type(data).shape[1]
        params = [
            self.weight(f"{node_name}.{suffix}", (channels,))
            for suffix in ("scale", "shift", "mean", "var")
        ]
        return self.node("batch_norm", [data] + params, name=node_name)

    def layer_norm(self, data: str, name: str | None = None) -> str:
        node_name = name or self._fresh("layer_norm")
        features = self.graph.tensor_type(data).shape[-1]
        params = [
            self.weight(f"{node_name}.{suffix}", (features,))
            for suffix in ("scale", "shift")
        ]
        return self.node("layer_norm", [data] + params, name=node_name)

    def __getattr__(self, op_type: str):
        """Unary/binary ops fall through to plain nodes: ``b.relu(x)``."""
        simple = {
            "relu", "leaky_relu", "sigmoid", "tanh", "gelu", "swish",
            "softplus", "erf", "exp", "mish", "identity", "sqrt", "neg",
            "softmax", "flatten", "glu",
            "add", "sub", "mul", "div", "maximum", "minimum", "pow",
            "matmul",
        }
        if op_type not in simple:
            raise AttributeError(op_type)

        def _make(*inputs: str, name: str | None = None, **attrs) -> str:
            return self.node(op_type, list(inputs), attrs=attrs or None, name=name)

        return _make

    def max_pool(self, data: str, kernel: int, stride: int | None = None, pad: int = 0) -> str:
        return self.node(
            "max_pool", [data], attrs={"kernel": kernel, "stride": stride or kernel, "pad": pad}
        )

    def avg_pool(self, data: str, kernel: int, stride: int | None = None, pad: int = 0) -> str:
        return self.node(
            "avg_pool", [data], attrs={"kernel": kernel, "stride": stride or kernel, "pad": pad}
        )

    def global_avg_pool(self, data: str) -> str:
        return self.node("global_avg_pool", [data])

    def upsample(self, data: str, scale: int = 2) -> str:
        return self.node("upsample", [data], attrs={"scale": scale})

    def pixel_shuffle(self, data: str, scale: int = 2) -> str:
        return self.node("pixel_shuffle", [data], attrs={"scale": scale})

    def concat(self, inputs: list[str], axis: int) -> str:
        return self.node("concat", inputs, attrs={"axis": axis})

    def reshape(self, data: str, shape: Shape) -> str:
        return self.node("reshape", [data], attrs={"shape": tuple(shape)})

    def transpose(self, data: str, axes: tuple[int, ...]) -> str:
        return self.node("transpose", [data], attrs={"axes": tuple(axes)})

    def embedding(self, indices: str, vocab: int, features: int, name: str | None = None) -> str:
        node_name = name or self._fresh("embedding")
        table = self.weight(f"{node_name}.table", (vocab, features))
        return self.node("embedding", [indices, table], name=node_name)

    def top_k(self, data: str, k: int) -> tuple[str, str]:
        return self.node("top_k", [data], attrs={"k": k}, num_outputs=2)

    def prelu(self, data: str, name: str | None = None) -> str:
        node_name = name or self._fresh("prelu")
        channels = self.graph.tensor_type(data).shape[1]
        slope = self.weight(f"{node_name}.slope", (channels,))
        return self.node("prelu", [data, slope], name=node_name)

    def clip(self, data: str, min: float = 0.0, max: float = 6.0) -> str:
        return self.node("clip", [data], attrs={"min": min, "max": max})

    def split(self, data: str, sections: list[int], axis: int) -> tuple[str, ...]:
        return self.node(
            "split", [data],
            attrs={"axis": axis, "sections": list(sections)},
            num_outputs=len(sections),
        )

    # -- composite layers ----------------------------------------------------

    def multi_head_attention(
        self, data: str, heads: int, name: str | None = None
    ) -> str:
        """Standard MHA block expanded into primitive nodes.

        Keeps individual matmul/softmax nodes visible so the fusion pass can
        find and fuse the attention pattern, as TopsInference does.
        """
        prefix = name or self._fresh("mha")
        batch, seq, features = self.graph.tensor_type(data).shape
        if isinstance(features, str):
            raise GraphError("attention needs a static feature dim")
        head_dim = features // heads
        query = self.dense(data, features, name=f"{prefix}.q")
        key = self.dense(data, features, name=f"{prefix}.k")
        value = self.dense(data, features, name=f"{prefix}.v")

        def _split(tensor: str, tag: str) -> str:
            reshaped = self.reshape(tensor, (batch, seq, heads, head_dim))
            return self.transpose(reshaped, (0, 2, 1, 3))

        query_heads = _split(query, "q")
        key_heads = _split(key, "k")
        value_heads = _split(value, "v")
        key_t = self.transpose(key_heads, (0, 1, 3, 2))
        scores = self.node("matmul", [query_heads, key_t], name=f"{prefix}.scores")
        scaled = self.node(
            "mul",
            [scores, self.weight(f"{prefix}.scale", (1,))],
            name=f"{prefix}.scale_mul",
        )
        probabilities = self.node("softmax", [scaled], name=f"{prefix}.softmax")
        context = self.node(
            "matmul", [probabilities, value_heads], name=f"{prefix}.context"
        )
        merged = self.transpose(context, (0, 2, 1, 3))
        merged = self.reshape(merged, (batch, seq, features))
        return self.dense(merged, features, name=f"{prefix}.proj")

    # -- finalization ----------------------------------------------------------

    def finish(self, outputs: list[str]) -> Graph:
        self.graph.outputs = list(outputs)
        return infer_shapes(self.graph)
