"""Fusion equivalence guard: replay fused groups against their members.

The expert-rule fuser (:mod:`repro.graph.fusion`) rewrites graphs
aggressively, and a production compiler must not ship a rewrite that
changes numerics. This module gives :func:`~repro.compiler.pipeline.compile_graph`
a safety net mirroring the paper's accuracy-verification workflow ("We use
CPU's DNN inference results as the reference", §VI-A):

for every fused node in the optimized graph, the guard

1. builds two views sharing tensor types and initializers — the single
   fused node (executed unflattened through
   :meth:`~repro.graph.reference.ReferenceExecutor._op_fused`) and its
   member subgraph (the pre-fusion ops),
2. evaluates both on identical seeded inputs and weights,
3. compares outputs with a tight tolerance.

A mismatch marks the compile for **fallback**: the caller recompiles the
pristine graph with fusion disabled instead of shipping silently-wrong
kernels, and observability counters (``fusion_guard_checks_total``,
``fusion_guard_fallbacks_total``) record the event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.fusion import fused_members
from repro.graph.ir import Graph, Node
from repro.graph.reference import ReferenceExecutor
from repro.seeding import derive_rng

#: Comparison tolerances. Default fused semantics replay members exactly,
#: so any honest fused kernel should match to float64 round-off; the loose
#: absolute term absorbs catastrophic-cancellation noise near zero.
RTOL = 1e-9
ATOL = 1e-12


@dataclass(frozen=True)
class GroupCheck:
    """Outcome of verifying one fused group."""

    node: str
    anchor: str
    members: int
    result: str
    """``"ok"``, ``"mismatch"`` or ``"skipped"`` (symbolic/missing types)."""
    max_abs_error: float = 0.0
    detail: str = ""


@dataclass
class FusionGuardReport:
    """All group checks for one optimized graph."""

    graph: str
    checks: list[GroupCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.result != "mismatch" for check in self.checks)

    @property
    def mismatches(self) -> list[GroupCheck]:
        return [c for c in self.checks if c.result == "mismatch"]

    def to_dict(self) -> dict:
        return {
            "graph": self.graph,
            "ok": self.ok,
            "checks": [
                {
                    "node": c.node,
                    "anchor": c.anchor,
                    "members": c.members,
                    "result": c.result,
                    "max_abs_error": c.max_abs_error,
                    "detail": c.detail,
                }
                for c in self.checks
            ],
        }


def _group_views(graph: Graph, fused: Node) -> tuple[Graph, Graph] | None:
    """(fused-node view, member-subgraph view), or None if untypeable.

    Both views share the parent's tensor types and initializer set, so the
    reference executors materialize identical weights.
    """
    members = fused_members(fused)
    needed = set(fused.inputs) | set(fused.outputs)
    for member in members:
        needed.update(member.inputs, member.outputs)
    for tensor in needed:
        tensor_type = graph.tensor_types.get(tensor)
        if tensor_type is None or not tensor_type.is_static:
            return None
    types = {name: graph.tensor_types[name] for name in needed}
    weights = {name for name in needed if name in graph.initializers}
    data_inputs = [name for name in fused.inputs if name not in weights]
    fused_view = Graph(
        name=f"{graph.name}.{fused.name}.fused",
        nodes=[fused],
        inputs=data_inputs,
        outputs=list(fused.outputs),
        tensor_types=types,
        initializers=weights,
    )
    member_view = Graph(
        name=f"{graph.name}.{fused.name}.members",
        nodes=list(members),
        inputs=data_inputs,
        outputs=list(fused.outputs),
        tensor_types=types,
        initializers=weights,
    )
    return fused_view, member_view


def _seeded_inputs(view: Graph, seed: int) -> dict[str, np.ndarray]:
    inputs = {}
    for name in view.inputs:
        shape = tuple(view.tensor_types[name].shape)
        rng = derive_rng(seed, "fusion-guard", name)
        flat = [rng.gauss(0.0, 1.0) for _ in range(int(np.prod(shape)) or 1)]
        inputs[name] = np.array(flat, dtype=np.float64).reshape(shape)
    return inputs


def check_fused_group(graph: Graph, fused: Node, seed: int = 0) -> GroupCheck:
    """Replay one fused group against its unfused members."""
    members = fused_members(fused)
    anchor = str(fused.attrs.get("anchor", fused.op_type))
    views = _group_views(graph, fused)
    if views is None:
        return GroupCheck(
            node=fused.name,
            anchor=anchor,
            members=len(members),
            result="skipped",
            detail="symbolic or missing tensor types",
        )
    fused_view, member_view = views
    inputs = _seeded_inputs(fused_view, seed)
    weight_cache: dict[str, np.ndarray] = {}
    fused_out = ReferenceExecutor(
        fused_view, seed=seed, weight_cache=weight_cache, flatten_fused=False
    ).run(**inputs)
    member_out = ReferenceExecutor(
        member_view, seed=seed, weight_cache=weight_cache
    ).run(**inputs)
    worst = 0.0
    for name in fused_view.outputs:
        got, want = fused_out[name], member_out[name]
        if got.shape != want.shape:
            return GroupCheck(
                node=fused.name,
                anchor=anchor,
                members=len(members),
                result="mismatch",
                max_abs_error=float("inf"),
                detail=f"output {name!r} shape {got.shape} != {want.shape}",
            )
        if not np.allclose(got, want, rtol=RTOL, atol=ATOL, equal_nan=True):
            error = float(np.max(np.abs(got - want)))
            return GroupCheck(
                node=fused.name,
                anchor=anchor,
                members=len(members),
                result="mismatch",
                max_abs_error=error,
                detail=f"output {name!r} diverges by {error:.3e}",
            )
        finite = np.isfinite(got) & np.isfinite(want)
        if np.any(finite):
            worst = max(worst, float(np.max(np.abs(got[finite] - want[finite]))))
    return GroupCheck(
        node=fused.name,
        anchor=anchor,
        members=len(members),
        result="ok",
        max_abs_error=worst,
    )


def verify_fused_graph(
    graph: Graph, seed: int = 0, obs=None
) -> FusionGuardReport:
    """Check every fused group in an optimized graph.

    With an observability hub attached, each check increments
    ``fusion_guard_checks_total{result=...}``.
    """
    report = FusionGuardReport(graph=graph.name)
    for node in graph.nodes:
        if node.op_type != "fused":
            continue
        check = check_fused_group(graph, node, seed=seed)
        report.checks.append(check)
        if obs is not None:
            obs.metrics.counter(
                "fusion_guard_checks_total",
                "fusion equivalence guard outcomes",
            ).inc(result=check.result)
    return report


__all__ = [
    "ATOL",
    "RTOL",
    "FusionGuardReport",
    "GroupCheck",
    "check_fused_group",
    "verify_fused_graph",
]
