"""Automatic operator fusion (paper §V-B).

"The generated computation graph is optimized through automatic operator
fusion, to eliminate unnecessary materialization and scan of intermediate
values and benefit from the increased register/memory capacity. Currently,
the strategy of operator fusion is designed with expert knowledge."

The expert rules implemented, in priority order:

1. **producer-consumer epilogue fusion** — a conv/dense/matmul followed by a
   straight-line chain of cheap epilogues (bias add, batch_norm, activation,
   elementwise with a second input) folds into one ``fused`` node;
2. **elementwise chain fusion** — runs of elementwise/activation/norm ops
   merge;
3. **attention fusion** — the matmul -> scale -> softmax -> matmul pattern
   produced by :meth:`GraphBuilder.multi_head_attention` becomes one fused
   attention kernel.

A fused node keeps the member nodes in ``attrs["members"]`` so cost models
can aggregate FLOPs while charging memory traffic only at the fusion
boundary — the mechanism behind the paper's "eliminate unnecessary data
materialization and scan".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.ir import Graph, Node
from repro.graph.ops import spec

#: op categories that may ride along as a fused epilogue
FUSABLE_EPILOGUES = {"elementwise", "activation", "norm", "softmax"}
#: anchor categories that start a fusion group
ANCHOR_CATEGORIES = {"conv", "gemm"}
#: cap on members per fused kernel — oversized kernels blow out the
#: instruction buffer (the very problem §IV-B's prefetch addresses)
MAX_FUSION_LENGTH = 8


@dataclass(frozen=True)
class FusionReport:
    """What one fusion pass did."""

    groups: int
    nodes_fused: int
    nodes_before: int
    nodes_after: int

    @property
    def eliminated_tensors(self) -> int:
        """Intermediates no longer materialized to memory."""
        return self.nodes_fused - self.groups


def _single_consumer_chain(
    graph: Graph, start: Node, consumers: dict[str, list[Node]]
) -> list[Node]:
    """Greedy straight-line chain of fusable epilogues after ``start``."""
    chain = [start]
    current = start
    while len(chain) < MAX_FUSION_LENGTH:
        if len(current.outputs) != 1:
            break
        output = current.outputs[0]
        if output in graph.outputs:
            break
        readers = consumers.get(output, [])
        if len(readers) != 1:
            break
        candidate = readers[0]
        if spec(candidate.op_type).category not in FUSABLE_EPILOGUES:
            break
        # Every other input of the candidate must already be available
        # (weights or earlier tensors) — fusing never reorders the graph
        # because the chain is straight-line.
        chain.append(candidate)
        current = candidate
    return chain


def _fuse_nodes(group: list[Node], index: int) -> Node:
    """Collapse a chain into one fused node."""
    internal = {output for node in group for output in node.outputs}
    internal -= set(group[-1].outputs)
    external_inputs: list[str] = []
    for node in group:
        for tensor in node.inputs:
            if tensor not in internal and tensor not in external_inputs:
                external_inputs.append(tensor)
    member_ops = [node.op_type for node in group]
    return Node(
        name=f"fused_{index}_" + "_".join(member_ops[:4]),
        op_type="fused",
        inputs=external_inputs,
        outputs=list(group[-1].outputs),
        attrs={
            "members": [
                {
                    "name": node.name,
                    "op_type": node.op_type,
                    "inputs": list(node.inputs),
                    "outputs": list(node.outputs),
                    "attrs": dict(node.attrs),
                }
                for node in group
            ],
            "anchor": group[0].op_type,
            "internal_tensors": sorted(internal),
        },
    )


def fuse_attention(graph: Graph) -> int:
    """Fuse matmul -> mul(scale) -> softmax -> matmul into one node."""
    consumers = graph.consumers()
    producers = graph.producers()
    fused = 0
    for node in list(graph.nodes):
        if node.op_type != "softmax" or node not in graph.nodes:
            continue
        scale = producers.get(node.inputs[0])
        if scale is None or scale.op_type not in ("mul", "div"):
            continue
        scores = producers.get(scale.inputs[0])
        if scores is None or scores.op_type != "matmul":
            continue
        readers = consumers.get(node.outputs[0], [])
        if len(readers) != 1 or readers[0].op_type != "matmul":
            continue
        context = readers[0]
        # All four must be single-consumer straight line.
        if any(
            len(consumers.get(member.outputs[0], [])) != 1
            for member in (scores, scale)
        ):
            continue
        group = [scores, scale, node, context]
        fused_node = _fuse_nodes(group, index=len(graph.nodes) + fused)
        fused_node.attrs["pattern"] = "attention"
        position = graph.nodes.index(scores)
        for member in group:
            graph.nodes.remove(member)
        graph.nodes.insert(position, fused_node)
        consumers = graph.consumers()
        producers = graph.producers()
        fused += 1
    return fused


def fuse_operators(graph: Graph, enable: bool = True) -> FusionReport:
    """Run the full expert-rule fusion pipeline, in place."""
    before = len(graph.nodes)
    if not enable:
        return FusionReport(
            groups=0, nodes_fused=0, nodes_before=before, nodes_after=before
        )
    attention_groups = fuse_attention(graph)

    consumers = graph.consumers()
    claimed: set[str] = set()
    groups: list[list[Node]] = []
    for node in graph.topological_nodes():
        if node.name in claimed or node.op_type == "fused":
            continue
        category = spec(node.op_type).category
        if category in ANCHOR_CATEGORIES or category in FUSABLE_EPILOGUES:
            chain = _single_consumer_chain(graph, node, consumers)
            chain = [member for member in chain if member.name not in claimed]
            if len(chain) >= 2:
                groups.append(chain)
                claimed.update(member.name for member in chain)

    for index, group in enumerate(groups):
        fused_node = _fuse_nodes(group, index)
        position = graph.nodes.index(group[0])
        for member in group:
            graph.nodes.remove(member)
        graph.nodes.insert(position, fused_node)

    nodes_fused = sum(len(group) for group in groups) + attention_groups * 4
    return FusionReport(
        groups=len(groups) + attention_groups,
        nodes_fused=nodes_fused,
        nodes_before=before,
        nodes_after=len(graph.nodes),
    )


def fused_members(node: Node) -> list[Node]:
    """Reconstruct the member nodes of a fused node."""
    if node.op_type != "fused":
        return [node]
    return [
        Node(
            name=member["name"],
            op_type=member["op_type"],
            inputs=list(member["inputs"]),
            outputs=list(member["outputs"]),
            attrs=dict(member["attrs"]),
        )
        for member in node.attrs["members"]
    ]
