"""Differential graph fuzzer for the compiler pipeline.

NNSmith-style robustness tooling for the TopsInference/TopsEngine model
(paper §V-B): a seeded generator builds random *valid* graphs over the op
vocabulary, a mutator corrupts them into malformed variants, and a harness
checks the hardening invariant on every case:

    **typed error or numerically-correct compile — never a crash, never a
    silent wrong answer.**

Concretely, per case:

- the valid graph must compile through the hardened pipeline
  (:func:`repro.compiler.pipeline.compile_graph` with the fusion guard
  on), survive an export/import round trip with an identical
  ``structural_hash``, and evaluate identically before and after
  optimization (both fused-schedule flavours) on seeded inputs;
- the mutated graph must be rejected with a
  :class:`~repro.graph.ir.GraphValidationError` /
  :class:`~repro.compiler.errors.CompileError` whose message names the
  corrupted node or tensor — a bare ``KeyError``/``IndexError`` or a
  silent acceptance is an invariant violation.

Failures shrink through a delta-debugging minimizer
(:func:`minimize`) into a regression corpus (``tests/graph/corpus/``)
that CI replays. Everything is derived from labelled
:mod:`repro.seeding` streams, so one seed reproduces a byte-identical
JSON report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.compiler.errors import CompileError
from repro.compiler.pipeline import compile_graph
from repro.core.config import dtu2_config
from repro.core.datatypes import DType
from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph, GraphError, GraphValidationError
from repro.graph.onnx_like import export_graph, import_graph
from repro.graph.passes import optimize
from repro.graph.reference import ReferenceExecutor
from repro.seeding import derive_rng

#: Exception classes the invariant accepts as "typed rejection".
TYPED_ERRORS = (GraphValidationError, CompileError, GraphError)

#: Numeric agreement required between the original and optimized graphs.
DIFF_RTOL = 1e-8
DIFF_ATOL = 1e-10


# ---------------------------------------------------------------------------
# generator: random valid graphs
# ---------------------------------------------------------------------------


def _gen_cnn(rng, index: int) -> Graph:
    builder = GraphBuilder(f"fuzz_cnn_{index}")
    channels = rng.choice([2, 3, 4])
    size = rng.choice([6, 8])
    data = builder.input("x", (1, channels, size, size))
    out = builder.conv2d(
        data, rng.choice([4, 6, 8]), kernel=3, pad=1, name="conv0"
    )
    out = builder.batch_norm(out, name="bn0")
    out = getattr(builder, rng.choice(["relu", "gelu", "swish"]))(
        out, name="act0"
    )
    if rng.random() < 0.5:
        out = builder.max_pool(out, kernel=2)
    if rng.random() < 0.5:
        out = builder.conv2d(out, rng.choice([4, 8]), kernel=1, name="conv1")
        out = builder.relu(out, name="act1")
    out = builder.flatten(out)
    out = builder.dense(out, rng.choice([4, 10]), name="head")
    return builder.finish(outputs=[out])


def _gen_mlp(rng, index: int) -> Graph:
    builder = GraphBuilder(f"fuzz_mlp_{index}")
    features = rng.choice([8, 12, 16])
    data = builder.input("x", (2, features))
    out = data
    for layer in range(rng.choice([1, 2, 3])):
        out = builder.dense(out, rng.choice([8, 16]), name=f"fc{layer}")
        out = getattr(builder, rng.choice(["relu", "sigmoid", "tanh"]))(
            out, name=f"act{layer}"
        )
    out = builder.dense(out, 4, name="head")
    return builder.finish(outputs=[out])


def _gen_attention(rng, index: int) -> Graph:
    builder = GraphBuilder(f"fuzz_attn_{index}")
    heads = rng.choice([1, 2])
    features = heads * rng.choice([4, 8])
    seq = rng.choice([3, 4])
    data = builder.input("x", (1, seq, features))
    out = builder.multi_head_attention(data, heads=heads, name="mha")
    out = builder.layer_norm(out, name="ln")
    return builder.finish(outputs=[out])


def _gen_branchy(rng, index: int) -> Graph:
    builder = GraphBuilder(f"fuzz_branch_{index}")
    features = rng.choice([8, 16])
    data = builder.input("x", (2, features))
    trunk = builder.dense(data, features, name="trunk")
    left = builder.relu(trunk, name="left")
    right = getattr(builder, rng.choice(["sigmoid", "tanh", "neg"]))(
        trunk, name="right"
    )
    out = builder.add(left, right, name="join")
    if rng.random() < 0.5:
        out = builder.concat([out, trunk], axis=1)
    out = builder.dense(out, 4, name="head")
    return builder.finish(outputs=[out])


FAMILIES = {
    "cnn": _gen_cnn,
    "mlp": _gen_mlp,
    "attention": _gen_attention,
    "branchy": _gen_branchy,
}


def generate_graph(seed: int, index: int) -> tuple[str, Graph]:
    """One seeded random valid graph; returns (family, graph)."""
    rng = derive_rng(seed, "gen", index)
    family = rng.choice(sorted(FAMILIES))
    return family, FAMILIES[family](rng, index)


# ---------------------------------------------------------------------------
# mutator: corrupt valid graphs into malformed variants
# ---------------------------------------------------------------------------
#
# Each mutation takes (graph, rng), corrupts the graph IN PLACE, and
# returns the provenance string (a node or tensor name) that the typed
# error message must contain — or None when the mutation does not apply
# to this graph. Mutations bypass constructor checks deliberately (direct
# list/dict writes), modelling a buggy importer or pass.


def _mut_undefined_input(graph: Graph, rng) -> str | None:
    node = rng.choice(graph.nodes)
    node.inputs[rng.randrange(len(node.inputs))] = "ghost_tensor"
    return node.name


def _mut_duplicate_producer(graph: Graph, rng) -> str | None:
    if len(graph.nodes) < 2:
        return None
    first, second = sorted(rng.sample(range(len(graph.nodes)), 2))
    graph.nodes[second].outputs[0] = graph.nodes[first].outputs[0]
    return graph.nodes[first].outputs[0]


def _mut_cycle(graph: Graph, rng) -> str | None:
    node = rng.choice(graph.nodes)
    node.inputs[0] = node.outputs[0]
    return node.name


def _mut_unknown_op(graph: Graph, rng) -> str | None:
    node = rng.choice(graph.nodes)
    node.op_type = "quantum_fft"
    return node.name


def _mut_duplicate_node_name(graph: Graph, rng) -> str | None:
    if len(graph.nodes) < 2:
        return None
    first, second = sorted(rng.sample(range(len(graph.nodes)), 2))
    graph.nodes[second].name = graph.nodes[first].name
    return graph.nodes[first].name


def _mut_drop_input_type(graph: Graph, rng) -> str | None:
    tensor = rng.choice(graph.inputs)
    del graph.tensor_types[tensor]
    return tensor


def _mut_unproduced_output(graph: Graph, rng) -> str | None:
    graph.outputs.append("phantom_out")
    return "phantom_out"


def _mut_rank_mismatch(graph: Graph, rng) -> str | None:
    node = rng.choice(graph.nodes)
    name = node.outputs[0]
    declared = graph.tensor_types.get(name)
    if declared is None:
        return None
    graph.tensor_types[name] = type(declared)(
        shape=declared.shape + (7,), dtype=declared.dtype
    )
    return node.name


def _mut_bad_attr(graph: Graph, rng) -> str | None:
    candidates = [
        node
        for node in graph.nodes
        if node.op_type in ("conv2d", "conv1d", "max_pool", "avg_pool")
    ]
    if not candidates:
        return None
    node = rng.choice(candidates)
    node.attrs["stride"] = 0
    return node.name


def _mut_dtype_mismatch(graph: Graph, rng) -> str | None:
    node = rng.choice(graph.nodes)
    name = node.outputs[0]
    declared = graph.tensor_types.get(name)
    if declared is None or declared.dtype is DType.INT8:
        return None
    graph.tensor_types[name] = type(declared)(
        shape=declared.shape, dtype=DType.INT8
    )
    return node.name


def _mut_nonstring_ref(graph: Graph, rng) -> str | None:
    node = rng.choice(graph.nodes)
    node.inputs[0] = 12345  # type: ignore[call-overload]
    return node.name


MUTATIONS = {
    "undefined-input": _mut_undefined_input,
    "duplicate-producer": _mut_duplicate_producer,
    "cycle": _mut_cycle,
    "unknown-op": _mut_unknown_op,
    "duplicate-node-name": _mut_duplicate_node_name,
    "drop-input-type": _mut_drop_input_type,
    "unproduced-output": _mut_unproduced_output,
    "rank-mismatch": _mut_rank_mismatch,
    "bad-attr": _mut_bad_attr,
    "dtype-mismatch": _mut_dtype_mismatch,
    "nonstring-ref": _mut_nonstring_ref,
}


def mutate_graph(
    graph: Graph, seed: int, index: int
) -> tuple[str, Graph, str] | None:
    """Corrupt a copy of ``graph``; returns (mutation, mutant, provenance).

    The mutation is drawn from the case's labelled rng stream; mutations
    that do not apply to this particular graph are skipped in a
    deterministic order. Returns None when nothing applies (tiny graphs).
    """
    rng = derive_rng(seed, "mut", index)
    names = sorted(MUTATIONS)
    rng.shuffle(names)
    for name in names:
        mutant = graph.bind({})
        provenance = MUTATIONS[name](mutant, rng)
        if provenance is not None:
            return name, mutant, provenance
    return None


# ---------------------------------------------------------------------------
# harness: the invariant
# ---------------------------------------------------------------------------


def _seeded_inputs(graph: Graph, seed: int, index: int) -> dict[str, np.ndarray]:
    inputs = {}
    for name in graph.inputs:
        shape = tuple(graph.tensor_types[name].shape)
        rng = derive_rng(seed, "inputs", index, name)
        flat = [rng.gauss(0.0, 1.0) for _ in range(int(np.prod(shape)) or 1)]
        inputs[name] = np.array(flat, dtype=np.float64).reshape(shape)
    return inputs


def check_valid_graph(graph: Graph, seed: int, index: int) -> str | None:
    """Run the valid-graph side of the invariant; returns a violation
    description or None."""
    chip = dtu2_config()
    try:
        compile_graph(
            graph, chip, dtype=DType.FP16, fusion=True, verify_fusion=True,
            seed=seed,
        )
    except GraphError as error:
        return f"valid graph rejected: {type(error).__name__}: {error}"
    except Exception as error:
        return f"compile crashed untyped: {type(error).__name__}: {error!r}"

    try:
        roundtrip = import_graph(export_graph(graph))
    except Exception as error:
        return f"round trip failed: {type(error).__name__}: {error!r}"
    if roundtrip.structural_hash() != graph.structural_hash():
        return "round trip changed structural_hash"

    inputs = _seeded_inputs(graph, seed, index)
    try:
        baseline = ReferenceExecutor(graph, seed=seed).run(**inputs)
        optimized, _report = optimize(graph.bind({}), fusion=True)
        for flatten in (True, False):
            candidate = ReferenceExecutor(
                optimized, seed=seed, flatten_fused=flatten
            ).run(**inputs)
            for name in graph.outputs:
                if not np.allclose(
                    baseline[name], candidate[name],
                    rtol=DIFF_RTOL, atol=DIFF_ATOL, equal_nan=True,
                ):
                    return (
                        f"silent wrong answer: output {name!r} diverges "
                        f"after optimization (flatten_fused={flatten})"
                    )
    except GraphError as error:
        return f"execution rejected valid graph: {type(error).__name__}: {error}"
    except Exception as error:
        return f"execution crashed untyped: {type(error).__name__}: {error!r}"
    return None


def check_malformed_graph(graph: Graph, provenance: str) -> str | None:
    """Run the malformed side; returns a violation description or None.

    The compile attempt must raise a typed error whose message names the
    corrupted node/tensor; anything else violates the invariant.
    """
    chip = dtu2_config()
    try:
        compile_graph(graph, chip, dtype=DType.FP16, fusion=True)
    except TYPED_ERRORS as error:
        if str(provenance) not in str(error):
            return (
                f"typed error lacks provenance {provenance!r}: "
                f"{type(error).__name__}: {error}"
            )
        return None
    except Exception as error:
        return (
            f"untyped crash on malformed graph: "
            f"{type(error).__name__}: {error!r}"
        )
    return "malformed graph compiled without error (silent acceptance)"


def classify_error(graph: Graph) -> tuple[str, str] | None:
    """(error type name, message) the hardened pipeline raises, or None."""
    try:
        compile_graph(graph, dtu2_config(), dtype=DType.FP16, fusion=True)
    except Exception as error:
        return type(error).__name__, str(error)
    return None


# ---------------------------------------------------------------------------
# minimizer: shrink failures for the corpus
# ---------------------------------------------------------------------------


def minimize(graph: Graph, predicate) -> Graph:
    """Greedy delta-debugging: drop nodes while ``predicate`` still holds.

    ``predicate(candidate)`` must return True when the candidate still
    reproduces the failure (same error class + provenance). Node removal
    keeps the graph closed by re-deriving outputs from what remains; a
    removal that changes the failure signature is simply rejected.
    """
    # Lenient clone (document round trip): malformed graphs can carry
    # corruptions Node's constructor would reject, so bind({}) won't do.
    current = _graph_from_document(_corpus_document(graph))
    shrinking = True
    while shrinking:
        shrinking = False
        for index in range(len(current.nodes)):
            candidate = _graph_from_document(_corpus_document(current))
            removed = candidate.nodes.pop(index)
            produced = {
                output
                for node in candidate.nodes
                for output in node.outputs
            }
            consumed = {
                tensor for node in candidate.nodes for tensor in node.inputs
            }
            candidate.outputs = [
                name
                for name in (*candidate.outputs, *removed.inputs)
                if name in produced and name not in consumed
            ] or [
                name for name in candidate.outputs if name in produced
            ]
            try:
                still_fails = predicate(candidate)
            except Exception:
                still_fails = False
            if still_fails and candidate.nodes:
                current = candidate
                shrinking = True
                break
    return current


def minimize_failure(graph: Graph, provenance: str) -> Graph:
    """Shrink a malformed graph, preserving its typed-error signature."""
    baseline = classify_error(graph)
    if baseline is None:
        return graph

    def predicate(candidate: Graph) -> bool:
        observed = classify_error(candidate)
        return (
            observed is not None
            and observed[0] == baseline[0]
            and str(provenance) in observed[1]
        )

    return minimize(graph, predicate)


# ---------------------------------------------------------------------------
# corpus
# ---------------------------------------------------------------------------

CORPUS_DIR = Path("tests/graph/corpus")


def _corpus_document(graph: Graph) -> dict:
    """Export that survives malformed graphs (mutations break invariants
    that :func:`export_graph` assumes, e.g. non-string refs)."""
    return {
        "format_version": 1,
        "name": graph.name,
        "inputs": list(graph.inputs),
        "outputs": list(graph.outputs),
        "initializers": sorted(graph.initializers),
        "tensor_types": {
            name: {
                "shape": list(tensor_type.shape),
                "dtype": tensor_type.dtype.name,
            }
            for name, tensor_type in sorted(graph.tensor_types.items())
        },
        "nodes": [
            {
                "name": node.name,
                "op_type": node.op_type,
                "inputs": list(node.inputs),
                "outputs": list(node.outputs),
                "attrs": {
                    key: list(value) if isinstance(value, tuple) else value
                    for key, value in node.attrs.items()
                },
            }
            for node in graph.nodes
        ],
    }


def _graph_from_document(document: dict) -> Graph:
    """Lenient loader for corpus replay: builds the (malformed) graph
    without validating, so the replay exercises the pipeline's checks."""
    from repro.graph.ir import Node, TensorType

    graph = Graph(
        name=document["name"],
        inputs=list(document["inputs"]),
        outputs=list(document["outputs"]),
        initializers=set(document["initializers"]),
        tensor_types={
            name: TensorType(
                shape=tuple(
                    dim if isinstance(dim, str) else int(dim)
                    for dim in entry["shape"]
                ),
                dtype=DType[entry["dtype"]],
            )
            for name, entry in document["tensor_types"].items()
        },
    )
    for entry in document["nodes"]:
        node = Node.__new__(Node)  # skip __post_init__: refs may be corrupt
        node.name = entry["name"]
        node.op_type = entry["op_type"]
        node.inputs = list(entry["inputs"])
        node.outputs = list(entry["outputs"])
        node.attrs = {
            key: tuple(value)
            if key in ("shape", "axes", "pads") and isinstance(value, list)
            else value
            for key, value in entry.get("attrs", {}).items()
        }
        graph.nodes.append(node)
    return graph


def write_corpus(seed: int = 0, directory: Path | None = None) -> list[Path]:
    """(Re)generate one minimized corpus entry per mutation kind."""
    directory = Path(directory) if directory else CORPUS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for index, mutation in enumerate(sorted(MUTATIONS)):
        rng = derive_rng(seed, "corpus", mutation)
        provenance = None
        # Deterministically walk families until the mutation applies
        # (e.g. bad-attr needs a graph with a conv/pool node).
        for family in [rng.choice(sorted(FAMILIES))] + sorted(FAMILIES):
            graph = FAMILIES[family](rng, 9000 + index)
            provenance = MUTATIONS[mutation](graph, rng)
            if provenance is not None:
                break
        if provenance is None:  # pragma: no cover - cnn always applies
            continue
        minimized = minimize_failure(graph, provenance)
        error = classify_error(minimized)
        if error is None:  # pragma: no cover - mutations always fail
            continue
        entry = {
            "mutation": mutation,
            "error_type": error[0],
            "error_message": error[1],
            "provenance": str(provenance),
            "document": _corpus_document(minimized),
        }
        path = directory / f"{mutation}.json"
        path.write_text(json.dumps(entry, indent=1, sort_keys=True) + "\n")
        written.append(path)
    return written


def replay_corpus(directory: Path | None = None) -> list[dict]:
    """Replay every corpus entry; returns one result dict per file.

    A replay passes when the pipeline raises the recorded error type
    (taxonomy drift downgrades gracefully: any typed error still passes
    as long as the provenance survives) and the message carries the
    recorded provenance.
    """
    directory = Path(directory) if directory else CORPUS_DIR
    results = []
    for path in sorted(directory.glob("*.json")):
        entry = json.loads(path.read_text())
        graph = _graph_from_document(entry["document"])
        observed = classify_error(graph)
        if observed is None:
            status, detail = "fail", "compiled without error"
        elif entry["provenance"] not in observed[1]:
            status = "fail"
            detail = f"provenance missing from {observed[0]}: {observed[1]}"
        elif observed[0] != entry["error_type"]:
            status = "type-drift"
            detail = f"expected {entry['error_type']}, got {observed[0]}"
        else:
            status, detail = "ok", ""
        results.append(
            {
                "file": path.name,
                "mutation": entry["mutation"],
                "status": status,
                "detail": detail,
            }
        )
    return results


# ---------------------------------------------------------------------------
# campaign driver + report
# ---------------------------------------------------------------------------


@dataclass
class FuzzCase:
    """One generate→check→mutate→check round."""

    index: int
    family: str
    mutation: str | None
    violations: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "family": self.family,
            "mutation": self.mutation,
            "violations": list(self.violations),
        }


@dataclass
class FuzzReport:
    """Whole-campaign outcome; canonical JSON for byte-identical reruns."""

    seed: int
    budget: int
    cases: list[FuzzCase] = field(default_factory=list)

    @property
    def violations(self) -> list[str]:
        out = []
        for case in self.cases:
            label = f"case {case.index} ({case.family}"
            if case.mutation:
                label += f", {case.mutation}"
            label += ")"
            for violation in case.violations:
                out.append(f"{label}: {violation}")
        return out

    @property
    def ok(self) -> bool:
        return not any(case.violations for case in self.cases)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "ok": self.ok,
            "families": {
                family: sum(1 for c in self.cases if c.family == family)
                for family in sorted({c.family for c in self.cases})
            },
            "mutations": {
                mutation: sum(1 for c in self.cases if c.mutation == mutation)
                for mutation in sorted(
                    {c.mutation for c in self.cases if c.mutation}
                )
            },
            "violation_count": len(self.violations),
            "cases": [case.to_dict() for case in self.cases],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [
            f"fuzz campaign: seed={self.seed} budget={self.budget}",
            "",
        ]
        data = self.to_dict()
        lines.append("cases per family:")
        for family, count in data["families"].items():
            lines.append(f"  {family:<12} {count}")
        lines.append("mutations exercised:")
        for mutation, count in data["mutations"].items():
            lines.append(f"  {mutation:<20} {count}")
        lines.append("")
        if self.ok:
            lines.append(
                f"PASS: {len(self.cases)} cases, zero invariant violations"
            )
        else:
            lines.append(f"FAIL: {len(self.violations)} violations")
            for violation in self.violations:
                lines.append(f"  - {violation}")
        return "\n".join(lines)


def run_fuzz(seed: int = 0, budget: int = 50) -> FuzzReport:
    """Run ``budget`` generate/mutate/check rounds; fully deterministic."""
    report = FuzzReport(seed=seed, budget=budget)
    for index in range(budget):
        family, graph = generate_graph(seed, index)
        mutated = mutate_graph(graph, seed, index)
        case = FuzzCase(
            index=index,
            family=family,
            mutation=mutated[0] if mutated else None,
        )
        violation = check_valid_graph(graph, seed, index)
        if violation:
            case.violations.append(violation)
        if mutated:
            _name, mutant, provenance = mutated
            violation = check_malformed_graph(mutant, provenance)
            if violation:
                case.violations.append(violation)
        report.cases.append(case)
    return report


__all__ = [
    "CORPUS_DIR",
    "FAMILIES",
    "MUTATIONS",
    "FuzzCase",
    "FuzzReport",
    "check_malformed_graph",
    "check_valid_graph",
    "generate_graph",
    "minimize",
    "minimize_failure",
    "mutate_graph",
    "replay_corpus",
    "run_fuzz",
    "write_corpus",
]
