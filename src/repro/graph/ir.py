"""Graph intermediate representation for the TopsInference compiler.

A :class:`Graph` is a DAG of :class:`Node` operations over named tensors,
the shape every framework importer lowers to (paper Fig. 11: ONNX models
convert into this IR, get optimized, then lower to kernels).

Dynamic shapes (§V-B "Dynamic tensor and shape inference have been
supported") are first-class: a dimension may be a string symbol ("batch",
"seq") that stays symbolic through shape inference until bound.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, replace

import networkx as nx

from repro.core.datatypes import DType

Dim = int | str
Shape = tuple[Dim, ...]


class GraphError(ValueError):
    """The graph is structurally invalid."""


class GraphValidationError(GraphError):
    """A structural invariant is violated; carries node/tensor provenance.

    Every checker in :meth:`Graph.validate` raises a subclass of this, so
    callers can catch the family while error messages (and the ``node`` /
    ``tensor`` attributes) pinpoint the offending graph element — the
    contract the differential fuzzer (:mod:`repro.graph.fuzz`) enforces:
    malformed input must never surface as a bare ``KeyError`` or
    ``IndexError``.
    """

    def __init__(self, message: str, node: str | None = None,
                 tensor: str | None = None) -> None:
        super().__init__(message)
        self.node = node
        self.tensor = tensor


class GraphCycleError(GraphValidationError):
    """The dataflow graph contains a cycle."""


class UndefinedTensorError(GraphValidationError):
    """A node reads a tensor nothing produces or declares."""


class DuplicateProducerError(GraphValidationError):
    """One tensor is written by more than one producer."""


class DuplicateNodeError(GraphValidationError):
    """Two nodes share a name, breaking provenance and fusion bookkeeping."""


class UnproducedOutputError(GraphValidationError):
    """A declared graph output is never produced."""


class UntypedTensorError(GraphValidationError):
    """A graph input (or initializer in use) has no declared tensor type."""


class TensorRefError(GraphValidationError):
    """A node references a tensor by something other than a non-empty str."""


class SignatureError(GraphValidationError):
    """A node violates its operator signature (arity, dtype, rank, attrs)."""


def _canonical(value) -> str:
    """Deterministic text form of a value for hashing.

    Dicts serialize in sorted key order and sets as sorted lists, so the
    result does not depend on insertion order or ``PYTHONHASHSEED``.
    """
    if isinstance(value, dict):
        items = ",".join(
            f"{_canonical(key)}:{_canonical(value[key])}" for key in sorted(value)
        )
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(item) for item in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(item) for item in value)) + "}"
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, TensorType):
        return f"TensorType({_canonical(value.shape)},{value.dtype.name})"
    if isinstance(value, float):
        return repr(value)
    return f"{type(value).__name__}:{value!r}"


@dataclass(frozen=True)
class TensorType:
    """Element type + (possibly symbolic) shape of one tensor."""

    shape: Shape
    dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        for dim in self.shape:
            if isinstance(dim, int) and dim < 0:
                raise GraphError(f"negative dimension in {self.shape}")
            if isinstance(dim, str) and not dim:
                raise GraphError("empty symbolic dimension name")

    @property
    def is_static(self) -> bool:
        return all(isinstance(dim, int) for dim in self.shape)

    @property
    def rank(self) -> int:
        return len(self.shape)

    def num_elements(self) -> int:
        """Element count; raises on symbolic shapes."""
        if not self.is_static:
            raise GraphError(f"shape {self.shape} is symbolic; bind it first")
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    def nbytes(self) -> int:
        return self.num_elements() * self.dtype.bytes

    def bind(self, bindings: dict[str, int]) -> "TensorType":
        """Substitute symbolic dims; unknown symbols stay symbolic."""
        shape = tuple(
            bindings.get(dim, dim) if isinstance(dim, str) else dim
            for dim in self.shape
        )
        return replace(self, shape=shape)


@dataclass
class Node:
    """One operation instance."""

    name: str
    op_type: str
    inputs: list[str]
    outputs: list[str]
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("node needs a name")
        if not self.outputs:
            raise GraphError(f"node {self.name} produces no outputs")
        for tensor in (*self.inputs, *self.outputs):
            if not isinstance(tensor, str) or not tensor:
                raise TensorRefError(
                    f"node {self.name!r} references tensor {tensor!r}; "
                    "tensor refs must be non-empty strings",
                    node=self.name,
                )

    def attr(self, key: str, default=None):
        return self.attrs.get(key, default)


@dataclass
class Graph:
    """A dataflow graph: nodes over named tensors.

    ``tensor_types`` holds the type of every graph input and (after shape
    inference) every intermediate; ``initializers`` names the weight tensors
    (their types also live in ``tensor_types``).
    """

    name: str
    nodes: list[Node] = field(default_factory=list)
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    tensor_types: dict[str, TensorType] = field(default_factory=dict)
    initializers: set[str] = field(default_factory=set)

    # -- structure ----------------------------------------------------------

    def node_by_name(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise GraphError(f"no node named {name!r}")

    def producers(self) -> dict[str, Node]:
        """tensor name -> the node that writes it."""
        table: dict[str, Node] = {}
        for node in self.nodes:
            for output in node.outputs:
                if output in table:
                    raise DuplicateProducerError(
                        f"tensor {output!r} produced twice "
                        f"({table[output].name} and {node.name})",
                        node=node.name,
                        tensor=output,
                    )
                table[output] = node
        return table

    def consumers(self) -> dict[str, list[Node]]:
        """tensor name -> nodes that read it."""
        table: dict[str, list[Node]] = {}
        for node in self.nodes:
            for tensor in node.inputs:
                table.setdefault(tensor, []).append(node)
        return table

    def to_networkx(self) -> nx.DiGraph:
        digraph = nx.DiGraph()
        producers = self.producers()
        for node in self.nodes:
            digraph.add_node(node.name)
        for node in self.nodes:
            for tensor in node.inputs:
                producer = producers.get(tensor)
                if producer is not None:
                    digraph.add_edge(producer.name, node.name, tensor=tensor)
        return digraph

    def topological_nodes(self) -> list[Node]:
        """Nodes in execution order; raises on cycles."""
        digraph = self.to_networkx()
        try:
            order = list(nx.topological_sort(digraph))
        except nx.NetworkXUnfeasible:
            try:
                members = [edge[0] for edge in nx.find_cycle(digraph)]
            except nx.NetworkXNoCycle:  # pragma: no cover - unfeasible => cycle
                members = []
            raise GraphCycleError(
                f"graph {self.name!r} contains a cycle through "
                f"{' -> '.join(members)}",
                node=members[0] if members else None,
            ) from None
        by_name = {node.name: node for node in self.nodes}
        return [by_name[name] for name in order]

    def validate(self, signatures: bool = False) -> None:
        """Check structural invariants; raises :class:`GraphValidationError`.

        The base check covers connectivity: non-string tensor refs,
        duplicate node names, duplicate producers, undefined inputs,
        unproduced outputs, untyped graph inputs and cycles. With
        ``signatures=True`` every non-fused node is additionally checked
        against its registered operator signature — arity, attribute
        sanity, and dtype/rank/static-shape agreement between what the op
        infers and what ``tensor_types`` declares — so a corrupted graph
        fails here with node provenance instead of crashing deep inside
        lowering. The compile pipeline
        (:func:`repro.compiler.pipeline.compile_graph`) and the importer
        (:func:`repro.graph.onnx_like.import_graph`) run the full check.
        """
        seen_names: set[str] = set()
        for node in self.nodes:
            if node.name in seen_names:
                raise DuplicateNodeError(
                    f"two nodes named {node.name!r}; node names must be "
                    "unique",
                    node=node.name,
                )
            seen_names.add(node.name)
            for tensor in (*node.inputs, *node.outputs):
                if not isinstance(tensor, str) or not tensor:
                    raise TensorRefError(
                        f"node {node.name!r} references tensor {tensor!r}; "
                        "tensor refs must be non-empty strings",
                        node=node.name,
                    )
        producers = self.producers()
        for tensor, node in producers.items():
            if tensor in self.inputs or tensor in self.initializers:
                raise DuplicateProducerError(
                    f"node {node.name!r} writes {tensor!r}, which is already "
                    "a graph input or initializer",
                    node=node.name,
                    tensor=tensor,
                )
        available = set(self.inputs) | self.initializers | set(producers)
        for node in self.nodes:
            for tensor in node.inputs:
                if tensor not in available:
                    raise UndefinedTensorError(
                        f"node {node.name!r} reads undefined tensor {tensor!r}",
                        node=node.name,
                        tensor=tensor,
                    )
        for tensor in self.outputs:
            if tensor not in available:
                raise UnproducedOutputError(
                    f"graph output {tensor!r} is never produced",
                    tensor=tensor,
                )
        for tensor in self.inputs:
            if tensor not in self.tensor_types:
                raise UntypedTensorError(
                    f"graph input {tensor!r} has no declared type",
                    tensor=tensor,
                )
        self.topological_nodes()  # cycle check
        if signatures:
            self._validate_signatures()

    def _validate_signatures(self) -> None:
        """Per-node op-signature check (arity, attrs, dtype/rank agreement).

        Nodes whose input types are not all declared yet are skipped (shape
        inference is the pass that fills them in); fused nodes are skipped
        because their members were checked before fusion.
        """
        from repro.graph.ops import infer_node  # deferred: ops imports ir

        for node in self.nodes:
            if node.op_type == "fused":
                continue
            if any(name not in self.tensor_types for name in node.inputs):
                continue
            input_types = [self.tensor_types[name] for name in node.inputs]
            try:
                inferred = infer_node(node, input_types)
            except GraphValidationError:
                raise
            except GraphError as error:
                raise SignatureError(
                    f"node {node.name!r} ({node.op_type}): {error}",
                    node=node.name,
                ) from error
            except Exception as error:
                raise SignatureError(
                    f"node {node.name!r} ({node.op_type}) signature check "
                    f"failed: {error!r}",
                    node=node.name,
                ) from error
            for name, tensor_type in zip(node.outputs, inferred):
                declared = self.tensor_types.get(name)
                if declared is None:
                    continue
                if (
                    declared.dtype is not tensor_type.dtype
                    or declared.rank != tensor_type.rank
                    or (
                        declared.is_static
                        and tensor_type.is_static
                        and declared.shape != tensor_type.shape
                    )
                ):
                    raise SignatureError(
                        f"node {node.name!r} ({node.op_type}) output "
                        f"{name!r} infers as {tensor_type} but is declared "
                        f"as {declared}",
                        node=node.name,
                        tensor=name,
                    )

    # -- convenience ----------------------------------------------------------

    def tensor_type(self, name: str) -> TensorType:
        if name not in self.tensor_types:
            raise GraphError(
                f"tensor {name!r} has no type; run shape inference first"
            )
        return self.tensor_types[name]

    def weight_bytes(self) -> int:
        """Total parameter footprint (static shapes only)."""
        return sum(
            self.tensor_types[name].nbytes()
            for name in self.initializers
            if name in self.tensor_types
        )

    def structural_hash(self) -> str:
        """Content hash of everything that affects compilation.

        Covers node structure (names, op types, connectivity, attributes),
        graph inputs/outputs, tensor types (so shape bindings change the
        hash) and the initializer set — but not Python object identity, so
        two independently built but identical graphs collide on purpose.
        The digest is stable across processes (no reliance on ``hash()``
        or dict iteration order), which is what lets
        :class:`repro.caching.CompileCache` address compiled models by
        content.
        """
        digest = hashlib.sha256()
        digest.update(_canonical(self.name).encode())
        for node in self.nodes:
            digest.update(
                _canonical(
                    (node.name, node.op_type, node.inputs, node.outputs, node.attrs)
                ).encode()
            )
        digest.update(_canonical(self.inputs).encode())
        digest.update(_canonical(self.outputs).encode())
        digest.update(_canonical(self.tensor_types).encode())
        digest.update(_canonical(self.initializers).encode())
        return digest.hexdigest()

    def bind(self, bindings: dict[str, int]) -> "Graph":
        """Return a copy with symbolic dimensions substituted.

        Substitution covers tensor types *and* shape-valued node attributes
        (a reshape target may carry a symbolic batch dim).
        """

        def _bind_attrs(attrs: dict) -> dict:
            bound = dict(attrs)
            if isinstance(bound.get("shape"), tuple):
                bound["shape"] = tuple(
                    bindings.get(dim, dim) if isinstance(dim, str) else dim
                    for dim in bound["shape"]
                )
            return bound

        return Graph(
            name=self.name,
            nodes=[
                Node(
                    name=node.name,
                    op_type=node.op_type,
                    inputs=list(node.inputs),
                    outputs=list(node.outputs),
                    attrs=_bind_attrs(node.attrs),
                )
                for node in self.nodes
            ],
            inputs=list(self.inputs),
            outputs=list(self.outputs),
            tensor_types={
                name: tensor_type.bind(bindings)
                for name, tensor_type in self.tensor_types.items()
            },
            initializers=set(self.initializers),
        )
