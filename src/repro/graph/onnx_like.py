"""Serialization: an ONNX-like interchange format for graphs.

TopsInference "leverages ONNX to import/convert DNN models developed with
various frameworks" (paper §V-B). Offline, we model the interchange step
with a stable JSON document format: :func:`export_graph` /
:func:`import_graph` round-trip a :class:`~repro.graph.ir.Graph` through a
plain dict, and :func:`save` / :func:`load` put it on disk.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.datatypes import DType
from repro.graph.ir import (
    DuplicateNodeError,
    Graph,
    GraphValidationError,
    Node,
    TensorRefError,
    TensorType,
)

FORMAT_VERSION = 1


class FormatVersionError(GraphValidationError):
    """The document's ``format_version`` is not one this reader speaks."""


def _shape_to_json(shape) -> list:
    return list(shape)


def _shape_from_json(shape) -> tuple:
    return tuple(
        dim if isinstance(dim, str) else int(dim) for dim in shape
    )


def export_graph(graph: Graph) -> dict:
    """Serialize to a JSON-compatible dict."""
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "inputs": list(graph.inputs),
        "outputs": list(graph.outputs),
        "initializers": sorted(graph.initializers),
        "tensor_types": {
            name: {
                "shape": _shape_to_json(tensor_type.shape),
                "dtype": tensor_type.dtype.name,
            }
            for name, tensor_type in sorted(graph.tensor_types.items())
        },
        "nodes": [
            {
                "name": node.name,
                "op_type": node.op_type,
                "inputs": list(node.inputs),
                "outputs": list(node.outputs),
                "attrs": _attrs_to_json(node.attrs),
            }
            for node in graph.nodes
        ],
    }


def _attrs_to_json(attrs: dict) -> dict:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, tuple):
            value = list(value)
        out[key] = value
    return out


def import_graph(document: dict) -> Graph:
    """Deserialize; validates structure and format version.

    Untrusted documents fail typed: an unknown ``format_version`` raises
    :class:`FormatVersionError`, duplicate node names raise
    :class:`~repro.graph.ir.DuplicateNodeError`, non-string tensor refs
    raise :class:`~repro.graph.ir.TensorRefError`, and the constructed
    graph runs the full structural + signature check before it is
    returned.
    """
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise FormatVersionError(
            f"unsupported format version {version!r}; this reader speaks "
            f"version {FORMAT_VERSION}"
        )
    seen_names: set[str] = set()
    for entry in document.get("nodes", []):
        name = entry.get("name")
        if name in seen_names:
            raise DuplicateNodeError(
                f"document contains two nodes named {name!r}",
                node=name,
            )
        seen_names.add(name)
        for tensor in (*entry.get("inputs", []), *entry.get("outputs", [])):
            if not isinstance(tensor, str) or not tensor:
                raise TensorRefError(
                    f"document node {name!r} references tensor {tensor!r}; "
                    "tensor refs must be non-empty strings",
                    node=name,
                )
    graph = Graph(
        name=document["name"],
        inputs=list(document["inputs"]),
        outputs=list(document["outputs"]),
        initializers=set(document["initializers"]),
        tensor_types={
            name: TensorType(
                shape=_shape_from_json(entry["shape"]),
                dtype=DType[entry["dtype"]],
            )
            for name, entry in document["tensor_types"].items()
        },
        nodes=[
            Node(
                name=entry["name"],
                op_type=entry["op_type"],
                inputs=list(entry["inputs"]),
                outputs=list(entry["outputs"]),
                attrs=_attrs_from_json(entry.get("attrs", {})),
            )
            for entry in document["nodes"]
        ],
    )
    graph.validate(signatures=True)
    return graph


_TUPLE_ATTRS = {"shape", "axes", "pads"}


def _attrs_from_json(attrs: dict) -> dict:
    out = {}
    for key, value in attrs.items():
        if key in _TUPLE_ATTRS and isinstance(value, list):
            value = tuple(value)
        out[key] = value
    return out


def save(graph: Graph, path: str | Path) -> None:
    Path(path).write_text(json.dumps(export_graph(graph), indent=1))


def load(path: str | Path) -> Graph:
    return import_graph(json.loads(Path(path).read_text()))
