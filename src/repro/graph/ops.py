"""Operator registry: shape inference + arithmetic cost for every op.

Each operator the model zoo uses is registered with:

- a **category** the performance model keys efficiency factors on
  (convolution, GEMM, elementwise, ...),
- a **shape-inference rule** mapping input types to output types
  (symbol-aware, so dynamic batch/sequence dims flow through),
- a **FLOP counter** (2 * MACs for linear-algebra ops, per-element costs
  for the rest) used by the roofline and simulator cost models.

Layout convention is NCHW for images and ``(batch, seq, features)`` for
sequences, matching the paper's Table III input sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.graph.ir import Dim, GraphError, Node, Shape, TensorType


class OpError(GraphError):
    """Operator misuse: wrong arity, bad attributes, or shape mismatch."""


def _static(dim: Dim, context: str) -> int:
    if isinstance(dim, str):
        raise OpError(f"{context}: dimension {dim!r} must be static here")
    return dim


def _numel(shape: Shape) -> int:
    count = 1
    for dim in shape:
        count *= _static(dim, "numel")
    return count


def _conv_out(size: Dim, kernel: int, stride: int, pad: int, dilation: int = 1) -> Dim:
    if kernel < 1 or stride < 1 or dilation < 1 or pad < 0:
        raise OpError(
            f"bad window attributes: kernel={kernel} stride={stride} "
            f"pad={pad} dilation={dilation} (kernel/stride/dilation must be "
            ">= 1, pad >= 0)"
        )
    if isinstance(size, str):
        return size  # symbolic spatial dims stay symbolic
    effective = dilation * (kernel - 1) + 1
    out = (size + 2 * pad - effective) // stride + 1
    if out < 1:
        raise OpError(
            f"convolution output collapsed: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


InferFn = Callable[[Node, list[TensorType]], list[TensorType]]
FlopsFn = Callable[[Node, list[TensorType], list[TensorType]], float]


@dataclass(frozen=True)
class OpSpec:
    """Registered behaviour of one operator type."""

    name: str
    category: str
    arity: tuple[int, int]
    """(min_inputs, max_inputs); max of -1 means unbounded."""
    infer: InferFn
    flops: FlopsFn

    def check_arity(self, node: Node) -> None:
        low, high = self.arity
        count = len(node.inputs)
        if count < low or (high != -1 and count > high):
            raise OpError(
                f"{node.op_type} node {node.name!r} takes "
                f"{low}..{'∞' if high == -1 else high} inputs, got {count}"
            )


REGISTRY: dict[str, OpSpec] = {}


def register(
    name: str,
    category: str,
    arity: tuple[int, int],
    infer: InferFn,
    flops: FlopsFn,
) -> None:
    if name in REGISTRY:
        raise OpError(f"operator {name!r} registered twice")
    REGISTRY[name] = OpSpec(
        name=name, category=category, arity=arity, infer=infer, flops=flops
    )


def spec(op_type: str) -> OpSpec:
    if op_type not in REGISTRY:
        raise OpError(f"unknown operator {op_type!r}")
    return REGISTRY[op_type]


# ---------------------------------------------------------------------------
# convolution family
# ---------------------------------------------------------------------------


def _infer_conv2d(node: Node, types: list[TensorType]) -> list[TensorType]:
    data, weight = types[0], types[1]
    if data.rank != 4 or weight.rank != 4:
        raise OpError(f"conv2d wants NCHW data and OIHW weight, got {data.shape} {weight.shape}")
    batch, in_channels, height, width = data.shape
    out_channels, weight_in, k_h, k_w = weight.shape
    groups = node.attr("groups", 1)
    stride = node.attr("stride", 1)
    pad = node.attr("pad", 0)
    pad_h = node.attr("pad_h", pad)
    pad_w = node.attr("pad_w", pad)
    dilation = node.attr("dilation", 1)
    if isinstance(in_channels, int) and isinstance(weight_in, int):
        if in_channels != _static(weight_in, "conv2d") * groups:
            raise OpError(
                f"{node.name}: in_channels {in_channels} != "
                f"weight_in {weight_in} * groups {groups}"
            )
    out_shape = (
        batch,
        out_channels,
        _conv_out(height, _static(k_h, "conv2d"), stride, pad_h, dilation),
        _conv_out(width, _static(k_w, "conv2d"), stride, pad_w, dilation),
    )
    return [TensorType(out_shape, data.dtype)]


def _flops_conv2d(node: Node, types: list[TensorType], outs: list[TensorType]) -> float:
    weight = types[1]
    out = outs[0]
    _out_c, weight_in, k_h, k_w = (
        _static(dim, "conv2d flops") for dim in weight.shape
    )
    macs_per_output = weight_in * k_h * k_w
    return 2.0 * _numel(out.shape) * macs_per_output


register("conv2d", "conv", (2, 3), _infer_conv2d, _flops_conv2d)


def _infer_conv1d(node: Node, types: list[TensorType]) -> list[TensorType]:
    data, weight = types[0], types[1]
    if data.rank != 3 or weight.rank != 3:
        raise OpError(f"conv1d wants NCL data and OIL weight, got {data.shape} {weight.shape}")
    batch, _in_channels, length = data.shape
    out_channels, _weight_in, kernel = weight.shape
    stride = node.attr("stride", 1)
    pad = node.attr("pad", 0)
    out_shape = (
        batch,
        out_channels,
        _conv_out(length, _static(kernel, "conv1d"), stride, pad),
    )
    return [TensorType(out_shape, data.dtype)]


def _flops_conv1d(node: Node, types: list[TensorType], outs: list[TensorType]) -> float:
    weight = types[1]
    _out_c, weight_in, kernel = (_static(dim, "conv1d flops") for dim in weight.shape)
    return 2.0 * _numel(outs[0].shape) * weight_in * kernel


register("conv1d", "conv", (2, 3), _infer_conv1d, _flops_conv1d)


def _infer_conv_transpose2d(node: Node, types: list[TensorType]) -> list[TensorType]:
    data, weight = types[0], types[1]
    batch, _in_c, height, width = data.shape
    _w_in, out_channels, k_h, k_w = weight.shape
    stride = node.attr("stride", 1)
    pad = node.attr("pad", 0)

    if stride < 1 or pad < 0:
        raise OpError(
            f"{node.name}: conv_transpose2d stride must be >= 1 and pad "
            f">= 0, got stride={stride} pad={pad}"
        )

    def _out(size: Dim, kernel: int) -> Dim:
        if isinstance(size, str):
            return size
        return (size - 1) * stride - 2 * pad + kernel

    out_shape = (
        batch,
        out_channels,
        _out(height, _static(k_h, "conv_transpose2d")),
        _out(width, _static(k_w, "conv_transpose2d")),
    )
    return [TensorType(out_shape, data.dtype)]


def _flops_conv_transpose2d(
    node: Node, types: list[TensorType], outs: list[TensorType]
) -> float:
    weight = types[1]
    w_in, _out_c, k_h, k_w = (_static(d, "conv_transpose2d") for d in weight.shape)
    return 2.0 * _numel(types[0].shape) * _static(weight.shape[1], "ct") * k_h * k_w


register(
    "conv_transpose2d", "conv", (2, 3), _infer_conv_transpose2d, _flops_conv_transpose2d
)


# ---------------------------------------------------------------------------
# GEMM family
# ---------------------------------------------------------------------------


def _infer_dense(node: Node, types: list[TensorType]) -> list[TensorType]:
    data, weight = types[0], types[1]
    if weight.rank != 2:
        raise OpError(f"dense weight must be 2-D (out, in), got {weight.shape}")
    out_features, in_features = weight.shape
    last = data.shape[-1]
    if isinstance(last, int) and isinstance(in_features, int) and last != in_features:
        raise OpError(
            f"{node.name}: input features {last} != weight in_features {in_features}"
        )
    return [TensorType(data.shape[:-1] + (out_features,), data.dtype)]


def _flops_dense(node: Node, types: list[TensorType], outs: list[TensorType]) -> float:
    in_features = _static(types[1].shape[1], "dense flops")
    return 2.0 * _numel(outs[0].shape) * in_features


register("dense", "gemm", (2, 3), _infer_dense, _flops_dense)


def _infer_matmul(node: Node, types: list[TensorType]) -> list[TensorType]:
    a, b = types[0], types[1]
    if a.rank < 2 or b.rank < 2:
        raise OpError(f"matmul wants rank >= 2, got {a.shape} x {b.shape}")
    k_a, k_b = a.shape[-1], b.shape[-2]
    if isinstance(k_a, int) and isinstance(k_b, int) and k_a != k_b:
        raise OpError(f"{node.name}: contraction mismatch {a.shape} x {b.shape}")
    batch = a.shape[:-2] if a.rank >= b.rank else b.shape[:-2]
    return [TensorType(batch + (a.shape[-2], b.shape[-1]), a.dtype)]


def _flops_matmul(node: Node, types: list[TensorType], outs: list[TensorType]) -> float:
    k = _static(types[0].shape[-1], "matmul flops")
    return 2.0 * _numel(outs[0].shape) * k


register("matmul", "gemm", (2, 2), _infer_matmul, _flops_matmul)


def _infer_embedding(node: Node, types: list[TensorType]) -> list[TensorType]:
    indices, table = types[0], types[1]
    if table.rank != 2:
        raise OpError(f"embedding table must be 2-D, got {table.shape}")
    return [TensorType(indices.shape + (table.shape[1],), table.dtype)]


def _flops_embedding(node: Node, types: list[TensorType], outs: list[TensorType]) -> float:
    return float(_numel(outs[0].shape))  # a gather: one move per element


register("embedding", "embedding", (2, 2), _infer_embedding, _flops_embedding)


# ---------------------------------------------------------------------------
# elementwise / activation
# ---------------------------------------------------------------------------


def _broadcast_shapes(a: Shape, b: Shape, context: str) -> Shape:
    rank = max(len(a), len(b))
    a_pad = (1,) * (rank - len(a)) + a
    b_pad = (1,) * (rank - len(b)) + b
    out: list[Dim] = []
    for dim_a, dim_b in zip(a_pad, b_pad):
        if dim_a == dim_b:
            out.append(dim_a)
        elif dim_a == 1:
            out.append(dim_b)
        elif dim_b == 1:
            out.append(dim_a)
        elif isinstance(dim_a, str) or isinstance(dim_b, str):
            out.append(dim_a if isinstance(dim_a, str) else dim_b)
        else:
            raise OpError(f"{context}: cannot broadcast {a} with {b}")
    return tuple(out)


def _infer_binary(node: Node, types: list[TensorType]) -> list[TensorType]:
    shape = _broadcast_shapes(types[0].shape, types[1].shape, node.name)
    return [TensorType(shape, types[0].dtype)]


def _flops_per_element(cost: float) -> FlopsFn:
    def _flops(node: Node, types: list[TensorType], outs: list[TensorType]) -> float:
        return cost * _numel(outs[0].shape)

    return _flops


for _binary in ("add", "sub", "mul", "div", "maximum", "minimum", "pow"):
    register(_binary, "elementwise", (2, 2), _infer_binary, _flops_per_element(1.0))


def _infer_unary(node: Node, types: list[TensorType]) -> list[TensorType]:
    return [TensorType(types[0].shape, types[0].dtype)]


for _unary, _cost in (
    ("relu", 1.0),
    ("leaky_relu", 2.0),
    ("identity", 0.0),
    ("sqrt", 4.0),
    ("neg", 1.0),
):
    register(_unary, "elementwise", (1, 1), _infer_unary, _flops_per_element(_cost))

# transcendental activations: SFU work, costed higher per element
for _activation, _cost in (
    ("sigmoid", 4.0),
    ("tanh", 4.0),
    ("gelu", 8.0),
    ("swish", 5.0),
    ("softplus", 5.0),
    ("erf", 6.0),
    ("exp", 4.0),
    ("mish", 8.0),
):
    register(_activation, "activation", (1, 1), _infer_unary, _flops_per_element(_cost))


def _infer_glu(node: Node, types: list[TensorType]) -> list[TensorType]:
    shape = list(types[0].shape)
    axis = node.attr("axis", -1) % len(shape)
    dim = shape[axis]
    if isinstance(dim, int):
        if dim % 2:
            raise OpError(f"GLU axis extent {dim} must be even")
        shape[axis] = dim // 2
    return [TensorType(tuple(shape), types[0].dtype)]


register("glu", "activation", (1, 1), _infer_glu, _flops_per_element(5.0))


def _infer_prelu(node: Node, types: list[TensorType]) -> list[TensorType]:
    data, slope = types[0], types[1]
    if slope.rank != 1:
        raise OpError(f"prelu slope must be per-channel 1-D, got {slope.shape}")
    if (
        data.rank >= 2
        and isinstance(data.shape[1], int)
        and isinstance(slope.shape[0], int)
        and data.shape[1] != slope.shape[0]
    ):
        raise OpError(
            f"{node.name}: slope length {slope.shape[0]} != channels "
            f"{data.shape[1]}"
        )
    return [TensorType(data.shape, data.dtype)]


register("prelu", "activation", (2, 2), _infer_prelu, _flops_per_element(2.0))


def _infer_clip(node: Node, types: list[TensorType]) -> list[TensorType]:
    lo, hi = node.attr("min", 0.0), node.attr("max")
    if hi is None:
        raise OpError(f"{node.name}: clip needs 'max'")
    if hi < lo:
        raise OpError(f"{node.name}: clip max {hi} < min {lo}")
    return [TensorType(types[0].shape, types[0].dtype)]


register("clip", "elementwise", (1, 1), _infer_clip, _flops_per_element(2.0))


def _infer_split(node: Node, types: list[TensorType]) -> list[TensorType]:
    axis = node.attr("axis", 0)
    sections = node.attr("sections")
    if not sections:
        raise OpError(f"{node.name}: split needs 'sections'")
    shape = types[0].shape
    axis = axis % len(shape)
    extent = shape[axis]
    if isinstance(extent, int) and sum(sections) != extent:
        raise OpError(
            f"{node.name}: sections {sections} do not sum to extent {extent}"
        )
    return [
        TensorType(
            tuple(
                section if index == axis else dim
                for index, dim in enumerate(shape)
            ),
            types[0].dtype,
        )
        for section in sections
    ]


register("split", "layout", (1, 1), _infer_split, _flops_per_element(0.0))


# ---------------------------------------------------------------------------
# normalization / softmax / reduce
# ---------------------------------------------------------------------------

register("batch_norm", "norm", (1, 5), _infer_unary, _flops_per_element(2.0))
register("layer_norm", "norm", (1, 3), _infer_unary, _flops_per_element(8.0))
register("softmax", "softmax", (1, 1), _infer_unary, _flops_per_element(6.0))


def _infer_reduce_mean(node: Node, types: list[TensorType]) -> list[TensorType]:
    axes = node.attr("axes")
    if axes is None:
        raise OpError(f"{node.name}: reduce_mean needs 'axes'")
    keepdims = node.attr("keepdims", False)
    shape = list(types[0].shape)
    normalized = sorted(axis % len(shape) for axis in axes)
    for axis in reversed(normalized):
        if keepdims:
            shape[axis] = 1
        else:
            del shape[axis]
    return [TensorType(tuple(shape), types[0].dtype)]


def _flops_reduce(node: Node, types: list[TensorType], outs: list[TensorType]) -> float:
    return float(_numel(types[0].shape))


register("reduce_mean", "reduce", (1, 1), _infer_reduce_mean, _flops_reduce)
register("reduce_max", "reduce", (1, 1), _infer_reduce_mean, _flops_reduce)


def _infer_top_k(node: Node, types: list[TensorType]) -> list[TensorType]:
    k = node.attr("k")
    if not k:
        raise OpError(f"{node.name}: top_k needs attribute 'k'")
    shape = types[0].shape[:-1] + (k,)
    return [TensorType(shape, types[0].dtype), TensorType(shape, types[0].dtype)]


def _flops_top_k(node: Node, types: list[TensorType], outs: list[TensorType]) -> float:
    last = _static(types[0].shape[-1], "top_k")
    rows = _numel(types[0].shape) // last
    # VMM-assisted sort: the relationship matrix costs O(n^2) per row chunk.
    return float(rows) * last * math.ceil(math.log2(max(last, 2)))


register("top_k", "sort", (1, 1), _infer_top_k, _flops_top_k)


# ---------------------------------------------------------------------------
# pooling / resize
# ---------------------------------------------------------------------------


def _infer_pool(node: Node, types: list[TensorType]) -> list[TensorType]:
    data = types[0]
    if data.rank != 4:
        raise OpError(f"pooling wants NCHW, got {data.shape}")
    kernel = node.attr("kernel")
    if kernel is None:
        raise OpError(f"{node.name}: pooling needs 'kernel'")
    stride = node.attr("stride", kernel)
    pad = node.attr("pad", 0)
    batch, channels, height, width = data.shape
    out_shape = (
        batch,
        channels,
        _conv_out(height, kernel, stride, pad),
        _conv_out(width, kernel, stride, pad),
    )
    return [TensorType(out_shape, data.dtype)]


def _flops_pool(node: Node, types: list[TensorType], outs: list[TensorType]) -> float:
    kernel = node.attr("kernel")
    return float(_numel(outs[0].shape)) * kernel * kernel


register("max_pool", "pool", (1, 1), _infer_pool, _flops_pool)
register("avg_pool", "pool", (1, 1), _infer_pool, _flops_pool)


def _infer_global_avg_pool(node: Node, types: list[TensorType]) -> list[TensorType]:
    batch, channels = types[0].shape[0], types[0].shape[1]
    return [TensorType((batch, channels, 1, 1), types[0].dtype)]


register(
    "global_avg_pool", "pool", (1, 1), _infer_global_avg_pool, _flops_reduce
)


def _infer_upsample(node: Node, types: list[TensorType]) -> list[TensorType]:
    scale = node.attr("scale", 2)
    batch, channels, height, width = types[0].shape
    out = (
        batch,
        channels,
        height if isinstance(height, str) else height * scale,
        width if isinstance(width, str) else width * scale,
    )
    return [TensorType(out, types[0].dtype)]


register("upsample", "layout", (1, 1), _infer_upsample, _flops_per_element(1.0))


def _infer_pixel_shuffle(node: Node, types: list[TensorType]) -> list[TensorType]:
    scale = node.attr("scale", 2)
    batch, channels, height, width = types[0].shape
    channels = _static(channels, "pixel_shuffle")
    if channels % (scale * scale):
        raise OpError(f"pixel_shuffle channels {channels} not divisible by {scale}^2")
    out = (
        batch,
        channels // (scale * scale),
        height if isinstance(height, str) else height * scale,
        width if isinstance(width, str) else width * scale,
    )
    return [TensorType(out, types[0].dtype)]


register("pixel_shuffle", "layout", (1, 1), _infer_pixel_shuffle, _flops_per_element(0.0))


# ---------------------------------------------------------------------------
# layout / shape ops
# ---------------------------------------------------------------------------


def _infer_concat(node: Node, types: list[TensorType]) -> list[TensorType]:
    axis = node.attr("axis", 0)
    first = types[0]
    axis = axis % first.rank
    total: Dim = 0
    for tensor_type in types:
        if tensor_type.rank != first.rank:
            raise OpError(f"{node.name}: concat rank mismatch")
        dim = tensor_type.shape[axis]
        if isinstance(dim, str) or isinstance(total, str):
            total = dim if isinstance(dim, str) else total
        else:
            total += dim
    shape = tuple(
        total if index == axis else dim for index, dim in enumerate(first.shape)
    )
    return [TensorType(shape, first.dtype)]


register("concat", "layout", (1, -1), _infer_concat, _flops_per_element(0.0))


def _infer_reshape(node: Node, types: list[TensorType]) -> list[TensorType]:
    shape = node.attr("shape")
    if shape is None:
        raise OpError(f"{node.name}: reshape needs 'shape'")
    shape = tuple(shape)
    if list(shape).count(-1) > 1:
        raise OpError(f"{node.name}: more than one -1 in reshape target {shape}")

    def _split(dims):
        """(product of static dims, sorted symbolic dims)."""
        product, symbols = 1, []
        for dim in dims:
            if isinstance(dim, str):
                symbols.append(dim)
            elif dim != -1:
                product *= dim
        return product, sorted(symbols)

    in_product, in_symbols = _split(types[0].shape)
    out_product, out_symbols = _split(shape)
    if -1 in shape:
        if in_symbols == out_symbols and out_product > 0:
            # Matching symbols cancel, so -1 resolves from the static parts
            # (e.g. ('batch', 8, 32, 32) -> ('batch', -1) gives 8192).
            if in_product % out_product:
                raise OpError(
                    f"{node.name}: cannot reshape {types[0].shape} to {shape}"
                )
            shape = tuple(
                in_product // out_product if dim == -1 else dim for dim in shape
            )
        else:
            # Unresolvable: stand in a fresh symbol so inference can proceed.
            shape = tuple(
                f"{node.name}.dim" if dim == -1 else dim for dim in shape
            )
    elif in_symbols == out_symbols and in_product != out_product:
        raise OpError(f"{node.name}: cannot reshape {types[0].shape} to {shape}")
    return [TensorType(shape, types[0].dtype)]


register("reshape", "layout", (1, 1), _infer_reshape, _flops_per_element(0.0))


def _infer_transpose(node: Node, types: list[TensorType]) -> list[TensorType]:
    axes = node.attr("axes")
    if axes is None:
        raise OpError(f"{node.name}: transpose needs 'axes'")
    rank = types[0].rank
    if sorted(axes) != list(range(rank)):
        raise OpError(
            f"{node.name}: transpose axes {axes} are not a permutation of "
            f"range({rank})"
        )
    shape = tuple(types[0].shape[axis] for axis in axes)
    return [TensorType(shape, types[0].dtype)]


register("transpose", "layout", (1, 1), _infer_transpose, _flops_per_element(0.0))


def _infer_flatten(node: Node, types: list[TensorType]) -> list[TensorType]:
    data = types[0]
    head = data.shape[0]
    if data.is_static:
        tail = _numel(data.shape[1:])
    else:
        static_tail = [dim for dim in data.shape[1:] if isinstance(dim, int)]
        if len(static_tail) == data.rank - 1:
            tail = _numel(tuple(static_tail))
        else:
            tail = "flatten_" + node.name
    return [TensorType((head, tail), data.dtype)]


register("flatten", "layout", (1, 1), _infer_flatten, _flops_per_element(0.0))


def _infer_pad(node: Node, types: list[TensorType]) -> list[TensorType]:
    pads = node.attr("pads")
    if pads is None or len(pads) != 2 * types[0].rank:
        raise OpError(f"{node.name}: pad needs 'pads' of length 2*rank")
    rank = types[0].rank
    shape = tuple(
        dim if isinstance(dim, str) else dim + pads[index] + pads[index + rank]
        for index, dim in enumerate(types[0].shape)
    )
    return [TensorType(shape, types[0].dtype)]


register("pad", "layout", (1, 1), _infer_pad, _flops_per_element(0.0))


def _infer_slice_op(node: Node, types: list[TensorType]) -> list[TensorType]:
    axis = node.attr("axis", 0)
    start = node.attr("start", 0)
    stop = node.attr("stop")
    if stop is None:
        raise OpError(f"{node.name}: slice needs 'stop'")
    shape = list(types[0].shape)
    axis = axis % len(shape)
    shape[axis] = stop - start
    return [TensorType(tuple(shape), types[0].dtype)]


register("slice", "layout", (1, 1), _infer_slice_op, _flops_per_element(0.0))


def infer_node(node: Node, input_types: list[TensorType]) -> list[TensorType]:
    """Shape-infer one node after arity validation."""
    op_spec = spec(node.op_type)
    op_spec.check_arity(node)
    return op_spec.infer(node, input_types)


def node_flops(
    node: Node, input_types: list[TensorType], output_types: list[TensorType]
) -> float:
    """Arithmetic cost of one node in FLOPs (or elementary ops)."""
    return spec(node.op_type).flops(node, input_types, output_types)
