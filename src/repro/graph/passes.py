"""Graph optimization passes and the pass manager (TopsInference pipeline).

The standard pipeline :func:`optimize` runs:

1. ``eliminate_identities`` — drop identity/dropout-style no-ops,
2. ``dead_code_elimination`` — remove nodes whose outputs nobody reads,
3. ``fuse_operators`` — the expert-rule fusion of :mod:`repro.graph.fusion`.

Passes mutate the graph in place and return it, so they compose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.graph.fusion import FusionReport, fuse_operators
from repro.graph.ir import Graph


def eliminate_identities(graph: Graph) -> Graph:
    """Remove identity nodes, rewiring consumers to the identity's input.

    Identity chains (``a -> b -> c``) collapse to the chain's ultimate
    source in one pass: collect every ``alias -> source`` edge, then
    rewrite each consumer input through the chain — the same final graph
    the one-removal-per-sweep loop produced, without rescanning every node
    per removed identity.
    """
    alias_to_source: dict = {}
    kept = []
    for node in graph.nodes:
        if node.op_type == "identity":
            alias_to_source[node.outputs[0]] = node.inputs[0]
        else:
            kept.append(node)
    if not alias_to_source:
        return graph

    limit = len(alias_to_source)

    def resolve(tensor):
        hops = 0
        while tensor in alias_to_source and hops <= limit:
            tensor = alias_to_source[tensor]
            hops += 1
        return tensor

    for node in kept:
        node.inputs = [resolve(tensor) for tensor in node.inputs]
    graph.outputs = [resolve(tensor) for tensor in graph.outputs]
    for alias in alias_to_source:
        graph.tensor_types.pop(alias, None)
    graph.nodes = kept
    return graph


def dead_code_elimination(graph: Graph) -> Graph:
    """Drop nodes that contribute to no graph output.

    Liveness is the least fixpoint of "a node with a live output makes all
    its inputs live", which the backward worklist below reaches in one
    linear sweep — the same set the naive repeated forward sweep converges
    to, without its quadratic restarts.
    """
    live: set[str] = set(graph.outputs)
    producers: dict[str, list] = {}
    for node in graph.nodes:
        for output in node.outputs:
            producers.setdefault(output, []).append(node)
    worklist = list(live)
    visited: set[int] = set()
    while worklist:
        tensor = worklist.pop()
        for node in producers.get(tensor, ()):
            if id(node) in visited:
                continue
            visited.add(id(node))
            for source in node.inputs:
                if source not in live:
                    live.add(source)
                    worklist.append(source)
    graph.nodes = [
        node for node in graph.nodes if any(output in live for output in node.outputs)
    ]
    return graph


@dataclass
class PassManager:
    """Ordered pipeline of graph passes with a run report."""

    passes: list[Callable[[Graph], Graph]] = field(default_factory=list)
    reports: dict[str, object] = field(default_factory=dict)

    def add(self, name: str, pass_fn: Callable[[Graph], Graph]) -> "PassManager":
        pass_fn.__pass_name__ = name  # type: ignore[attr-defined]
        self.passes.append(pass_fn)
        return self

    def run(self, graph: Graph) -> Graph:
        for pass_fn in self.passes:
            name = getattr(pass_fn, "__pass_name__", pass_fn.__name__)
            result = pass_fn(graph)
            if isinstance(result, tuple):
                graph, report = result
                self.reports[name] = report
            else:
                graph = result
        graph.validate()
        return graph


def optimize(graph: Graph, fusion: bool = True) -> tuple[Graph, FusionReport]:
    """The default TopsInference pipeline; returns (graph, fusion report)."""
    manager = PassManager()
    manager.add("identities", eliminate_identities)
    manager.add("dce", dead_code_elimination)
    graph = manager.run(graph)
    report = fuse_operators(graph, enable=fusion)
    graph.validate()
    return graph, report
