"""Graph optimization passes and the pass manager (TopsInference pipeline).

The standard pipeline :func:`optimize` runs:

1. ``eliminate_identities`` — drop identity/dropout-style no-ops,
2. ``dead_code_elimination`` — remove nodes whose outputs nobody reads,
3. ``fuse_operators`` — the expert-rule fusion of :mod:`repro.graph.fusion`.

Passes mutate the graph in place and return it, so they compose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.graph.fusion import FusionReport, fuse_operators
from repro.graph.ir import Graph


def eliminate_identities(graph: Graph) -> Graph:
    """Remove identity nodes, rewiring consumers to the identity's input."""
    removed = True
    while removed:
        removed = False
        for node in list(graph.nodes):
            if node.op_type != "identity":
                continue
            source = node.inputs[0]
            alias = node.outputs[0]
            for other in graph.nodes:
                other.inputs = [
                    source if tensor == alias else tensor for tensor in other.inputs
                ]
            graph.outputs = [
                source if tensor == alias else tensor for tensor in graph.outputs
            ]
            graph.nodes.remove(node)
            graph.tensor_types.pop(alias, None)
            removed = True
    return graph


def dead_code_elimination(graph: Graph) -> Graph:
    """Drop nodes that contribute to no graph output."""
    live: set[str] = set(graph.outputs)
    changed = True
    while changed:
        changed = False
        for node in graph.nodes:
            if any(output in live for output in node.outputs):
                new_live = set(node.inputs) - live
                if new_live:
                    live |= new_live
                    changed = True
    graph.nodes = [
        node for node in graph.nodes if any(output in live for output in node.outputs)
    ]
    return graph


@dataclass
class PassManager:
    """Ordered pipeline of graph passes with a run report."""

    passes: list[Callable[[Graph], Graph]] = field(default_factory=list)
    reports: dict[str, object] = field(default_factory=dict)

    def add(self, name: str, pass_fn: Callable[[Graph], Graph]) -> "PassManager":
        pass_fn.__pass_name__ = name  # type: ignore[attr-defined]
        self.passes.append(pass_fn)
        return self

    def run(self, graph: Graph) -> Graph:
        for pass_fn in self.passes:
            name = getattr(pass_fn, "__pass_name__", pass_fn.__name__)
            result = pass_fn(graph)
            if isinstance(result, tuple):
                graph, report = result
                self.reports[name] = report
            else:
                graph = result
        graph.validate()
        return graph


def optimize(graph: Graph, fusion: bool = True) -> tuple[Graph, FusionReport]:
    """The default TopsInference pipeline; returns (graph, fusion report)."""
    manager = PassManager()
    manager.add("identities", eliminate_identities)
    manager.add("dce", dead_code_elimination)
    graph = manager.run(graph)
    report = fuse_operators(graph, enable=fusion)
    graph.validate()
    return graph, report
