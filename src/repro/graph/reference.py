"""Reference executor: numerically evaluate a graph with numpy.

This is the CPU oracle of the paper's §VI-A ("We use CPU's DNN inference
results as the reference") — every operator in the IR gets executable
semantics, so the compiler pipeline can be verified end to end:

- fusion must not change results (``tests/integration`` property-checks
  ``evaluate(optimize(g)) == evaluate(g)``),
- the INT8 quantization pass measures real accuracy loss against it,
- generated VLIW kernels compare against it element-wise.

Transcendental activations are evaluated through the
:class:`~repro.engines.sfu.SpecialFunctionUnit`, so the functional hardware
model is in the reference loop, exactly as it is on the chip.

Weights are materialized deterministically from the tensor name and a seed
(no trained checkpoints offline; latency/energy never depend on values, and
accuracy experiments only need *consistent* values).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.engines.sfu import SpecialFunctionUnit
from repro.graph.fusion import fused_members
from repro.graph.ir import Graph, GraphError, Node


class EvaluationError(GraphError):
    """An operator cannot be evaluated with the given inputs."""


class NumericsError(EvaluationError):
    """``strict_numerics`` tripped: an op produced NaN/Inf outputs."""

    def __init__(self, message: str, node: str | None = None) -> None:
        super().__init__(message)
        self.node = node


def _weight_rng(name: str, seed: int) -> np.random.Generator:
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def materialize_weight(name: str, shape: tuple[int, ...], seed: int = 0) -> np.ndarray:
    """Deterministic pseudo-trained weights: Kaiming-ish scaled normals."""
    rng = _weight_rng(name, seed)
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else max(shape[0], 1)
    scale = 1.0 / np.sqrt(max(fan_in, 1))
    if name.endswith((".b", ".shift", ".mean")):
        return rng.normal(scale=0.01, size=shape)
    if name.endswith((".scale",)):
        return 1.0 + rng.normal(scale=0.05, size=shape)
    if name.endswith((".var",)):
        return 1.0 + np.abs(rng.normal(scale=0.05, size=shape))
    return rng.normal(scale=scale, size=shape)


def _im2col(data: np.ndarray, k_h: int, k_w: int, stride: int,
            pad_h: int, pad_w: int) -> tuple[np.ndarray, int, int]:
    batch, channels, height, width = data.shape
    padded = np.pad(data, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)))
    out_h = (height + 2 * pad_h - k_h) // stride + 1
    out_w = (width + 2 * pad_w - k_w) // stride + 1
    strides = padded.strides
    windows = np.lib.stride_tricks.as_strided(
        padded,
        shape=(batch, channels, out_h, out_w, k_h, k_w),
        strides=(
            strides[0], strides[1],
            strides[2] * stride, strides[3] * stride,
            strides[2], strides[3],
        ),
        writeable=False,
    )
    # -> (batch, out_h, out_w, channels * k_h * k_w)
    columns = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h, out_w, channels * k_h * k_w
    )
    return columns, out_h, out_w


class ReferenceExecutor:
    """Evaluates graphs on numpy, one node at a time.

    Repeated runs of one executor are cheap: the topological schedule
    (which needs a networkx sort), fused-member flattening and the
    per-op-type handler lookup are all resolved once and reused, and
    materialized weights are cached. Pass ``weight_cache`` to share one
    weight dictionary between several executors over the same graph and
    seed (the calibration/verification sweep in :mod:`repro.quant` does
    this) — weights are deterministic in (name, seed), so sharing never
    changes results.

    ``flatten_fused=False`` executes fused nodes through the dedicated
    :meth:`_op_fused` handler instead of splicing members into the
    schedule — the mode the fusion equivalence guard
    (:mod:`repro.graph.equivalence`) exercises, because it keeps "what the
    fused kernel computes" as a distinct, doctorable code path.

    ``strict_numerics=True`` checks every op's outputs for NaN/Inf and
    raises :class:`NumericsError` naming the node; with an ``obs`` hub
    attached, trips also increment
    ``reference_numeric_guard_trips_total``.
    """

    def __init__(
        self,
        graph: Graph,
        seed: int = 0,
        weight_cache: dict[str, np.ndarray] | None = None,
        flatten_fused: bool = True,
        strict_numerics: bool = False,
        obs=None,
    ) -> None:
        self.graph = graph
        self.seed = seed
        self.flatten_fused = flatten_fused
        self.strict_numerics = strict_numerics
        self.obs = obs
        self.sfu = SpecialFunctionUnit()
        self._weights: dict[str, np.ndarray] = (
            weight_cache if weight_cache is not None else {}
        )
        self._schedule: list[Node] | None = None
        self._handlers: dict[str, object] = {}

    # -- weights ------------------------------------------------------------

    def weight(self, name: str) -> np.ndarray:
        if name not in self._weights:
            tensor_type = self.graph.tensor_type(name)
            self._weights[name] = materialize_weight(
                name, tuple(tensor_type.shape), self.seed
            )
        return self._weights[name]

    def set_weight(self, name: str, value: np.ndarray) -> None:
        self._weights[name] = np.asarray(value, dtype=np.float64)

    # -- top level ---------------------------------------------------------

    def run(self, **inputs: np.ndarray) -> dict[str, np.ndarray]:
        """Evaluate the whole graph; returns the graph outputs by name."""
        missing = [name for name in self.graph.inputs if name not in inputs]
        if missing:
            raise EvaluationError(f"missing graph inputs: {missing}")
        env: dict[str, np.ndarray] = {
            name: np.asarray(value, dtype=np.float64)
            for name, value in inputs.items()
        }
        for member in self._plan():
            self._evaluate(member, env)
        return {name: env[name] for name in self.graph.outputs}

    def _plan(self) -> list[Node]:
        """Execution schedule, topo-sorted once per executor.

        With ``flatten_fused`` (the default) fused-group members are
        spliced inline; otherwise fused nodes stay whole and dispatch to
        :meth:`_op_fused`.
        """
        if self._schedule is None:
            if self.flatten_fused:
                self._schedule = [
                    member
                    for node in self.graph.topological_nodes()
                    for member in fused_members(node)
                ]
            else:
                self._schedule = list(self.graph.topological_nodes())
        return self._schedule

    def _handler(self, op_type: str):
        """Cached ``_op_<type>`` lookup (None when unimplemented)."""
        if op_type not in self._handlers:
            self._handlers[op_type] = getattr(self, f"_op_{op_type}", None)
        return self._handlers[op_type]

    def _fetch(self, name: str, env: dict[str, np.ndarray]) -> np.ndarray:
        if name in env:
            return env[name]
        if name in self.graph.initializers:
            return self.weight(name)
        raise EvaluationError(f"tensor {name!r} not available")

    # -- operator semantics ---------------------------------------------------

    def _evaluate(self, node: Node, env: dict[str, np.ndarray]) -> None:
        handler = self._handler(node.op_type)
        if handler is None:
            raise EvaluationError(f"no reference semantics for {node.op_type!r}")
        operands = [self._fetch(name, env) for name in node.inputs]
        results = handler(node, operands)
        if not isinstance(results, tuple):
            results = (results,)
        for name, value in zip(node.outputs, results):
            value = np.asarray(value, dtype=np.float64)
            if self.strict_numerics and not np.all(np.isfinite(value)):
                if self.obs is not None:
                    self.obs.metrics.counter(
                        "reference_numeric_guard_trips_total",
                        "strict_numerics NaN/Inf detections",
                    ).inc(op=node.op_type)
                raise NumericsError(
                    f"node {node.name!r} ({node.op_type}) produced "
                    f"non-finite values in output {name!r}",
                    node=node.name,
                )
            env[name] = value

    def _op_fused(self, node: Node, operands):
        """Evaluate a fused group as one unit (``flatten_fused=False``).

        The default semantics replay the members in order inside a scratch
        environment, so results are bit-identical to the flattened
        schedule; tests monkeypatch this method to model a miscompiled
        fused kernel and exercise the equivalence guard's fallback.
        """
        scratch = dict(zip(node.inputs, operands))
        for member in fused_members(node):
            self._evaluate(member, scratch)
        return tuple(scratch[name] for name in node.outputs)

    # convolution family ------------------------------------------------------

    def _op_conv2d(self, node: Node, operands):
        data, weight = operands[0], operands[1]
        bias = operands[2] if len(operands) > 2 else None
        groups = node.attr("groups", 1)
        stride = node.attr("stride", 1)
        pad = node.attr("pad", 0)
        pad_h = node.attr("pad_h", pad)
        pad_w = node.attr("pad_w", pad)
        out_c, in_per_group, k_h, k_w = weight.shape
        batch, in_c, _h, _w = data.shape
        outputs = []
        out_per_group = out_c // groups
        for group in range(groups):
            data_slice = data[:, group * in_per_group:(group + 1) * in_per_group]
            weight_slice = weight[group * out_per_group:(group + 1) * out_per_group]
            columns, out_h, out_w = _im2col(data_slice, k_h, k_w, stride, pad_h, pad_w)
            flat_weight = weight_slice.reshape(out_per_group, -1)
            # weight layout must match im2col's (channels, kh, kw) order
            result = columns @ flat_weight.T
            outputs.append(result.transpose(0, 3, 1, 2))
        out = np.concatenate(outputs, axis=1)
        if bias is not None:
            out = out + bias.reshape(1, -1, 1, 1)
        return out

    def _op_conv1d(self, node: Node, operands):
        data, weight = operands[0], operands[1]
        bias = operands[2] if len(operands) > 2 else None
        stride = node.attr("stride", 1)
        pad = node.attr("pad", 0)
        out_c, weight_in, kernel = weight.shape
        batch, in_c, _length = data.shape
        if weight_in == 1 and out_c == in_c:
            # depthwise: one filter per channel
            data4 = data[:, :, None, :]
            weight4 = weight[:, :, None, :]
            node4 = Node(node.name, "conv2d", node.inputs, node.outputs,
                         {"stride": stride, "pad_h": 0, "pad_w": pad,
                          "groups": in_c})
            out = self._op_conv2d(node4, [data4, weight4])
            return out[:, :, 0, :] + (bias.reshape(1, -1, 1) if bias is not None else 0.0)
        data4 = data[:, :, None, :]
        weight4 = weight[:, :, None, :]
        node4 = Node(node.name, "conv2d", node.inputs, node.outputs,
                     {"stride": stride, "pad_h": 0, "pad_w": pad})
        out = self._op_conv2d(node4, [data4, weight4])
        out = out[:, :, 0, :]
        if bias is not None:
            out = out + bias.reshape(1, -1, 1)
        return out

    def _op_conv_transpose2d(self, node: Node, operands):
        data, weight = operands[0], operands[1]
        stride = node.attr("stride", 1)
        pad = node.attr("pad", 0)
        batch, in_c, height, width = data.shape
        _in, out_c, k_h, k_w = weight.shape
        out_h = (height - 1) * stride - 2 * pad + k_h
        out_w = (width - 1) * stride - 2 * pad + k_w
        out = np.zeros((batch, out_c, out_h + 2 * pad, out_w + 2 * pad))
        for row in range(height):
            for col in range(width):
                patch = np.einsum("bi,iokl->bokl", data[:, :, row, col], weight)
                out[:, :, row * stride:row * stride + k_h,
                    col * stride:col * stride + k_w] += patch
        if pad:
            out = out[:, :, pad:-pad, pad:-pad]
        return out

    # GEMM family ----------------------------------------------------------

    def _op_dense(self, node: Node, operands):
        data, weight = operands[0], operands[1]
        out = data @ weight.T
        if len(operands) > 2:
            out = out + operands[2]
        return out

    def _op_matmul(self, node: Node, operands):
        return operands[0] @ operands[1]

    def _op_embedding(self, node: Node, operands):
        indices, table = operands
        return table[indices.astype(np.int64) % table.shape[0]]

    # elementwise / activations -------------------------------------------

    def _op_add(self, node, operands):
        return operands[0] + operands[1]

    def _op_sub(self, node, operands):
        return operands[0] - operands[1]

    def _op_mul(self, node, operands):
        return operands[0] * operands[1]

    def _op_div(self, node, operands):
        return operands[0] / operands[1]

    def _op_maximum(self, node, operands):
        return np.maximum(operands[0], operands[1])

    def _op_minimum(self, node, operands):
        return np.minimum(operands[0], operands[1])

    def _op_pow(self, node, operands):
        return operands[0] ** operands[1]

    def _op_relu(self, node, operands):
        return np.maximum(operands[0], 0.0)

    def _op_leaky_relu(self, node, operands):
        slope = node.attr("slope", 0.1)
        return np.where(operands[0] > 0, operands[0], slope * operands[0])

    def _op_identity(self, node, operands):
        return operands[0]

    def _op_neg(self, node, operands):
        return -operands[0]

    def _op_sqrt(self, node, operands):
        return self.sfu.evaluate("sqrt", np.maximum(operands[0], 0.0))

    def _op_exp(self, node, operands):
        return self.sfu.evaluate("exp", operands[0])

    def _op_sigmoid(self, node, operands):
        return self.sfu.sigmoid(operands[0])

    def _op_tanh(self, node, operands):
        return self.sfu.tanh(operands[0])

    def _op_gelu(self, node, operands):
        return self.sfu.gelu(operands[0])

    def _op_swish(self, node, operands):
        return self.sfu.swish(operands[0])

    def _op_softplus(self, node, operands):
        return self.sfu.softplus(operands[0])

    def _op_erf(self, node, operands):
        return self.sfu.evaluate("erf", operands[0])

    def _op_mish(self, node, operands):
        return operands[0] * self.sfu.tanh(self.sfu.softplus(operands[0]))

    def _op_glu(self, node, operands):
        axis = node.attr("axis", -1)
        gate, value = np.split(operands[0], 2, axis=axis)
        return gate * self.sfu.sigmoid(value)

    def _op_prelu(self, node, operands):
        data, slope = operands
        shape = (1, slope.shape[0]) + (1,) * (data.ndim - 2)
        per_channel = slope.reshape(shape) if data.ndim >= 2 else slope
        return np.where(data > 0, data, per_channel * data)

    def _op_clip(self, node, operands):
        return np.clip(operands[0], node.attr("min", 0.0), node.attr("max"))

    def _op_reduce_max(self, node, operands):
        axes = tuple(node.attr("axes"))
        return operands[0].max(axis=axes, keepdims=node.attr("keepdims", False))

    def _op_split(self, node, operands):
        axis = node.attr("axis", 0)
        sections = node.attr("sections")
        offsets = np.cumsum(sections)[:-1]
        return tuple(np.split(operands[0], offsets, axis=axis))

    # normalization / reductions --------------------------------------------

    def _op_batch_norm(self, node, operands):
        data = operands[0]
        channels = data.shape[1]
        scale = operands[1] if len(operands) > 1 else np.ones(channels)
        shift = operands[2] if len(operands) > 2 else np.zeros(channels)
        mean = operands[3] if len(operands) > 3 else np.zeros(channels)
        var = operands[4] if len(operands) > 4 else np.ones(channels)
        reshape = (1, channels) + (1,) * (data.ndim - 2)
        return (
            (data - mean.reshape(reshape))
            / np.sqrt(var.reshape(reshape) + 1e-5)
            * scale.reshape(reshape)
            + shift.reshape(reshape)
        )

    def _op_layer_norm(self, node, operands):
        data = operands[0]
        mean = data.mean(axis=-1, keepdims=True)
        var = data.var(axis=-1, keepdims=True)
        out = (data - mean) / np.sqrt(var + 1e-5)
        if len(operands) > 1:
            out = out * operands[1]
        if len(operands) > 2:
            out = out + operands[2]
        return out

    def _op_softmax(self, node, operands):
        return self.sfu.softmax(operands[0], axis=-1)

    def _op_reduce_mean(self, node, operands):
        axes = tuple(node.attr("axes"))
        return operands[0].mean(axis=axes, keepdims=node.attr("keepdims", False))

    def _op_top_k(self, node, operands):
        k = node.attr("k")
        data = operands[0]
        order = np.argsort(-data, axis=-1, kind="stable")[..., :k]
        values = np.take_along_axis(data, order, axis=-1)
        return values, order.astype(np.float64)

    # pooling / layout ---------------------------------------------------------

    def _pool(self, node, data, reducer):
        kernel = node.attr("kernel")
        stride = node.attr("stride", kernel)
        pad = node.attr("pad", 0)
        if pad:
            fill = -np.inf if reducer is np.max else 0.0
            data = np.pad(
                data, ((0, 0), (0, 0), (pad, pad), (pad, pad)),
                constant_values=fill,
            )
        batch, channels, height, width = data.shape
        out_h = (height - kernel) // stride + 1
        out_w = (width - kernel) // stride + 1
        strides = data.strides
        windows = np.lib.stride_tricks.as_strided(
            data,
            shape=(batch, channels, out_h, out_w, kernel, kernel),
            strides=(strides[0], strides[1], strides[2] * stride,
                     strides[3] * stride, strides[2], strides[3]),
            writeable=False,
        )
        return reducer(windows, axis=(4, 5))

    def _op_max_pool(self, node, operands):
        return self._pool(node, operands[0], np.max)

    def _op_avg_pool(self, node, operands):
        return self._pool(node, operands[0], np.mean)

    def _op_global_avg_pool(self, node, operands):
        return operands[0].mean(axis=(2, 3), keepdims=True)

    def _op_upsample(self, node, operands):
        scale = node.attr("scale", 2)
        return operands[0].repeat(scale, axis=2).repeat(scale, axis=3)

    def _op_pixel_shuffle(self, node, operands):
        scale = node.attr("scale", 2)
        batch, channels, height, width = operands[0].shape
        out_c = channels // (scale * scale)
        reshaped = operands[0].reshape(batch, out_c, scale, scale, height, width)
        return reshaped.transpose(0, 1, 4, 2, 5, 3).reshape(
            batch, out_c, height * scale, width * scale
        )

    def _op_concat(self, node, operands):
        return np.concatenate(operands, axis=node.attr("axis", 0))

    def _op_reshape(self, node, operands):
        shape = tuple(node.attr("shape"))
        if any(isinstance(dim, str) for dim in shape):
            raise EvaluationError(f"{node.name}: bind symbolic dims before eval")
        return operands[0].reshape(shape)

    def _op_transpose(self, node, operands):
        return np.transpose(operands[0], tuple(node.attr("axes")))

    def _op_flatten(self, node, operands):
        return operands[0].reshape(operands[0].shape[0], -1)

    def _op_pad(self, node, operands):
        pads = node.attr("pads")
        rank = operands[0].ndim
        widths = [(pads[index], pads[index + rank]) for index in range(rank)]
        return np.pad(operands[0], widths)

    def _op_slice(self, node, operands):
        axis = node.attr("axis", 0)
        index: list = [slice(None)] * operands[0].ndim
        index[axis] = slice(node.attr("start", 0), node.attr("stop"))
        return operands[0][tuple(index)]
