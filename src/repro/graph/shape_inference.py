"""Shape inference over the graph IR (paper §V-B: dynamic shapes supported).

:func:`infer_shapes` walks the graph in topological order, filling
``graph.tensor_types`` for every intermediate. Symbolic dims propagate
unchanged, so one inference pass serves all batch sizes; :func:`bind_shapes`
specializes a symbolic graph to concrete values (what the runtime does when
a dynamic tensor arrives).
"""

from __future__ import annotations

from repro.graph.ir import Graph, GraphError, SignatureError, UntypedTensorError
from repro.graph.ops import infer_node


def infer_shapes(graph: Graph) -> Graph:
    """Populate every tensor's type, in place; returns the graph.

    Failures always surface typed: an op rule that raises anything other
    than a :class:`GraphError` (e.g. a ``TypeError`` from arithmetic on an
    unbound symbolic dim reaching a static-only op) is re-raised as a
    :class:`~repro.graph.ir.SignatureError` naming the node.
    """
    graph.validate()
    for node in graph.topological_nodes():
        input_types = []
        for tensor in node.inputs:
            if tensor not in graph.tensor_types:
                raise UntypedTensorError(
                    f"node {node.name!r} input {tensor!r} has no type; "
                    "declare graph inputs and initializers first",
                    node=node.name,
                    tensor=tensor,
                )
            input_types.append(graph.tensor_types[tensor])
        try:
            output_types = infer_node(node, input_types)
        except GraphError:
            raise
        except Exception as error:
            raise SignatureError(
                f"node {node.name!r} ({node.op_type}): shape inference "
                f"crashed on input types "
                f"{[str(t) for t in input_types]}: {error!r} — likely an "
                "unbound symbolic dim reaching a static-only rule",
                node=node.name,
            ) from error
        if len(output_types) != len(node.outputs):
            raise SignatureError(
                f"node {node.name!r} declares {len(node.outputs)} outputs "
                f"but inference produced {len(output_types)}",
                node=node.name,
            )
        for name, tensor_type in zip(node.outputs, output_types):
            existing = graph.tensor_types.get(name)
            if existing is not None and existing != tensor_type:
                raise GraphError(
                    f"tensor {name!r} re-inferred as {tensor_type}, "
                    f"conflicting with {existing}"
                )
            graph.tensor_types[name] = tensor_type
    return graph


def bind_shapes(graph: Graph, **bindings: int) -> Graph:
    """Specialize symbolic dimensions (e.g. ``batch=8``) and re-infer."""
    bound = graph.bind(bindings)
    # Drop intermediate types so inference recomputes them from the bound
    # inputs/initializers (stale symbolic intermediates would conflict).
    produced = {output for node in bound.nodes for output in node.outputs}
    bound.tensor_types = {
        name: tensor_type
        for name, tensor_type in bound.tensor_types.items()
        if name not in produced
    }
    return infer_shapes(bound)


def dynamic_symbols(graph: Graph) -> set[str]:
    """All symbolic dimension names appearing anywhere in the graph."""
    symbols: set[str] = set()
    for tensor_type in graph.tensor_types.values():
        for dim in tensor_type.shape:
            if isinstance(dim, str):
                symbols.add(dim)
    return symbols
