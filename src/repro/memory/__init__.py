"""Memory hierarchy substrate: L1/L2/L3 levels, ports, HBM, icache."""

from repro.memory.allocator import AffinityAllocator, Placement, PlacementError
from repro.memory.hbm import HBM2, HBM2E, HbmConfig, HbmModel
from repro.memory.hierarchy import (
    Allocation,
    HierarchyStats,
    MemoryHierarchy,
    MemoryLevel,
    OutOfMemoryError,
)
from repro.memory.icache import FetchResult, InstructionBuffer
from repro.memory.ports import PortAccess, PortedL2

__all__ = [
    "AffinityAllocator", "Allocation", "FetchResult", "HBM2", "HBM2E",
    "HbmConfig", "HbmModel", "HierarchyStats", "InstructionBuffer",
    "MemoryHierarchy", "MemoryLevel", "OutOfMemoryError", "Placement",
    "PlacementError", "PortAccess", "PortedL2",
]
