"""Affinity-aware shared-memory allocation (paper §V-B, Table II row 6).

"TopsEngine allocates shared L2 memory wisely to take advantage of the
memory affinity and improve data access efficiency": each of the 4 L2 ports
is bonded to one core of the processing group, so a tensor consumed mostly
by core *c* should live in core *c*'s affine bank.

:class:`AffinityAllocator` packs tensor placements over the banks of one L2
slice. With affinity enabled it honours the consumer hint when the bank has
room, spilling to the least-loaded bank otherwise; disabled (the DTU 1.0
behaviour / ablation), it round-robins blindly, so cross-bank penalties show
up in the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.ports import PortedL2


class PlacementError(RuntimeError):
    """No bank can hold the requested tensor."""


@dataclass(frozen=True)
class Placement:
    """Resolved home of one tensor inside an L2 slice."""

    tensor: str
    bank: int
    nbytes: int
    affine: bool
    """Whether the placement matches the consumer's bonded bank."""


@dataclass
class AffinityAllocator:
    """Places tensors into L2 banks for one processing group."""

    ported_l2: PortedL2
    affinity_enabled: bool = True
    _bank_used: list[int] = field(default_factory=list)
    _placements: dict[str, Placement] = field(default_factory=dict)
    _round_robin: int = 0

    def __post_init__(self) -> None:
        self._bank_used = [0] * self.ported_l2.banks

    @property
    def bank_capacity_bytes(self) -> int:
        return self.ported_l2.level.capacity_bytes // self.ported_l2.banks

    def bank_free_bytes(self, bank: int) -> int:
        return self.bank_capacity_bytes - self._bank_used[bank]

    def place(self, tensor: str, nbytes: int, consumer_core: int) -> Placement:
        """Choose a bank for ``tensor`` consumed mainly by ``consumer_core``."""
        if tensor in self._placements:
            raise PlacementError(f"{tensor!r} already placed")
        if nbytes > self.bank_capacity_bytes:
            raise PlacementError(
                f"{tensor!r} ({nbytes} B) exceeds bank capacity "
                f"{self.bank_capacity_bytes} B"
            )
        preferred = self.ported_l2.bank_of_core(consumer_core)
        bank = self._choose_bank(preferred, nbytes)
        self._bank_used[bank] += nbytes
        placement = Placement(
            tensor=tensor, bank=bank, nbytes=nbytes, affine=(bank == preferred)
        )
        self._placements[tensor] = placement
        return placement

    def _choose_bank(self, preferred: int, nbytes: int) -> int:
        if self.affinity_enabled:
            if self.bank_free_bytes(preferred) >= nbytes:
                return preferred
            candidates = sorted(
                range(self.ported_l2.banks),
                key=lambda bank: self._bank_used[bank],
            )
        else:
            candidates = [
                (self._round_robin + offset) % self.ported_l2.banks
                for offset in range(self.ported_l2.banks)
            ]
            self._round_robin = (self._round_robin + 1) % self.ported_l2.banks
        for bank in candidates:
            if self.bank_free_bytes(bank) >= nbytes:
                return bank
        raise PlacementError(f"no bank has {nbytes} free bytes")

    def release(self, tensor: str) -> None:
        placement = self._placements.pop(tensor, None)
        if placement is None:
            raise PlacementError(f"release of unplaced tensor {tensor!r}")
        self._bank_used[placement.bank] -= placement.nbytes

    def lookup(self, tensor: str) -> Placement:
        if tensor not in self._placements:
            raise PlacementError(f"unknown tensor {tensor!r}")
        return self._placements[tensor]

    def access_time_ns(self, tensor: str, core: int, nbytes: int | None = None) -> float:
        """Unloaded L2 access time for ``core`` reaching ``tensor``."""
        placement = self.lookup(tensor)
        size = placement.nbytes if nbytes is None else nbytes
        return self.ported_l2.access_time_ns(core, placement.bank, size)

    def affine_fraction(self) -> float:
        """Share of placed bytes living in their consumer's affine bank."""
        total = sum(p.nbytes for p in self._placements.values())
        if total == 0:
            return 1.0
        affine = sum(p.nbytes for p in self._placements.values() if p.affine)
        return affine / total
