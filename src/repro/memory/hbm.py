"""HBM device model: HBM2 (DTU 1.0) and HBM2E (DTU 2.0).

The paper's only architectural statement is the 1.6x bandwidth step from
512 GB/s HBM2 to 819 GB/s HBM2E at unchanged 16 GB capacity (§IV, Table I).
This module adds the well-known first-order behaviours any bandwidth-bound
DNN study depends on:

- peak bandwidth is split across independent channels,
- small requests do not amortize the row-activation overhead, so effective
  bandwidth ramps with request size toward the peak,
- concurrent streams share the channels fairly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HbmConfig:
    """Static parameters of one HBM stack pair."""

    name: str
    capacity_gb: int
    peak_bandwidth_gbps: float
    channels: int = 16
    access_granularity_bytes: int = 256
    """Burst size below which a request wastes row bandwidth."""
    row_overhead_ns: float = 30.0


HBM2 = HbmConfig(name="HBM2", capacity_gb=16, peak_bandwidth_gbps=512.0)
HBM2E = HbmConfig(name="HBM2E", capacity_gb=16, peak_bandwidth_gbps=819.0)


class HbmModel:
    """Effective-bandwidth calculator for an HBM configuration."""

    def __init__(self, config: HbmConfig) -> None:
        self.config = config

    @property
    def channel_bandwidth_gbps(self) -> float:
        return self.config.peak_bandwidth_gbps / self.config.channels

    def efficiency(self, request_bytes: int) -> float:
        """Fraction of peak bandwidth a request of this size sustains.

        A request spanning many access granules amortizes the per-row
        overhead; tiny requests approach the granularity floor. The curve is
        ``n / (n + 1)`` in granules — 50 % at one granule, >95 % beyond ~19.
        """
        if request_bytes <= 0:
            raise ValueError(f"request of {request_bytes} bytes")
        granules = request_bytes / self.config.access_granularity_bytes
        return granules / (granules + 1.0)

    def effective_bandwidth_gbps(self, request_bytes: int, streams: int = 1) -> float:
        """Bandwidth one of ``streams`` equal concurrent requesters sees."""
        if streams < 1:
            raise ValueError(f"streams must be >= 1, got {streams}")
        usable_channels = max(1, self.config.channels // streams)
        share = usable_channels * self.channel_bandwidth_gbps
        if streams <= self.config.channels:
            # Channels divide exactly or nearly; cap at a fair share of peak.
            share = min(share, self.config.peak_bandwidth_gbps / streams)
        return share * self.efficiency(request_bytes)

    def transfer_time_ns(self, request_bytes: int, streams: int = 1) -> float:
        """Latency + occupancy of one request under the efficiency model."""
        bandwidth = self.effective_bandwidth_gbps(request_bytes, streams)
        return self.config.row_overhead_ns + request_bytes / bandwidth
