"""The 3-level memory hierarchy of the DTU (paper §IV-B, Fig. 5).

Each :class:`MemoryLevel` couples *capacity accounting* (allocations fail
loudly when a level overflows — the constraint the tiling auto-tuner works
against) with a *timed transfer model* (port arbitration + latency +
bandwidth) for the performance simulator.

Levels by convention:

- **L1** — per-core local data buffer (1 MB on DTU 2.0).
- **L2** — per-processing-group shared memory (8 MB slice, 4 ports).
- **L3** — HBM (16 GB; 819 GB/s HBM2E on DTU 2.0, 512 GB/s HBM2 on 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MemoryLevelConfig
from repro.sim.kernel import Resource, Simulator, Timeout


class OutOfMemoryError(RuntimeError):
    """An allocation exceeded a memory level's capacity."""


@dataclass
class Allocation:
    """A live region inside one memory level."""

    name: str
    nbytes: int
    bank: int = 0


class MemoryLevel:
    """One level of the hierarchy: capacity + ports + timing."""

    def __init__(
        self,
        sim: Simulator,
        config: MemoryLevelConfig,
        name: str | None = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.name = name or config.name
        self.ports = Resource(sim, capacity=config.ports, name=f"{self.name}.ports")
        self._allocations: dict[str, Allocation] = {}
        self.bytes_transferred = 0
        #: FaultInjector when an ECC campaign is attached (see repro.faults);
        #: None keeps the transfer path bit-identical to a fault-free build.
        self.faults = None

    # -- capacity accounting ----------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.config.capacity_bytes

    @property
    def used_bytes(self) -> int:
        return sum(alloc.nbytes for alloc in self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, name: str, nbytes: int, bank: int = 0) -> Allocation:
        if name in self._allocations:
            raise OutOfMemoryError(f"{self.name}: {name!r} already allocated")
        if nbytes < 0:
            raise ValueError(f"negative allocation size {nbytes}")
        if nbytes > self.free_bytes:
            raise OutOfMemoryError(
                f"{self.name}: cannot allocate {nbytes} bytes "
                f"({self.free_bytes} free of {self.capacity_bytes})"
            )
        allocation = Allocation(name=name, nbytes=nbytes, bank=bank)
        self._allocations[name] = allocation
        return allocation

    def free(self, name: str) -> None:
        if name not in self._allocations:
            raise OutOfMemoryError(f"{self.name}: free of unknown region {name!r}")
        del self._allocations[name]

    def lookup(self, name: str) -> Allocation:
        if name not in self._allocations:
            raise OutOfMemoryError(f"{self.name}: unknown region {name!r}")
        return self._allocations[name]

    def reset(self) -> None:
        self._allocations.clear()

    # -- timing model -------------------------------------------------------

    def transfer_time_ns(self, nbytes: int) -> float:
        """Unloaded service time for one transfer through one port."""
        # GB/s numerically equals bytes/ns.
        return self.config.latency_ns + nbytes / self.config.bandwidth_gbps

    def transfer(self, nbytes: int):
        """Simulation process: move ``nbytes`` through one port.

        Contends for a port (FIFO), then occupies it for the service time.
        With a fault injector attached, each transfer may additionally hit
        an ECC event: correctable errors pay the scrub-and-retry latency
        while still holding the port; uncorrectable errors are queued as
        fatal for the enclosing launch. Yields from inside a simulator
        process.
        """
        grant = self.ports.request()
        yield grant
        try:
            yield Timeout(self.transfer_time_ns(nbytes))
            if self.faults is not None:
                penalty_ns = self.faults.ecc_outcome(self.name, self.sim.now)
                if penalty_ns > 0:
                    yield Timeout(penalty_ns)
            self.bytes_transferred += nbytes
        finally:
            self.ports.release()


@dataclass
class HierarchyStats:
    """Traffic summary across the hierarchy after a simulation run."""

    l1_bytes: int
    l2_bytes: int
    l3_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.l1_bytes + self.l2_bytes + self.l3_bytes


class MemoryHierarchy:
    """L1 (per core) + L2 (per group) + shared L3 for one chip instance."""

    def __init__(
        self,
        sim: Simulator,
        l1_config: MemoryLevelConfig,
        l2_config: MemoryLevelConfig,
        l3_config: MemoryLevelConfig,
        cores: int,
        groups: int,
    ) -> None:
        self.sim = sim
        self.l1 = [
            MemoryLevel(sim, l1_config, name=f"L1.core{core}") for core in range(cores)
        ]
        self.l2 = [
            MemoryLevel(sim, l2_config, name=f"L2.group{group}")
            for group in range(groups)
        ]
        self.l3 = MemoryLevel(sim, l3_config, name="L3")

    def stats(self) -> HierarchyStats:
        return HierarchyStats(
            l1_bytes=sum(level.bytes_transferred for level in self.l1),
            l2_bytes=sum(level.bytes_transferred for level in self.l2),
            l3_bytes=self.l3.bytes_transferred,
        )
