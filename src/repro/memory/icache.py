"""Instruction buffer with cache mode and user-controlled prefetch (§IV-B).

"DTU 2.0 enables instruction cache and provides specific instructions to the
programmers for controlling kernel code prefetch. [...] By inserting the
prefetch instructions, the kernel code of the upcoming operator is loaded in
advance to avoid performance penalties. Besides, it solves the problem of
loading extremely large kernels that exceed the capacity of the instruction
buffer. On cache misses, the instruction buffer triggers kernel code loading
automatically."

Model: an LRU cache over kernel ids. ``prefetch`` starts a background load
that completes at ``now + load_time``; a later ``fetch`` pays only the
remaining time. Kernels larger than the buffer stream in segments — the
first buffer-full must be resident before execution starts, the rest streams
during execution (charged as the overflow fraction of the load time, the
behaviour cache mode enables).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class FetchResult:
    """Outcome of one kernel-code fetch."""

    stall_ns: float
    hit: bool
    prefetched: bool


class InstructionBuffer:
    """Per-core instruction buffer, optionally in cache mode."""

    def __init__(
        self,
        capacity_bytes: int,
        load_bandwidth_gbps: float,
        load_latency_ns: float = 120.0,
        cache_mode: bool = True,
        prefetch_enabled: bool = True,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("instruction buffer needs positive capacity")
        self.capacity_bytes = capacity_bytes
        self.load_bandwidth_gbps = load_bandwidth_gbps
        self.load_latency_ns = load_latency_ns
        self.cache_mode = cache_mode
        self.prefetch_enabled = prefetch_enabled
        self._resident: OrderedDict[str, int] = OrderedDict()
        self._prefetch_done_at: dict[str, float] = {}
        self.hits = 0
        self.misses = 0
        self.prefetch_hits = 0

    # -- internals -----------------------------------------------------------

    def _load_time_ns(self, nbytes: int) -> float:
        return self.load_latency_ns + nbytes / self.load_bandwidth_gbps

    def _resident_bytes(self) -> int:
        return sum(self._resident.values())

    def _make_room(self, nbytes: int) -> None:
        budget = min(nbytes, self.capacity_bytes)
        while self._resident and self._resident_bytes() + budget > self.capacity_bytes:
            self._resident.popitem(last=False)  # evict LRU

    def _install(self, kernel_id: str, nbytes: int) -> None:
        self._make_room(nbytes)
        self._resident[kernel_id] = min(nbytes, self.capacity_bytes)
        self._resident.move_to_end(kernel_id)

    # -- public API ------------------------------------------------------------

    def prefetch(self, kernel_id: str, nbytes: int, now_ns: float) -> float:
        """Issue a background load; returns its completion time.

        A no-op (returns ``now_ns``) when prefetch is disabled or the kernel
        is already resident in cache mode.
        """
        if not self.prefetch_enabled:
            return now_ns
        if self.cache_mode and kernel_id in self._resident:
            return now_ns
        done = now_ns + self._load_time_ns(nbytes)
        previous = self._prefetch_done_at.get(kernel_id)
        if previous is None or previous > done:
            self._prefetch_done_at[kernel_id] = done
        return self._prefetch_done_at[kernel_id]

    def fetch(self, kernel_id: str, nbytes: int, now_ns: float) -> FetchResult:
        """Make the kernel executable; returns the stall this fetch costs."""
        overflow = max(0, nbytes - self.capacity_bytes)
        # Overflow streams in during execution once cache mode handles the
        # wrap-around; without cache mode the whole body reloads serially.
        if self.cache_mode:
            overflow_stall = 0.0
            first_fill = min(nbytes, self.capacity_bytes)
        else:
            overflow_stall = overflow / self.load_bandwidth_gbps
            first_fill = min(nbytes, self.capacity_bytes)

        if self.cache_mode and kernel_id in self._resident:
            self.hits += 1
            self._resident.move_to_end(kernel_id)
            return FetchResult(stall_ns=0.0, hit=True, prefetched=False)

        done_at = self._prefetch_done_at.pop(kernel_id, None)
        if done_at is not None:
            remaining = max(0.0, done_at - now_ns)
            self.prefetch_hits += 1
            if self.cache_mode:
                self._install(kernel_id, nbytes)
            return FetchResult(stall_ns=remaining, hit=False, prefetched=True)

        self.misses += 1
        stall = self._load_time_ns(first_fill) + overflow_stall
        if self.cache_mode:
            self._install(kernel_id, nbytes)
        return FetchResult(stall_ns=stall, hit=False, prefetched=False)

    def invalidate(self) -> None:
        self._resident.clear()
        self._prefetch_done_at.clear()
