"""Multi-port L2 access with core-port affinity (paper §IV-B, §V-B).

"the L2 memory equips with 4 parallel read/write ports. Therefore, 4 compute
cores in the processing group can access L2 memory without interference."
And §V-B: "L2 memory's 4 read/write ports are bonded to 4 computer cores in
each processing group. The latency of accessing different memory locations
varies for compute cores through their dedicated memory ports."

The model: the L2 slice is divided into as many banks as ports; a core's
dedicated port reaches its *affine* bank at base latency, while a cross-bank
access pays :attr:`cross_bank_penalty_ns`. With a single port (DTU 1.0, or
the L2-ports ablation) every core contends on the same port resource.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.hierarchy import MemoryLevel
from repro.sim.kernel import Timeout


@dataclass(frozen=True)
class PortAccess:
    """Resolved routing for one L2 access."""

    port: int
    affine: bool
    extra_latency_ns: float


class PortedL2:
    """Routing + timing wrapper over one processing group's L2 slice."""

    def __init__(
        self,
        level: MemoryLevel,
        cores_per_group: int,
        cross_bank_penalty_ns: float = 8.0,
    ) -> None:
        self.level = level
        self.cores_per_group = cores_per_group
        self.cross_bank_penalty_ns = cross_bank_penalty_ns

    @property
    def banks(self) -> int:
        return self.level.config.ports

    def bank_of_core(self, core_index: int) -> int:
        """The bank whose port is bonded to ``core_index`` (within group)."""
        if not 0 <= core_index < self.cores_per_group:
            raise ValueError(
                f"core index {core_index} outside group of {self.cores_per_group}"
            )
        return core_index % self.banks

    def route(self, core_index: int, bank: int) -> PortAccess:
        """How core ``core_index`` reaches data living in ``bank``."""
        if not 0 <= bank < self.banks:
            raise ValueError(f"bank {bank} out of range [0, {self.banks})")
        home = self.bank_of_core(core_index)
        affine = bank == home
        return PortAccess(
            port=home,
            affine=affine,
            extra_latency_ns=0.0 if affine else self.cross_bank_penalty_ns,
        )

    def access(self, core_index: int, bank: int, nbytes: int):
        """Simulation process: one core's read/write of an L2 region."""
        routing = self.route(core_index, bank)
        grant = self.level.ports.request()
        yield grant
        try:
            service = self.level.transfer_time_ns(nbytes) + routing.extra_latency_ns
            yield Timeout(service)
            self.level.bytes_transferred += nbytes
        finally:
            self.level.ports.release()

    def access_time_ns(self, core_index: int, bank: int, nbytes: int) -> float:
        """Unloaded access time (no port contention) for planning."""
        routing = self.route(core_index, bank)
        return self.level.transfer_time_ns(nbytes) + routing.extra_latency_ns
