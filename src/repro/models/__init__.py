"""Model zoo: the 10 evaluation DNNs of paper Table III."""

from repro.models.zoo import MODEL_NAMES, TABLE_III, ZooEntry, build, entry

__all__ = ["MODEL_NAMES", "TABLE_III", "ZooEntry", "build", "entry"]
