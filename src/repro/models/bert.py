"""BERT-Large (Table III: NLP, Tensorflow, sequence length 384).

Devlin et al. (2018): 24 post-LN transformer encoder layers, hidden 1024,
16 heads, FFN 4096, plus token/position embeddings and the QA span head
(SQuAD configuration, matching the seq-384 input the paper uses).
The sequence length is symbolic by default — the dynamic-shape path of
§V-B ("DNNs become more dynamic") flows through shape inference until the
runtime binds it.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph
from repro.models.layers import transformer_encoder_layer

HIDDEN = 1024
LAYERS = 24
HEADS = 16
FFN_INNER = 4096
VOCAB = 30522


def build_bert_large(batch: int | str = "batch", seq: int = 384) -> Graph:
    """340 M parameters, ~450 GFLOPs at sequence length 384."""
    builder = GraphBuilder("bert_large")
    tokens = builder.input("tokens", (batch, seq))
    embedded = builder.embedding(tokens, VOCAB, HIDDEN, name="word_embed")
    positions = builder.weight("position_embed", (1, seq, HIDDEN))
    out = builder.add(embedded, positions)
    out = builder.layer_norm(out)
    for _ in range(LAYERS):
        out = transformer_encoder_layer(builder, out, HIDDEN, HEADS, FFN_INNER)
    span_logits = builder.dense(out, 2, name="qa_head")
    return builder.finish([span_logits])
