"""CenterNet (Table III: object detection, Pytorch, 3x512x512).

Keypoint-triplet detector of Duan et al. (2019): ResNet-50 backbone,
three transposed-convolution upsampling stages back to stride 4, then the
center-heatmap / width-height / offset heads. The heatmap head ends in a
sigmoid followed by the top-k peak extraction — the operator the DTU 2.0
matrix engine's sorting facility accelerates (§IV-A1).
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph
from repro.models.layers import resnet50_backbone


def _deconv_stage(builder: GraphBuilder, data: str, channels: int) -> str:
    node_name = builder._fresh("conv_transpose2d")
    in_channels = builder.graph.tensor_type(data).shape[1]
    weight = builder.weight(f"{node_name}.w", (in_channels, channels, 4, 4))
    out = builder.node(
        "conv_transpose2d",
        [data, weight],
        attrs={"stride": 2, "pad": 1},
        name=node_name,
    )
    out = builder.batch_norm(out)
    return builder.relu(out)


def _head(builder: GraphBuilder, data: str, channels: int, outputs: int) -> str:
    out = builder.conv2d(data, channels, 3, pad=1)
    out = builder.relu(out)
    return builder.conv2d(out, outputs, 1)


def build_centernet(batch: int | str = "batch", image: int = 512,
                    classes: int = 80, top_k: int = 100) -> Graph:
    """ResNet-50 CenterNet, ~70 GFLOPs at 512^2."""
    builder = GraphBuilder("centernet")
    data = builder.input("image", (batch, 3, image, image))
    taps = resnet50_backbone(builder, data)
    out = taps["C5"]
    for channels in (256, 128, 64):
        out = _deconv_stage(builder, out, channels)

    heatmap = _head(builder, out, 64, classes)
    heatmap = builder.sigmoid(heatmap)
    size_head = _head(builder, out, 64, 2)
    offset_head = _head(builder, out, 64, 2)

    # Peak extraction: flatten the heatmap and take the top-K responses.
    heat_type = builder.graph.tensor_type(heatmap)
    flattened = builder.reshape(
        heatmap, (heat_type.shape[0], -1) if isinstance(heat_type.shape[0], int)
        else heat_type.shape[:1] + (classes * (image // 4) * (image // 4),)
    )
    scores, _indices = builder.top_k(flattened, top_k)
    return builder.finish([scores, size_head, offset_head])
