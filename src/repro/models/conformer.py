"""Conformer (Table III: speech recognition, Pytorch, input 80x401).

Gulati et al. (2020), the "large" ASR encoder: conv subsampling of the
80-mel x 401-frame spectrogram to ~1/4 rate, then 17 conformer blocks —
half-step FFN, multi-head self-attention, the convolution module (pointwise
conv + GLU + depthwise conv1d + swish) and a second half FFN. The depthwise
conv1d is a canonical tall-and-skinny matrix workload (§III), exercising
the fine-grained VMM patterns.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph

HIDDEN = 512
LAYERS = 17
HEADS = 8
FFN_INNER = 2048
DEPTHWISE_KERNEL = 31


def _half_ffn(builder: GraphBuilder, data: str) -> str:
    """Macaron half-step FFN: 0.5 * FFN(x) + x, with layer norm."""
    out = builder.layer_norm(data)
    out = builder.dense(out, FFN_INNER)
    out = builder.swish(out)
    out = builder.dense(out, HIDDEN)
    half = builder.weight(builder._fresh("half_scale"), (1,))
    out = builder.mul(out, half)
    out = builder.add(out, data)
    return out


def _conv_module(builder: GraphBuilder, data: str) -> str:
    """Pointwise conv -> GLU -> depthwise conv1d -> BN -> swish -> pointwise."""
    out = builder.layer_norm(data)
    # (batch, seq, hidden) -> (batch, hidden, seq) for conv1d
    out = builder.transpose(out, (0, 2, 1))
    out = builder.conv1d(out, 2 * HIDDEN, 1)
    # GLU halves the channel dim (axis 1 in NCL layout)
    out = builder.glu(out, axis=1)
    # Depthwise conv: one independent 1-D filter per channel. Our conv1d is
    # dense; a grouped variant is modelled as HIDDEN-channel conv with a
    # 1-channel-deep kernel via explicit weight shape.
    node_name = builder._fresh("depthwise_conv1d")
    weight = builder.weight(f"{node_name}.w", (HIDDEN, 1, DEPTHWISE_KERNEL))
    out = builder.node(
        "conv1d",
        [out, weight],
        attrs={"stride": 1, "pad": DEPTHWISE_KERNEL // 2},
        name=node_name,
    )
    out = builder.batch_norm(out)
    out = builder.swish(out)
    out = builder.conv1d(out, HIDDEN, 1)
    out = builder.transpose(out, (0, 2, 1))
    return builder.add(out, data)


def _conformer_block(builder: GraphBuilder, data: str) -> str:
    out = _half_ffn(builder, data)
    attention = builder.multi_head_attention(out, HEADS)
    out = builder.add(out, attention)
    out = _conv_module(builder, out)
    out = _half_ffn(builder, out)
    return builder.layer_norm(out)


def build_conformer(batch: int | str = "batch", frames: int = 401,
                    mels: int = 80, vocab: int = 1024) -> Graph:
    """~118 M parameters; encoder for 401 frames of 80-mel features."""
    builder = GraphBuilder("conformer")
    spectrogram = builder.input("spectrogram", (batch, 1, mels, frames))
    # Conv subsampling: two stride-2 3x3 convs -> ~1/4 time rate.
    out = builder.conv2d(spectrogram, HIDDEN // 4, 3, stride=2, pad=1)
    out = builder.relu(out)
    out = builder.conv2d(out, HIDDEN // 4, 3, stride=2, pad=1)
    out = builder.relu(out)
    shape = builder.graph.tensor_type(out).shape
    _batch, channels, mel_sub, time_sub = shape
    out = builder.transpose(out, (0, 3, 1, 2))
    out = builder.reshape(out, (_batch, time_sub, channels * mel_sub))
    out = builder.dense(out, HIDDEN)
    for _ in range(LAYERS):
        out = _conformer_block(builder, out)
    logits = builder.dense(out, vocab, name="ctc_head")
    probabilities = builder.softmax(logits)
    return builder.finish([probabilities])
