"""Inception v4 (Table III: image classification, Tensorflow, 3x299x299).

Faithful block inventory of Szegedy et al. (AAAI'17): stem, 4x Inception-A,
Reduction-A, 7x Inception-B, Reduction-B, 3x Inception-C, average pool,
classifier. Branch channel widths follow the paper; asymmetric 1xN/Nx1
convolutions are kept (they are the tall-skinny GEMMs §III highlights).
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph
from repro.models.layers import conv_bn_act


def _conv(builder: GraphBuilder, data: str, channels: int, k_h: int, k_w: int,
          stride: int = 1, pad_h: int | None = None, pad_w: int | None = None) -> str:
    """Possibly-asymmetric conv via explicit weight shape."""
    if k_h == k_w:
        return conv_bn_act(builder, data, channels, k_h, stride=stride,
                           pad=k_h // 2 if pad_h is None else pad_h)
    # Asymmetric: emit a raw conv2d node with a rectangular kernel.
    node_name = builder._fresh("conv2d")
    in_channels = builder.graph.tensor_type(data).shape[1]
    weight = builder.weight(f"{node_name}.w", (channels, in_channels, k_h, k_w))
    out = builder.node(
        "conv2d", [data, weight],
        attrs={"stride": stride, "pad_h": k_h // 2, "pad_w": k_w // 2},
        name=node_name,
    )
    out = builder.batch_norm(out)
    return builder.relu(out)


def _stem(builder: GraphBuilder, data: str) -> str:
    out = conv_bn_act(builder, data, 32, 3, stride=2, pad=0)
    out = conv_bn_act(builder, out, 32, 3, pad=0)
    out = conv_bn_act(builder, out, 64, 3)
    pooled = builder.max_pool(out, 3, stride=2, pad=1)
    conv = conv_bn_act(builder, out, 96, 3, stride=2)
    out = builder.concat([pooled, conv], axis=1)
    left = conv_bn_act(builder, out, 64, 1)
    left = conv_bn_act(builder, left, 96, 3, pad=0)
    right = conv_bn_act(builder, out, 64, 1)
    right = _conv(builder, right, 64, 7, 1)
    right = _conv(builder, right, 64, 1, 7)
    right = conv_bn_act(builder, right, 96, 3, pad=0)
    out = builder.concat([left, right], axis=1)
    conv = conv_bn_act(builder, out, 192, 3, stride=2, pad=1)
    pooled = builder.max_pool(out, 3, stride=2, pad=1)
    return builder.concat([conv, pooled], axis=1)


def _inception_a(builder: GraphBuilder, data: str) -> str:
    b0 = conv_bn_act(builder, data, 96, 1)
    b1 = conv_bn_act(builder, data, 64, 1)
    b1 = conv_bn_act(builder, b1, 96, 3)
    b2 = conv_bn_act(builder, data, 64, 1)
    b2 = conv_bn_act(builder, b2, 96, 3)
    b2 = conv_bn_act(builder, b2, 96, 3)
    b3 = builder.avg_pool(data, 3, stride=1, pad=1)
    b3 = conv_bn_act(builder, b3, 96, 1)
    return builder.concat([b0, b1, b2, b3], axis=1)


def _reduction_a(builder: GraphBuilder, data: str) -> str:
    b0 = conv_bn_act(builder, data, 384, 3, stride=2, pad=1)
    b1 = conv_bn_act(builder, data, 192, 1)
    b1 = conv_bn_act(builder, b1, 224, 3)
    b1 = conv_bn_act(builder, b1, 256, 3, stride=2, pad=1)
    b2 = builder.max_pool(data, 3, stride=2, pad=1)
    return builder.concat([b0, b1, b2], axis=1)


def _inception_b(builder: GraphBuilder, data: str) -> str:
    b0 = conv_bn_act(builder, data, 384, 1)
    b1 = conv_bn_act(builder, data, 192, 1)
    b1 = _conv(builder, b1, 224, 1, 7)
    b1 = _conv(builder, b1, 256, 7, 1)
    b2 = conv_bn_act(builder, data, 192, 1)
    b2 = _conv(builder, b2, 192, 7, 1)
    b2 = _conv(builder, b2, 224, 1, 7)
    b2 = _conv(builder, b2, 224, 7, 1)
    b2 = _conv(builder, b2, 256, 1, 7)
    b3 = builder.avg_pool(data, 3, stride=1, pad=1)
    b3 = conv_bn_act(builder, b3, 128, 1)
    return builder.concat([b0, b1, b2, b3], axis=1)


def _reduction_b(builder: GraphBuilder, data: str) -> str:
    b0 = conv_bn_act(builder, data, 192, 1)
    b0 = conv_bn_act(builder, b0, 192, 3, stride=2, pad=1)
    b1 = conv_bn_act(builder, data, 256, 1)
    b1 = _conv(builder, b1, 256, 1, 7)
    b1 = _conv(builder, b1, 320, 7, 1)
    b1 = conv_bn_act(builder, b1, 320, 3, stride=2, pad=1)
    b2 = builder.max_pool(data, 3, stride=2, pad=1)
    return builder.concat([b0, b1, b2], axis=1)


def _inception_c(builder: GraphBuilder, data: str) -> str:
    b0 = conv_bn_act(builder, data, 256, 1)
    b1 = conv_bn_act(builder, data, 384, 1)
    b1_left = _conv(builder, b1, 256, 1, 3)
    b1_right = _conv(builder, b1, 256, 3, 1)
    b2 = conv_bn_act(builder, data, 384, 1)
    b2 = _conv(builder, b2, 448, 1, 3)
    b2 = _conv(builder, b2, 512, 3, 1)
    b2_left = _conv(builder, b2, 256, 3, 1)
    b2_right = _conv(builder, b2, 256, 1, 3)
    b3 = builder.avg_pool(data, 3, stride=1, pad=1)
    b3 = conv_bn_act(builder, b3, 256, 1)
    return builder.concat([b0, b1_left, b1_right, b2_left, b2_right, b3], axis=1)


def build_inception_v4(batch: int | str = "batch", image: int = 299) -> Graph:
    """42.7 M parameters, ~12.3 GFLOPs per 299^2 image."""
    builder = GraphBuilder("inception_v4")
    out = builder.input("image", (batch, 3, image, image))
    out = _stem(builder, out)
    for _ in range(4):
        out = _inception_a(builder, out)
    out = _reduction_a(builder, out)
    for _ in range(7):
        out = _inception_b(builder, out)
    out = _reduction_b(builder, out)
    for _ in range(3):
        out = _inception_c(builder, out)
    out = builder.global_avg_pool(out)
    out = builder.flatten(out)
    out = builder.dense(out, 1000)
    out = builder.softmax(out)
    return builder.finish([out])
