"""Shared layer builders for the model zoo.

Common composite blocks (conv+BN+activation, residual bottlenecks,
transformer encoder layers...) used across the 10 Table III networks.
Post-ReLU feature maps are annotated with an activation-sparsity estimate
(``sparsity`` node attr) so the sparse-DMA path has realistic inputs —
ReLU zeroes roughly half of a centred activation distribution.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder

#: typical fraction of zeros in post-ReLU CNN activations
RELU_SPARSITY = 0.45


def _mark_sparsity(builder: GraphBuilder, tensor: str, sparsity: float) -> None:
    """Tag the producing node so lowering can plan compressed DMA."""
    producers = builder.graph.producers()
    node = producers.get(tensor)
    if node is not None:
        node.attrs["sparsity"] = sparsity


def conv_bn_act(
    builder: GraphBuilder,
    data: str,
    out_channels: int,
    kernel: int,
    stride: int = 1,
    pad: int | None = None,
    groups: int = 1,
    activation: str = "relu",
) -> str:
    """conv2d + batch_norm + activation — the CNN workhorse."""
    if pad is None:
        pad = kernel // 2
    out = builder.conv2d(
        data, out_channels, kernel, stride=stride, pad=pad, groups=groups, bias=False
    )
    out = builder.batch_norm(out)
    if activation:
        out = getattr(builder, activation)(out)
        # Only hard ReLU produces genuinely sparse maps; leaky variants map
        # negatives to small non-zeros the codec cannot drop.
        if activation == "relu":
            _mark_sparsity(builder, out, RELU_SPARSITY)
    return out


def residual_block(
    builder: GraphBuilder,
    data: str,
    channels: int,
    stride: int = 1,
    bottleneck: bool = True,
    expansion: int = 4,
) -> str:
    """ResNet v1.5 block: stride lives on the 3x3 (the "v1.5" change)."""
    identity = data
    in_channels = builder.graph.tensor_type(data).shape[1]
    out_channels = channels * expansion if bottleneck else channels
    if bottleneck:
        out = conv_bn_act(builder, data, channels, 1)
        out = conv_bn_act(builder, out, channels, 3, stride=stride)
        out = conv_bn_act(builder, out, out_channels, 1, activation="")
    else:
        out = conv_bn_act(builder, data, channels, 3, stride=stride)
        out = conv_bn_act(builder, out, channels, 3, activation="")
    if stride != 1 or in_channels != out_channels:
        identity = conv_bn_act(
            builder, data, out_channels, 1, stride=stride, activation=""
        )
    out = builder.add(out, identity)
    out = builder.relu(out)
    _mark_sparsity(builder, out, RELU_SPARSITY)
    return out


def resnet50_backbone(builder: GraphBuilder, data: str) -> dict[str, str]:
    """ResNet-50 v1.5 trunk; returns the C2..C5 feature pyramid taps."""
    out = conv_bn_act(builder, data, 64, 7, stride=2, pad=3)
    out = builder.max_pool(out, 3, stride=2, pad=1)
    taps: dict[str, str] = {}
    for tap, (channels, blocks, stride) in {
        "C2": (64, 3, 1),
        "C3": (128, 4, 2),
        "C4": (256, 6, 2),
        "C5": (512, 3, 2),
    }.items():
        for index in range(blocks):
            out = residual_block(
                builder, out, channels, stride=stride if index == 0 else 1
            )
        taps[tap] = out
    return taps


def ffn_block(
    builder: GraphBuilder,
    data: str,
    hidden: int,
    inner: int,
    activation: str = "gelu",
) -> str:
    """Transformer position-wise FFN with residual + layer norm."""
    out = builder.dense(data, inner)
    out = getattr(builder, activation)(out)
    out = builder.dense(out, hidden)
    out = builder.add(out, data)
    return builder.layer_norm(out)


def transformer_encoder_layer(
    builder: GraphBuilder,
    data: str,
    hidden: int,
    heads: int,
    inner: int,
    activation: str = "gelu",
) -> str:
    """Post-LN encoder layer (BERT style)."""
    attention = builder.multi_head_attention(data, heads)
    out = builder.add(attention, data)
    out = builder.layer_norm(out)
    return ffn_block(builder, out, hidden, inner, activation=activation)
