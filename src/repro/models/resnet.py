"""ResNet-50 v1.5 (Table III: image classification, Pytorch, 3x224x224).

The "v1.5" variant puts the stride-2 downsampling on each bottleneck's 3x3
convolution instead of the 1x1 — exactly what
:func:`repro.models.layers.residual_block` builds.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph
from repro.models.layers import resnet50_backbone


def build_resnet50(batch: int | str = "batch", image: int = 224) -> Graph:
    """25.6 M parameters, ~4.1 GFLOPs per 224^2 image."""
    builder = GraphBuilder("resnet50_v1_5")
    data = builder.input("image", (batch, 3, image, image))
    taps = resnet50_backbone(builder, data)
    out = builder.global_avg_pool(taps["C5"])
    out = builder.flatten(out)
    out = builder.dense(out, 1000)
    out = builder.softmax(out)
    return builder.finish([out])
