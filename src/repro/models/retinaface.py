"""RetinaFace (Table III: object detection, Pytorch, 3x640x640).

Single-stage dense face localiser (Deng et al. 2019): ResNet-50 backbone,
3-level FPN, SSH context modules per level, and per-level class / box /
landmark heads (2 + 4 + 10 outputs per anchor, 2 anchors per position).
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph
from repro.models.layers import conv_bn_act, resnet50_backbone

_FPN_CHANNELS = 256
_ANCHORS = 2


def _fpn(builder: GraphBuilder, taps: dict[str, str]) -> list[str]:
    """Top-down pyramid over C3..C5."""
    lateral5 = conv_bn_act(builder, taps["C5"], _FPN_CHANNELS, 1)
    lateral4 = conv_bn_act(builder, taps["C4"], _FPN_CHANNELS, 1)
    lateral3 = conv_bn_act(builder, taps["C3"], _FPN_CHANNELS, 1)
    up4 = builder.upsample(lateral5, 2)
    merged4 = builder.add(lateral4, up4)
    merged4 = conv_bn_act(builder, merged4, _FPN_CHANNELS, 3)
    up3 = builder.upsample(merged4, 2)
    merged3 = builder.add(lateral3, up3)
    merged3 = conv_bn_act(builder, merged3, _FPN_CHANNELS, 3)
    return [merged3, merged4, lateral5]


def _ssh(builder: GraphBuilder, data: str) -> str:
    """SSH context module: 3x3 + two stacked-3x3 branches, concatenated."""
    half = _FPN_CHANNELS // 2
    quarter = _FPN_CHANNELS // 4
    branch3 = conv_bn_act(builder, data, half, 3, activation="")
    context = conv_bn_act(builder, data, quarter, 3)
    branch5 = conv_bn_act(builder, context, quarter, 3, activation="")
    context7 = conv_bn_act(builder, context, quarter, 3)
    branch7 = conv_bn_act(builder, context7, quarter, 3, activation="")
    out = builder.concat([branch3, branch5, branch7], axis=1)
    return builder.relu(out)


def build_retinaface(batch: int | str = "batch", image: int = 640) -> Graph:
    """ResNet-50 RetinaFace, ~37 GFLOPs at 640^2."""
    builder = GraphBuilder("retinaface")
    data = builder.input("image", (batch, 3, image, image))
    taps = resnet50_backbone(builder, data)
    levels = _fpn(builder, taps)
    outputs: list[str] = []
    for level in levels:
        context = _ssh(builder, level)
        class_head = builder.conv2d(context, _ANCHORS * 2, 1)
        box_head = builder.conv2d(context, _ANCHORS * 4, 1)
        landmark_head = builder.conv2d(context, _ANCHORS * 10, 1)
        outputs.extend([class_head, box_head, landmark_head])
    return builder.finish(outputs)
