"""SRResnet (Table III: super resolution, Tensorflow, 224x224x3).

The generator of Ledig et al.'s SRGAN (CVPR 2017): one 9x9 stem, 16
residual blocks of 64-channel 3x3 convolutions at full input resolution,
a global skip, and two pixel-shuffle x2 upsamplers to 4x output scale.
PReLU activations throughout, as in the original generator.

Every convolution runs on large 224^2 (then 448^2, 896^2) feature maps:
enormous activation traffic per FLOP, which is why the paper's biggest win
over both GPUs lands on this model (4.34x over T4) — the i20's 819 GB/s
HBM2E and fused conv+PReLU kernels feed it where the GPUs starve.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph
from repro.models.layers import conv_bn_act

_CHANNELS = 64
_BLOCKS = 16


def _residual(builder: GraphBuilder, data: str) -> str:
    out = conv_bn_act(builder, data, _CHANNELS, 3, activation="prelu")
    out = conv_bn_act(builder, out, _CHANNELS, 3, activation="")
    return builder.add(out, data)


def build_srresnet(batch: int | str = "batch", image: int = 224,
                   scale: int = 4) -> Graph:
    """1.5 M parameters, ~146 GFLOPs at 224^2 input (4x upscale)."""
    builder = GraphBuilder("srresnet")
    data = builder.input("image", (batch, 3, image, image))
    stem = builder.conv2d(data, _CHANNELS, 9, pad=4)
    stem = builder.prelu(stem)

    out = stem
    for _ in range(_BLOCKS):
        out = _residual(builder, out)
    out = conv_bn_act(builder, out, _CHANNELS, 3, activation="")
    out = builder.add(out, stem)

    upscales = {2: 1, 4: 2}.get(scale)
    if upscales is None:
        raise ValueError(f"scale must be 2 or 4, got {scale}")
    for _ in range(upscales):
        out = builder.conv2d(out, _CHANNELS * 4, 3, pad=1)
        out = builder.pixel_shuffle(out, 2)
        out = builder.prelu(out)

    image_out = builder.conv2d(out, 3, 9, pad=4)
    image_out = builder.tanh(image_out)
    return builder.finish([image_out])
