"""U-Net (Table III: segmentation, Tensorflow, 3x512x512).

Ronneberger et al. (2015) encoder-decoder: 4 downsampling stages of double
3x3 convolutions, a bottleneck, and 4 upsampling stages with skip
concatenations — the layout-transform-heavy workload (concat + upsample)
the DMA engine's on-the-fly tensor manipulation targets.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph
from repro.models.layers import conv_bn_act

_BASE_CHANNELS = 64
_DEPTH = 4


def _double_conv(builder: GraphBuilder, data: str, channels: int) -> str:
    out = conv_bn_act(builder, data, channels, 3)
    return conv_bn_act(builder, out, channels, 3)


def build_unet(batch: int | str = "batch", image: int = 512,
               classes: int = 2) -> Graph:
    """31 M parameters, ~260 GFLOPs at 512^2 (spatially heavy)."""
    builder = GraphBuilder("unet")
    out = builder.input("image", (batch, 3, image, image))

    skips: list[str] = []
    channels = _BASE_CHANNELS
    for _ in range(_DEPTH):
        out = _double_conv(builder, out, channels)
        skips.append(out)
        out = builder.max_pool(out, 2)
        channels *= 2

    out = _double_conv(builder, out, channels)

    for skip in reversed(skips):
        channels //= 2
        out = builder.upsample(out, 2)
        out = conv_bn_act(builder, out, channels, 1)
        out = builder.concat([skip, out], axis=1)
        out = _double_conv(builder, out, channels)

    logits = builder.conv2d(out, classes, 1)
    probabilities = builder.softmax(logits)
    return builder.finish([probabilities])
