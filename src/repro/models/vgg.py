"""VGG16 (Table III: image classification, Pytorch, 3x224x224)."""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph
from repro.models.layers import _mark_sparsity, RELU_SPARSITY

#: channels per stage; each stage ends with a 2x2 max pool
_STAGES = ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3))


def build_vgg16(batch: int | str = "batch", image: int = 224) -> Graph:
    """The 13-conv / 3-FC VGG16, 138 M parameters, ~15.5 GFLOPs at 224^2."""
    builder = GraphBuilder("vgg16")
    out = builder.input("image", (batch, 3, image, image))
    for channels, convs in _STAGES:
        for _ in range(convs):
            out = builder.conv2d(out, channels, 3, pad=1)
            out = builder.relu(out)
            _mark_sparsity(builder, out, RELU_SPARSITY)
        out = builder.max_pool(out, 2)
    out = builder.flatten(out)
    out = builder.dense(out, 4096)
    out = builder.relu(out)
    out = builder.dense(out, 4096)
    out = builder.relu(out)
    out = builder.dense(out, 1000)
    out = builder.softmax(out)
    return builder.finish([out])
