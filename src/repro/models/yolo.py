"""YOLOv3 (Table III: object detection, Pytorch, 3x608x608).

Darknet-53 backbone (52 convolutions in residual pairs) + the three-scale
FPN-style detection head of Redmon & Farhadi (2018). LeakyReLU activations
throughout; detection outputs are 3 anchor maps at strides 32/16/8 with
255 = 3 * (80 classes + 5) channels.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph
from repro.models.layers import conv_bn_act


def _dark_conv(builder: GraphBuilder, data: str, channels: int, kernel: int,
               stride: int = 1) -> str:
    return conv_bn_act(
        builder, data, channels, kernel, stride=stride, activation="leaky_relu"
    )


def _dark_residual(builder: GraphBuilder, data: str, channels: int) -> str:
    out = _dark_conv(builder, data, channels // 2, 1)
    out = _dark_conv(builder, out, channels, 3)
    return builder.add(out, data)


def _darknet53(builder: GraphBuilder, data: str) -> dict[str, str]:
    out = _dark_conv(builder, data, 32, 3)
    taps: dict[str, str] = {}
    for tap, (channels, blocks) in {
        "s2": (64, 1),
        "s4": (128, 2),
        "s8": (256, 8),
        "s16": (512, 8),
        "s32": (1024, 4),
    }.items():
        out = _dark_conv(builder, out, channels, 3, stride=2)
        for _ in range(blocks):
            out = _dark_residual(builder, out, channels)
        taps[tap] = out
    return taps


def _detection_block(builder: GraphBuilder, data: str, channels: int) -> tuple[str, str]:
    """5-conv neck block; returns (branch tap, detection feature)."""
    out = _dark_conv(builder, data, channels, 1)
    out = _dark_conv(builder, out, channels * 2, 3)
    out = _dark_conv(builder, out, channels, 1)
    out = _dark_conv(builder, out, channels * 2, 3)
    tap = _dark_conv(builder, out, channels, 1)
    feature = _dark_conv(builder, tap, channels * 2, 3)
    return tap, feature


def build_yolo_v3(batch: int | str = "batch", image: int = 608,
                  classes: int = 80) -> Graph:
    """61.9 M parameters, ~65.9 GFLOPs at 608^2."""
    builder = GraphBuilder("yolo_v3")
    data = builder.input("image", (batch, 3, image, image))
    taps = _darknet53(builder, data)
    anchors_channels = 3 * (classes + 5)

    tap32, feature32 = _detection_block(builder, taps["s32"], 512)
    head32 = builder.conv2d(feature32, anchors_channels, 1)

    up16 = _dark_conv(builder, tap32, 256, 1)
    up16 = builder.upsample(up16, 2)
    merged16 = builder.concat([up16, taps["s16"]], axis=1)
    tap16, feature16 = _detection_block(builder, merged16, 256)
    head16 = builder.conv2d(feature16, anchors_channels, 1)

    up8 = _dark_conv(builder, tap16, 128, 1)
    up8 = builder.upsample(up8, 2)
    merged8 = builder.concat([up8, taps["s8"]], axis=1)
    _tap8, feature8 = _detection_block(builder, merged8, 128)
    head8 = builder.conv2d(feature8, anchors_channels, 1)

    return builder.finish([head32, head16, head8])
