"""The benchmark model zoo: the 10 DNNs of paper Table III.

Each entry records the paper's metadata (category, source framework, input
size) and a builder producing the network as a graph with a symbolic batch
dimension. :func:`build` instantiates one by name:

>>> graph = build("resnet50")
>>> graph.tensor_type("image").shape
('batch', 3, 224, 224)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph.ir import Graph
from repro.models.bert import build_bert_large
from repro.models.centernet import build_centernet
from repro.models.conformer import build_conformer
from repro.models.inception import build_inception_v4
from repro.models.resnet import build_resnet50
from repro.models.retinaface import build_retinaface
from repro.models.srresnet import build_srresnet
from repro.models.unet import build_unet
from repro.models.vgg import build_vgg16
from repro.models.yolo import build_yolo_v3


@dataclass(frozen=True)
class ZooEntry:
    """Table III row: one evaluation DNN."""

    name: str
    display_name: str
    category: str
    source: str
    input_size: str
    builder: Callable[..., Graph]
    dense_op_heavy: bool
    """Whether conv/GEMM dominate (the §VI-D computational-density split)."""


TABLE_III: tuple[ZooEntry, ...] = (
    ZooEntry("yolo_v3", "Yolo v3", "Object Detection", "Pytorch",
             "3x608x608", build_yolo_v3, dense_op_heavy=True),
    ZooEntry("centernet", "CenterNet", "Object Detection", "Pytorch",
             "3x512x512", build_centernet, dense_op_heavy=True),
    ZooEntry("retinaface", "Retinaface", "Object Detection", "Pytorch",
             "3x640x640", build_retinaface, dense_op_heavy=True),
    ZooEntry("vgg16", "VGG16", "Image Classification", "Pytorch",
             "3x224x224", build_vgg16, dense_op_heavy=True),
    ZooEntry("resnet50", "Resnet50 v1.5", "Image Classification", "Pytorch",
             "3x224x224", build_resnet50, dense_op_heavy=True),
    ZooEntry("inception_v4", "Inception v4", "Image Classification",
             "Tensorflow", "3x299x299", build_inception_v4, dense_op_heavy=True),
    ZooEntry("unet", "Unet", "Segmentation", "Tensorflow",
             "3x512x512", build_unet, dense_op_heavy=True),
    ZooEntry("srresnet", "SRResnet", "Super Resolution", "Tensorflow",
             "224x224x3", build_srresnet, dense_op_heavy=True),
    ZooEntry("bert_large", "Bert large", "NLP", "Tensorflow",
             "384", build_bert_large, dense_op_heavy=True),
    ZooEntry("conformer", "Conformer", "Speech Recognition", "Pytorch",
             "80x401", build_conformer, dense_op_heavy=True),
)

_BY_NAME = {entry.name: entry for entry in TABLE_III}

MODEL_NAMES: tuple[str, ...] = tuple(entry.name for entry in TABLE_III)


def entry(name: str) -> ZooEntry:
    if name not in _BY_NAME:
        raise KeyError(f"unknown model {name!r}; zoo has {sorted(_BY_NAME)}")
    return _BY_NAME[name]


def build(name: str, **kwargs) -> Graph:
    """Instantiate one zoo model (symbolic batch unless overridden)."""
    return entry(name).builder(**kwargs)
