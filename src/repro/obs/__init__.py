"""repro.obs — the unified observability layer.

One :class:`Observability` hub bundles the two halves every layer of the
stack reports into:

- :class:`~repro.obs.metrics.MetricsRegistry` — process-wide counters,
  gauges and histograms with labels (the §VI "profiling statistics"
  substrate: per-operator latency shares, engine duty cycles, QoS
  accounting);
- :class:`~repro.obs.tracing.Tracer` — spans threaded by
  :class:`~repro.obs.tracing.TraceContext` from serving admission through
  ``Device.launch`` retries and executor scheduling down into simulator
  kernel/DMA/sync intervals and fault-injection events.

Attach a hub where you want telemetry; leave it off and every hook is a
no-op (``if obs is None`` at coarse boundaries — the simulation's hot
path is untouched and results stay bit-identical):

>>> from repro.obs import Observability
>>> from repro import Device, build_model
>>> obs = Observability()
>>> device = Device.open("i20", obs=obs)
>>> result = device.launch(device.compile(build_model("resnet50"), batch=1))
>>> sorted(obs.tracer.layers())  # doctest: +SKIP
['power', 'runtime', 'sim']

Export with :mod:`repro.obs.exporters` (Chrome trace / Prometheus text /
JSON snapshot), or from the command line: ``repro profile resnet50`` and
``repro trace resnet50 -o trace.json``. docs/observability.md has the
full metrics catalogue and span hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.exporters import (
    save_chrome_trace,
    save_json_snapshot,
    to_chrome_trace,
    to_json_snapshot,
    to_prometheus_text,
)
from repro.obs.labels import (
    DEFAULT_DEVICE_LABEL_CAP,
    DEVICE_LABEL_CAP_ENV_VAR,
    OVERFLOW_DEVICE_LABEL,
    device_label,
    device_label_cap,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS_MS,
    DEFAULT_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import (
    LAYERS,
    CounterSample,
    Span,
    SpanHandle,
    TraceContext,
    TraceEvent,
    Tracer,
)


@dataclass
class Observability:
    """The hub one run reports into: a registry plus a tracer."""

    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=Tracer)


__all__ = [
    "Counter", "CounterSample", "DEFAULT_BUCKETS_MS", "DEFAULT_BUCKETS_NS",
    "DEFAULT_DEVICE_LABEL_CAP", "DEVICE_LABEL_CAP_ENV_VAR", "Gauge",
    "Histogram", "LAYERS", "MetricsRegistry", "OVERFLOW_DEVICE_LABEL",
    "Observability", "Span", "SpanHandle", "TraceContext", "TraceEvent",
    "Tracer", "device_label", "device_label_cap", "save_chrome_trace",
    "save_json_snapshot", "to_chrome_trace", "to_json_snapshot",
    "to_prometheus_text",
]
