"""Exporters: Chrome ``trace_event`` JSON, Prometheus text, JSON snapshot.

The Chrome exporter is the whole-stack successor of
``repro.sim.trace_export`` (which now delegates here): each *layer*
(serving / runtime / sim / fault / power) becomes one process row, each
*track* within it (tenant, device, engine, component) one thread row.
Load the file in ``chrome://tracing`` or https://ui.perfetto.dev — see
docs/observability.md for a walkthrough.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import LAYERS, Tracer

#: nanoseconds per microsecond (Chrome wants us; our timestamps are ns)
_NS_PER_US = 1000.0

#: default display names of the per-layer process rows
LAYER_PROCESS_NAMES = {
    "serving": "serving (InferenceServer)",
    "runtime": "runtime (Device/Executor)",
    "sim": "DTU 2.0 sim",
    "fault": "fault injection",
    "power": "power management",
}


def _ordered_layers(tracer: Tracer) -> list[str]:
    present = tracer.layers()
    ordered = [layer for layer in LAYERS if layer in present]
    ordered.extend(sorted(present - set(LAYERS)))
    return ordered


def to_chrome_trace(
    tracer: Tracer, process_names: dict[str, str] | None = None
) -> dict:
    """Build one chrome://tracing JSON document from a tracer's contents."""
    names = dict(LAYER_PROCESS_NAMES)
    if process_names:
        names.update(process_names)

    layers = _ordered_layers(tracer)
    pids = {layer: index + 1 for index, layer in enumerate(layers)}
    tracks: dict[str, set[str]] = {layer: set() for layer in layers}
    for span in tracer.spans:
        tracks[span.layer].add(span.track)
    for event in tracer.events:
        tracks[event.layer].add(event.track)

    events: list[dict] = []
    tids: dict[tuple[str, str], int] = {}
    for layer in layers:
        pid = pids[layer]
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": names.get(layer, layer)},
            }
        )
        for tid, track in enumerate(sorted(tracks[layer]), start=1):
            tids[(layer, track)] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )

    for span in tracer.spans:
        args = {"trace_id": span.trace_id, "span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.args)
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",  # complete event
                "pid": pids[span.layer],
                "tid": tids[(span.layer, span.track)],
                "ts": span.start_ns / _NS_PER_US,
                "dur": span.duration_ns / _NS_PER_US,
                "args": args,
            }
        )
    for event in tracer.events:
        events.append(
            {
                "name": event.name,
                "cat": event.layer,
                "ph": "i",  # instant event
                "s": "t",  # thread scope
                "pid": pids[event.layer],
                "tid": tids[(event.layer, event.track)],
                "ts": event.time_ns / _NS_PER_US,
                "args": dict(event.args),
            }
        )
    for sample in tracer.counter_samples:
        events.append(
            {
                "name": sample.name,
                "ph": "C",  # counter event
                "pid": pids.get(sample.layer, len(pids) + 1),
                "ts": sample.time_ns / _NS_PER_US,
                "args": dict(sample.values),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def save_chrome_trace(
    tracer: Tracer,
    path: str | Path,
    process_names: dict[str, str] | None = None,
) -> Path:
    """Write the Chrome trace JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(tracer, process_names)))
    return path


# -- Prometheus text exposition ----------------------------------------------


def _fmt_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render every instrument in the Prometheus text exposition format."""
    lines: list[str] = []
    for instrument in registry.collect():
        if instrument.help:
            lines.append(f"# HELP {instrument.name} {instrument.help}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        if isinstance(instrument, (Counter, Gauge)):
            for labels, value in instrument.samples():
                lines.append(
                    f"{instrument.name}{_fmt_labels(labels)} {_fmt_value(value)}"
                )
        elif isinstance(instrument, Histogram):
            for labels, series in instrument.samples():
                cumulative = series.cumulative()
                bounds = [*instrument.buckets, math.inf]
                for bound, count in zip(bounds, cumulative):
                    le = dict(labels)
                    le["le"] = _fmt_value(bound)
                    lines.append(
                        f"{instrument.name}_bucket{_fmt_labels(le)} {count}"
                    )
                lines.append(
                    f"{instrument.name}_sum{_fmt_labels(labels)} "
                    f"{_fmt_value(series.sum)}"
                )
                lines.append(
                    f"{instrument.name}_count{_fmt_labels(labels)} {series.count}"
                )
    return "\n".join(lines) + "\n"


# -- JSON snapshot -------------------------------------------------------------


def to_json_snapshot(obs) -> dict:
    """One machine-readable dict of everything observed so far."""
    metrics = []
    for instrument in obs.metrics.collect():
        entry: dict = {
            "name": instrument.name,
            "kind": instrument.kind,
            "help": instrument.help,
            "unit": instrument.unit,
        }
        if isinstance(instrument, (Counter, Gauge)):
            entry["samples"] = [
                {"labels": labels, "value": value}
                for labels, value in instrument.samples()
            ]
        elif isinstance(instrument, Histogram):
            entry["buckets"] = list(instrument.buckets)
            entry["samples"] = [
                {
                    "labels": labels,
                    "sum": series.sum,
                    "count": series.count,
                    "bucket_counts": list(series.counts),
                }
                for labels, series in instrument.samples()
            ]
        metrics.append(entry)
    spans = [
        {
            "name": span.name,
            "layer": span.layer,
            "track": span.track,
            "start_ns": span.start_ns,
            "end_ns": span.end_ns,
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "args": span.args,
        }
        for span in obs.tracer.spans
    ]
    events = [
        {
            "name": event.name,
            "layer": event.layer,
            "track": event.track,
            "time_ns": event.time_ns,
            "args": event.args,
        }
        for event in obs.tracer.events
    ]
    return {"metrics": metrics, "spans": spans, "events": events}


def save_json_snapshot(obs, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_json_snapshot(obs), indent=2))
    return path
