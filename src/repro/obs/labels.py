"""Label-cardinality control for per-device observability.

Every replica a fleet opens gets its own ``device="<id>"`` label on
launch counters and its own ``device.<id>`` span track.  At thousands of
devices that explodes registry/trace cardinality — the classic
high-cardinality-label failure.  :func:`device_label` applies a
documented aggregation threshold: the first ``REPRO_OBS_DEVICE_LABEL_CAP``
distinct device ids seen by one :class:`~repro.obs.Observability` hub
keep their labels; every later id collapses into the ``device="other"``
overflow bucket (docs/observability.md).

The census lives on the hub's :class:`~repro.obs.metrics.MetricsRegistry`
(metrics and spans share one identity budget), so independent runs with
fresh hubs never interfere and small fleets — below the cap — keep
per-device labels exactly as before.
"""

from __future__ import annotations

import os

__all__ = [
    "DEVICE_LABEL_CAP_ENV_VAR",
    "DEFAULT_DEVICE_LABEL_CAP",
    "OVERFLOW_DEVICE_LABEL",
    "device_label",
    "device_label_cap",
]

DEVICE_LABEL_CAP_ENV_VAR = "REPRO_OBS_DEVICE_LABEL_CAP"
"""Environment knob: max distinct per-device label values per registry."""

DEFAULT_DEVICE_LABEL_CAP = 64

OVERFLOW_DEVICE_LABEL = "other"
"""Bucket that absorbs devices beyond the cap."""

_CENSUS_ATTR = "_device_label_census"


def device_label_cap() -> int:
    """Current cap (env override, else 64); values < 1 disable capping."""
    raw = os.environ.get(DEVICE_LABEL_CAP_ENV_VAR)
    if raw is None:
        return DEFAULT_DEVICE_LABEL_CAP
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{DEVICE_LABEL_CAP_ENV_VAR} must be an integer, got {raw!r}"
        ) from None


def device_label(obs, device_id: str) -> str:
    """Label value for ``device_id`` under ``obs``'s cardinality budget.

    Deterministic for a fixed open/launch order: the first ``cap``
    distinct ids admitted by this hub keep their identity for the hub's
    lifetime; later ids all map to :data:`OVERFLOW_DEVICE_LABEL`.
    """
    cap = device_label_cap()
    if cap < 1:
        return device_id
    registry = obs.metrics
    census = getattr(registry, _CENSUS_ATTR, None)
    if census is None:
        census = set()
        setattr(registry, _CENSUS_ATTR, census)
    if device_id in census:
        return device_id
    if len(census) < cap:
        census.add(device_id)
        return device_id
    return OVERFLOW_DEVICE_LABEL
