"""Process-wide metrics: counters, gauges and histograms with labels.

The registry is the single sink every layer of the stack reports into —
serving admission/shedding, runtime launches, simulator engine activity,
fault-injection outcomes and the power loop. Instruments follow the
Prometheus data model closely enough that
:func:`repro.obs.exporters.to_prometheus_text` can render a standard text
exposition, but there is no background collection: everything is plain
in-process accounting, and a component with no registry attached pays
nothing (see docs/observability.md for the catalogue of metric names).

>>> registry = MetricsRegistry()
>>> requests = registry.counter("requests_total", "requests seen")
>>> requests.inc(tenant="a")
>>> requests.value(tenant="a")
1.0
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: default histogram buckets, tuned for nanosecond durations
#: (1 us .. 1 s, roughly logarithmic)
DEFAULT_BUCKETS_NS = (
    1e3, 1e4, 1e5, 1e6, 5e6, 1e7, 5e7, 1e8, 5e8, 1e9,
)

#: default buckets for millisecond latencies (0.1 ms .. 10 s)
DEFAULT_BUCKETS_MS = (
    0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 10_000.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Instrument:
    """Base of every metric: a name plus free-form label sets."""

    name: str
    help: str = ""
    unit: str = ""

    def label_sets(self) -> list[dict[str, str]]:
        """Every label combination this instrument has seen, sorted."""
        return [dict(key) for key in sorted(self._series())]

    def _series(self):  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass
class Counter(Instrument):
    """Monotonically increasing value (per label set)."""

    kind = "counter"
    _values: dict[LabelKey, float] = field(default_factory=dict)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up, got {amount}")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._values.values())

    def _series(self):
        return self._values.keys()

    def samples(self) -> list[tuple[dict[str, str], float]]:
        return [(dict(key), value) for key, value in sorted(self._values.items())]


@dataclass
class Gauge(Instrument):
    """A value that can go up and down (per label set)."""

    kind = "gauge"
    _values: dict[LabelKey, float] = field(default_factory=dict)

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: str) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def _series(self):
        return self._values.keys()

    def samples(self) -> list[tuple[dict[str, str], float]]:
        return [(dict(key), value) for key, value in sorted(self._values.items())]


@dataclass
class HistogramSeries:
    """One label set's accumulation: bucket counts + sum + count."""

    buckets: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # +inf bucket

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, upper in enumerate(self.buckets):
            if value <= upper:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[int]:
        """Prometheus-style cumulative bucket counts (ending at +Inf)."""
        out, running = [], 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation in buckets.

        The estimate follows the Prometheus ``histogram_quantile``
        convention: the target rank ``q * count`` is located in the
        cumulative bucket counts, then interpolated linearly between the
        bucket's bounds (the first bucket interpolates up from 0, and a
        rank landing in the +Inf bucket reports the highest finite bound
        — a histogram cannot resolve beyond its last edge). An empty
        series reports 0.0 so all-shed serving reports stay finite.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if running + count >= rank:
                if index >= len(self.buckets):  # +Inf bucket
                    return self.buckets[-1]
                lower = self.buckets[index - 1] if index > 0 else 0.0
                upper = self.buckets[index]
                fraction = (rank - running) / count
                return lower + (upper - lower) * fraction
            running += count
        return self.buckets[-1]


@dataclass
class Histogram(Instrument):
    """Distribution of observed values (per label set)."""

    kind = "histogram"
    buckets: tuple[float, ...] = DEFAULT_BUCKETS_NS
    _series_map: dict[LabelKey, HistogramSeries] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.buckets = tuple(sorted(self.buckets))
        if not self.buckets:
            raise ValueError(f"{self.name}: a histogram needs >= 1 bucket")

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        series = self._series_map.get(key)
        if series is None:
            series = self._series_map[key] = HistogramSeries(self.buckets)
        series.observe(value)

    def series(self, **labels: str) -> HistogramSeries:
        key = _label_key(labels)
        if key not in self._series_map:
            return HistogramSeries(self.buckets)
        return self._series_map[key]

    def _series(self):
        return self._series_map.keys()

    def samples(self) -> list[tuple[dict[str, str], HistogramSeries]]:
        return [
            (dict(key), series)
            for key, series in sorted(self._series_map.items())
        ]


class MetricsRegistry:
    """Named instruments, created on first use and shared thereafter.

    ``registry.counter(name)`` is idempotent: asking again for the same
    name returns the same instrument (asking for it as a different kind
    is an error), so any layer can reach a shared metric without plumbing
    instrument objects around.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}

    def _get_or_create(self, cls, name: str, **kwargs) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        instrument = cls(name=name, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "", unit: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help, unit=unit)

    def gauge(self, name: str, help: str = "", unit: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help, unit=unit)

    def histogram(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS_NS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help=help, unit=unit, buckets=buckets
        )

    def get(self, name: str) -> Instrument | None:
        return self._instruments.get(name)

    def collect(self) -> list[Instrument]:
        """Every registered instrument, sorted by name."""
        return [self._instruments[name] for name in sorted(self._instruments)]

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)
