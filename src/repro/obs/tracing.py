"""Span-based tracing across every layer of the stack.

One :class:`Tracer` accumulates the full story of a run as *spans* (timed,
possibly nested), *events* (instants — fault injections, shed requests) and
*counter samples* (a value over time — chip power). A
:class:`TraceContext` is the tiny handle that threads causality through
layers: serving admission opens a request span, hands its context to
``Device.launch``, which opens a child launch span, whose context the
executor attributes simulator intervals and fault records to. Export the
result with :mod:`repro.obs.exporters`.

Timestamps are caller-supplied floats (by repository convention simulated
nanoseconds), never wall-clock: the tracer has no clock of its own, which
keeps recording deterministic and replayable.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

#: canonical layer names, in stack order (top of the stack first); the
#: Chrome exporter renders one process row per layer in this order
LAYERS = ("serving", "runtime", "sim", "fault", "power")


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one span: enough to parent children."""

    trace_id: int
    span_id: int


@dataclass
class Span:
    """One finished, timed operation."""

    name: str
    layer: str
    track: str
    start_ns: float
    end_ns: float
    trace_id: int
    span_id: int
    parent_id: int | None = None
    cat: str = ""
    args: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)


@dataclass
class TraceEvent:
    """One instantaneous occurrence (fault injected, request shed, ...)."""

    name: str
    layer: str
    track: str
    time_ns: float
    trace_id: int
    parent_id: int | None = None
    args: dict = field(default_factory=dict)


@dataclass
class CounterSample:
    """One sample of a time-varying value (rendered as a counter track)."""

    name: str
    layer: str
    time_ns: float
    values: dict


class SpanHandle:
    """An open span: carries the context children parent on, until
    :meth:`end` closes it and appends the finished :class:`Span`."""

    __slots__ = ("_tracer", "_span", "closed")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self.closed = False

    @property
    def context(self) -> TraceContext:
        return self._span.context

    def end(self, end_ns: float, **args) -> Span:
        if self.closed:
            raise ValueError(f"span {self._span.name!r} ended twice")
        _check_time(end_ns, "end_ns")
        if end_ns < self._span.start_ns:
            raise ValueError(
                f"span {self._span.name!r} ends before it starts: "
                f"{end_ns} < {self._span.start_ns}"
            )
        self.closed = True
        self._span.end_ns = end_ns
        self._span.args.update(args)
        self._tracer.spans.append(self._span)
        return self._span


def _check_time(value: float, what: str) -> None:
    if math.isnan(value):
        raise ValueError(f"{what} is NaN")


class Tracer:
    """Collector of spans, events and counter samples for one run."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self.counter_samples: list[CounterSample] = []
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    # -- recording ------------------------------------------------------------

    def begin(
        self,
        name: str,
        layer: str,
        start_ns: float,
        parent: TraceContext | None = None,
        track: str | None = None,
        cat: str = "",
        **args,
    ) -> SpanHandle:
        """Open a span; close it with ``handle.end(end_ns)``.

        With no ``parent`` the span roots a fresh trace; otherwise it joins
        the parent's trace. The handle's ``context`` is valid immediately,
        so children can be recorded before the parent closes.
        """
        _check_time(start_ns, "start_ns")
        span = Span(
            name=name,
            layer=layer,
            track=track if track is not None else layer,
            start_ns=start_ns,
            end_ns=start_ns,
            trace_id=parent.trace_id if parent else next(self._trace_ids),
            span_id=next(self._span_ids),
            parent_id=parent.span_id if parent else None,
            cat=cat or layer,
            args=dict(args),
        )
        return SpanHandle(self, span)

    def add_span(
        self,
        name: str,
        layer: str,
        start_ns: float,
        end_ns: float,
        parent: TraceContext | None = None,
        track: str | None = None,
        cat: str = "",
        **args,
    ) -> TraceContext:
        """Record an already-finished span in one call."""
        handle = self.begin(
            name, layer, start_ns, parent=parent, track=track, cat=cat, **args
        )
        return handle.end(end_ns).context

    def add_event(
        self,
        name: str,
        layer: str,
        time_ns: float,
        parent: TraceContext | None = None,
        track: str | None = None,
        **args,
    ) -> None:
        """Record an instantaneous event."""
        _check_time(time_ns, "time_ns")
        self.events.append(
            TraceEvent(
                name=name,
                layer=layer,
                track=track if track is not None else layer,
                time_ns=time_ns,
                trace_id=parent.trace_id if parent else 0,
                parent_id=parent.span_id if parent else None,
                args=dict(args),
            )
        )

    def add_counter_sample(
        self, name: str, layer: str, time_ns: float, **values: float
    ) -> None:
        """Record one sample of a time-varying value (e.g. chip power)."""
        _check_time(time_ns, "time_ns")
        self.counter_samples.append(
            CounterSample(name=name, layer=layer, time_ns=time_ns, values=values)
        )

    # -- queries --------------------------------------------------------------

    def layers(self) -> set[str]:
        return (
            {span.layer for span in self.spans}
            | {event.layer for event in self.events}
            | {sample.layer for sample in self.counter_samples}
        )

    def spans_in(self, layer: str) -> list[Span]:
        return [span for span in self.spans if span.layer == layer]

    def children_of(self, context: TraceContext) -> list[Span]:
        return [span for span in self.spans if span.parent_id == context.span_id]
