"""Analytical performance models: device specs, roofline, calibration."""

from repro.perfmodel.calibration import DeviceCalibration, calibration
from repro.perfmodel.devices import (
    ALL_DEVICES,
    CLOUDBLAZER_I10,
    CLOUDBLAZER_I20,
    DeviceSpec,
    NVIDIA_A10,
    NVIDIA_T4,
    device,
)
from repro.perfmodel.latency import (
    ModelEstimate,
    energy_efficiency_ratio,
    estimate_model,
    geomean,
    speedup,
)
from repro.perfmodel.roofline import KernelEstimate, estimate_kernel, kernel_memory_bytes

__all__ = [
    "ALL_DEVICES", "CLOUDBLAZER_I10", "CLOUDBLAZER_I20", "DeviceCalibration",
    "DeviceSpec", "KernelEstimate", "ModelEstimate", "NVIDIA_A10", "NVIDIA_T4",
    "calibration", "device", "energy_efficiency_ratio", "estimate_kernel",
    "estimate_model", "geomean", "kernel_memory_bytes", "speedup",
]
