"""Calibrated software-efficiency factors per device (see DESIGN.md §4).

The roofline needs, per device, the fraction of datasheet peak each kernel
category sustains in practice. Those fractions depend on the vendor's
kernel library and compiler (TensorRT for the GPUs, TopsDNN/TopsEngine for
the DTUs) and cannot be derived from spec sheets — they are the ONLY fitted
constants in this repository. Each is pinned by paper evidence:

- Fig. 13's headline geomeans (i20 = 2.22x T4, 1.16x A10 at FP16, batch 1),
- SRResnet as the extreme win (4.34x / 2.37x) — a bandwidth-bound model
  where i20's deeper fusion avoids materializing intermediates,
- A10 beating i20 on VGG16 / Inception v4 / BERT (3 of 10 models), credited
  to "kernel libraries well-optimized for typical CNN operators" (§VI-D),
- §VI-D batch discussion: at VGG16 batch 8/16, i20 overtakes A10 by
  1.11x / 1.17x thanks to multi-group parallel processing.

Physical anchors: GPUs at batch 1 run far below peak (tail effects, kernel
launch); the VLIW DTU with fewer, fatter cores sustains more of its peak on
the big fused kernels but has a younger elementwise library; everyone's
effective bandwidth is 65-80 % of the datasheet number.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceCalibration:
    """Software-efficiency profile of one device."""

    name: str
    compute_efficiency: dict[str, float]
    """Sustained fraction of peak FLOPs per kernel category (batch 1)."""
    bandwidth_efficiency: float
    """Sustained fraction of datasheet memory bandwidth."""
    fusion_effectiveness: float
    """Fraction of fusable intermediate traffic the stack eliminates."""
    kernel_overhead_ns: float
    """Fixed launch/dispatch cost per kernel."""
    batch_half_point: float
    """Batch size at which compute efficiency reaches ~2/3 of its ceiling
    (smaller = saturates earlier). Models the utilization-vs-batch curve."""
    batch_ceiling: float
    """Compute-efficiency multiplier at large batch relative to batch 1."""

    def category_efficiency(self, category: str) -> float:
        return self.compute_efficiency.get(
            category, self.compute_efficiency.get("default", 0.35)
        )

    def batch_scale(self, batch: int) -> float:
        """Compute-efficiency multiplier for a given batch size.

        A saturating curve normalized to 1.0 at batch 1: utilization climbs
        toward ``batch_ceiling`` as batching fills the device.
        """
        if batch < 1:
            raise ValueError(f"batch {batch} < 1")
        progress = (batch - 1.0) / (batch - 1.0 + self.batch_half_point)
        return 1.0 + (self.batch_ceiling - 1.0) * progress


_I20 = DeviceCalibration(
    name="i20",
    compute_efficiency={
        # Fused conv/GEMM kernels on the 24 fat VLIW cores sustain a high
        # share of peak; auto-tensorization handles odd shapes (Table II).
        "conv": 0.549,
        "gemm": 0.412,
        "elementwise": 0.30,
        "activation": 0.30,
        "norm": 0.26,
        "softmax": 0.24,
        "pool": 0.30,
        "reduce": 0.26,
        "layout": 0.60,
        "embedding": 0.20,
        "sort": 0.40,  # the VMM sorting facility (§IV-A1)
        "default": 0.30,
    },
    bandwidth_efficiency=0.8,  # HBM2E + 4-port L2 + affinity allocation
    fusion_effectiveness=0.95,  # aggressive auto-fusion w/ 4x L1, 6x L2
    kernel_overhead_ns=3500.0,  # prefetched kernels, repeat-mode DMA
    # Six isolated processing groups (Fig. 7) fill progressively with
    # batch: throughput keeps climbing until every group is busy, so the
    # curve saturates late but high (the §VI-D batch-8/16 behaviour).
    batch_half_point=8.0,
    batch_ceiling=2.0,
)

_I10 = DeviceCalibration(
    name="i10",
    compute_efficiency={
        # Coarse-grained GEMM engine (pre-VMM): good on square shapes,
        # poor on tall-skinny ones; fewer fused kernels fit the small L1/L2.
        "conv": 0.4,
        "gemm": 0.3,
        "elementwise": 0.22,
        "activation": 0.22,
        "norm": 0.19,
        "softmax": 0.17,
        "pool": 0.22,
        "reduce": 0.19,
        "layout": 0.45,
        "embedding": 0.15,
        "sort": 0.15,  # no hardware sort assist
        "default": 0.22,
    },
    bandwidth_efficiency=0.62,  # single-port L2, HBM2
    fusion_effectiveness=0.5,  # 1/4 the L1, 1/6 the per-cluster L2
    kernel_overhead_ns=9000.0,  # no icache/prefetch, per-transfer DMA config
    batch_half_point=2.5,
    batch_ceiling=1.45,
)

_T4 = DeviceCalibration(
    name="t4",
    compute_efficiency={
        # Turing at batch 1: kernels too small to fill 40 SMs, and the
        # 70 W envelope clock-throttles sustained tensor-core work.
        "conv": 0.645,
        "gemm": 0.483,
        "elementwise": 0.30,
        "activation": 0.30,
        "norm": 0.26,
        "softmax": 0.24,
        "pool": 0.30,
        "reduce": 0.26,
        "layout": 0.55,
        "embedding": 0.22,
        "sort": 0.25,
        "default": 0.30,
    },
    bandwidth_efficiency=0.66,
    fusion_effectiveness=0.55,  # TensorRT fuses epilogues but spills more
    kernel_overhead_ns=3983.0,  # CUDA launch latency, batch-1 tail effects
    batch_half_point=5.0,       # needs big batches to fill the SM array
    batch_ceiling=1.85,
)

_A10 = DeviceCalibration(
    name="a10",
    compute_efficiency={
        # Ampere + mature TensorRT CNN kernels (§VI-D credits exactly this
        # for the VGG16 / Inception v4 wins).
        "conv": 0.609,
        "gemm": 0.495,
        "elementwise": 0.34,
        "activation": 0.34,
        "norm": 0.30,
        "softmax": 0.28,
        "pool": 0.34,
        "reduce": 0.30,
        "layout": 0.60,
        "embedding": 0.26,
        "sort": 0.30,
        "default": 0.34,
    },
    bandwidth_efficiency=0.7,
    fusion_effectiveness=0.58,
    kernel_overhead_ns=2489.0,
    # One monolithic SM array: utilization climbs fast then flattens.
    batch_half_point=1.5,
    batch_ceiling=1.5,
)

_CALIBRATIONS = {"i20": _I20, "i10": _I10, "t4": _T4, "a10": _A10}


def calibration(name: str) -> DeviceCalibration:
    key = name.lower()
    if key not in _CALIBRATIONS:
        raise KeyError(f"no calibration for {name!r}; have {sorted(_CALIBRATIONS)}")
    return _CALIBRATIONS[key]
