"""Device spec database: paper Table I (i20) and Table IV (i10, T4, A10).

These are the datasheet numbers the paper's Fig. 12 and Fig. 14 plot
directly; the roofline + calibration layers turn them into per-model
latency estimates for Fig. 13 / Fig. 15.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.datatypes import DType


@dataclass(frozen=True)
class DeviceSpec:
    """One accelerator as its spec sheet describes it."""

    name: str
    vendor: str
    fp32_tflops: float
    fp16_tflops: float
    int8_tops: float
    memory_gb: int
    bandwidth_gbps: float
    tdp_watts: float
    technology_nm: int
    interconnect: str

    def peak_tflops(self, dtype: DType) -> float:
        if dtype in (DType.FP16, DType.BF16, DType.TF32):
            return self.fp16_tflops
        if dtype is DType.INT8:
            return self.int8_tops
        return self.fp32_tflops

    def peak_flops(self, dtype: DType) -> float:
        return self.peak_tflops(dtype) * 1e12

    def power_efficiency(self, dtype: DType) -> float:
        """Peak perf / TDP in GFLOPS-per-watt (the Fig. 14 metric)."""
        return self.peak_flops(dtype) / 1e9 / self.tdp_watts


CLOUDBLAZER_I20 = DeviceSpec(
    name="Cloudblazer i20",
    vendor="Enflame",
    fp32_tflops=32.0,
    fp16_tflops=128.0,
    int8_tops=256.0,
    memory_gb=16,
    bandwidth_gbps=819.0,
    tdp_watts=150.0,
    technology_nm=12,
    interconnect="PCIe4",
)

CLOUDBLAZER_I10 = DeviceSpec(
    name="Cloudblazer i10",
    vendor="Enflame",
    fp32_tflops=20.0,
    fp16_tflops=80.0,
    int8_tops=80.0,
    memory_gb=16,
    bandwidth_gbps=512.0,
    tdp_watts=150.0,
    technology_nm=12,
    interconnect="PCIe4",
)

NVIDIA_T4 = DeviceSpec(
    name="Nvidia T4",
    vendor="Nvidia",
    fp32_tflops=8.1,
    fp16_tflops=65.0,
    int8_tops=130.0,
    memory_gb=16,
    bandwidth_gbps=320.0,
    tdp_watts=70.0,
    technology_nm=12,
    interconnect="PCIe3",
)

NVIDIA_A10 = DeviceSpec(
    name="Nvidia A10",
    vendor="Nvidia",
    fp32_tflops=31.2,
    fp16_tflops=125.0,
    int8_tops=250.0,
    memory_gb=24,
    bandwidth_gbps=600.0,
    tdp_watts=150.0,
    technology_nm=7,
    interconnect="PCIe4",
)

ALL_DEVICES: tuple[DeviceSpec, ...] = (
    CLOUDBLAZER_I20,
    CLOUDBLAZER_I10,
    NVIDIA_T4,
    NVIDIA_A10,
)


def device(name: str) -> DeviceSpec:
    """Lookup by short name: 'i20', 'i10', 't4', 'a10'."""
    table = {
        "i20": CLOUDBLAZER_I20,
        "i10": CLOUDBLAZER_I10,
        "t4": NVIDIA_T4,
        "a10": NVIDIA_A10,
    }
    if name.lower() not in table:
        raise KeyError(f"unknown device {name!r}; have {sorted(table)}")
    return table[name.lower()]
