"""End-to-end DNN latency / energy estimation per device (Figs. 13 & 15).

:func:`estimate_model` compiles a zoo model once per device family (the
DTUs lower with their own chip configs so auto-tensorization reflects their
matrix engines; the GPUs share the fused graph with tensor-core behaviour
folded into their calibrated efficiencies) and sums the roofline estimate
over the kernels.

Energy efficiency follows the paper's Fig. 14/15 definition — performance
per TDP watt — so relative energy efficiency of device A vs B equals
``speedup(A, B) * TDP_B / TDP_A``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.compiler.lowering import CompiledModel, lower_graph
from repro.compiler.tensorize import gpu_tile_utilization
from repro.core.config import dtu1_config, dtu2_config
from repro.core.datatypes import DType
from repro.graph.passes import optimize
from repro.graph.shape_inference import bind_shapes
from repro.models.zoo import build
from repro.perfmodel.calibration import DeviceCalibration, calibration
from repro.perfmodel.devices import DeviceSpec, device
from repro.perfmodel.roofline import KernelEstimate, estimate_kernel


@dataclass(frozen=True)
class ModelEstimate:
    """Latency/energy prediction for one (model, device, batch) point."""

    model: str
    device: str
    batch: int
    dtype: DType
    latency_ns: float
    kernels: tuple[KernelEstimate, ...]

    @property
    def latency_ms(self) -> float:
        return self.latency_ns / 1e6

    @property
    def throughput_samples_per_s(self) -> float:
        return self.batch * 1e9 / self.latency_ns

    def energy_per_sample_j(self, tdp_watts: float) -> float:
        """TDP-based energy per inference (the paper's Perf/TDP metric)."""
        return tdp_watts * self.latency_ns * 1e-9 / self.batch


@lru_cache(maxsize=128)
def _compiled_for(model_name: str, family: str, batch: int, dtype: DType) -> CompiledModel:
    graph = build(model_name)
    bound = bind_shapes(graph, batch=batch)
    optimized, _ = optimize(bound, fusion=True)
    chip = dtu1_config() if family == "i10" else dtu2_config()
    return lower_graph(optimized, chip, dtype)


def _family(device_name: str) -> str:
    return "i10" if device_name.lower() == "i10" else "dtu2"


def estimate_model(
    model_name: str,
    device_name: str,
    batch: int = 1,
    dtype: DType = DType.FP16,
) -> ModelEstimate:
    """Predict one model's latency on one device."""
    spec: DeviceSpec = device(device_name)
    cal: DeviceCalibration = calibration(device_name)
    compiled = _compiled_for(model_name, _family(device_name), batch, dtype)
    is_dtu = device_name.lower() in ("i10", "i20")
    batch_scale = cal.batch_scale(batch)

    estimates = []
    for kernel in compiled.kernels:
        utilization = None
        if kernel.tensorization is not None:
            if is_dtu:
                utilization = kernel.tensorization.utilization
            else:
                # GPUs pay their own padding tax: tensor-core CTA tiles.
                utilization = gpu_tile_utilization(kernel.tensorization.shape)
        estimates.append(
            estimate_kernel(
                kernel,
                spec,
                cal,
                dtype=dtype,
                batch_scale=batch_scale,
                tensorization_utilization=utilization,
                sparse_dma=(device_name.lower() == "i20"),
            )
        )
    latency = sum(estimate.time_ns for estimate in estimates)
    return ModelEstimate(
        model=model_name,
        device=device_name,
        batch=batch,
        dtype=dtype,
        latency_ns=latency,
        kernels=tuple(estimates),
    )


def speedup(
    model_name: str,
    device_a: str,
    device_b: str,
    batch: int = 1,
    dtype: DType = DType.FP16,
) -> float:
    """How much faster ``device_a`` runs the model than ``device_b``."""
    a = estimate_model(model_name, device_a, batch, dtype)
    b = estimate_model(model_name, device_b, batch, dtype)
    return b.latency_ns / a.latency_ns


def energy_efficiency_ratio(
    model_name: str,
    device_a: str,
    device_b: str,
    batch: int = 1,
    dtype: DType = DType.FP16,
) -> float:
    """Perf/TDP of A relative to B (Fig. 15 metric)."""
    ratio = speedup(model_name, device_a, device_b, batch, dtype)
    return ratio * device(device_b).tdp_watts / device(device_a).tdp_watts


def geomean(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0
