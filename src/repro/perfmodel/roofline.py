"""Roofline model: per-kernel latency from peaks, bandwidth and efficiency.

The classical model: a kernel needs ``flops / attained_compute`` to crunch
and ``bytes / attained_bandwidth`` to stream; on a machine that overlaps
DMA with compute (every device here double-buffers), its time is the max of
the two plus a fixed dispatch overhead. Attained rates are the datasheet
peaks de-rated by the :mod:`~repro.perfmodel.calibration` factors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.kernel import Kernel
from repro.core.datatypes import DType
from repro.perfmodel.calibration import DeviceCalibration
from repro.perfmodel.devices import DeviceSpec

#: bitmask sparse-DMA wire overhead at FP16 (see repro.dma.sparse)
_SPARSE_MASK_FRACTION = 1.0 / 16.0


@dataclass(frozen=True)
class KernelEstimate:
    """Roofline outcome for one kernel on one device."""

    name: str
    category: str
    compute_ns: float
    memory_ns: float
    overhead_ns: float

    @property
    def time_ns(self) -> float:
        return max(self.compute_ns, self.memory_ns) + self.overhead_ns

    @property
    def bound(self) -> str:
        return "compute" if self.compute_ns >= self.memory_ns else "memory"


def kernel_memory_bytes(
    kernel: Kernel,
    calibration: DeviceCalibration,
    sparse_dma: bool = False,
) -> float:
    """Traffic one kernel pushes through HBM on this device.

    Boundary activations/weights always cross; fused-away intermediates
    cross in proportion to how much of the fusion the device's stack fails
    to realise; sparse activations travel compressed when supported.
    """
    activations = float(kernel.cost.input_bytes + kernel.cost.output_bytes)
    if sparse_dma and kernel.sparsity > 0:
        compressed = activations * (1.0 - kernel.sparsity + _SPARSE_MASK_FRACTION)
        activations = min(activations, compressed)
    unfused = (1.0 - calibration.fusion_effectiveness) * kernel.cost.internal_bytes
    return activations + kernel.cost.weight_bytes + unfused


def estimate_kernel(
    kernel: Kernel,
    device: DeviceSpec,
    calibration: DeviceCalibration,
    dtype: DType = DType.FP16,
    batch_scale: float = 1.0,
    tensorization_utilization: float | None = None,
    sparse_dma: bool = False,
) -> KernelEstimate:
    """Roofline time of one kernel on one device."""
    efficiency = calibration.category_efficiency(kernel.category) * batch_scale
    if tensorization_utilization is not None:
        efficiency *= tensorization_utilization
    attained_flops = device.peak_flops(dtype) * min(efficiency, 1.0)
    compute_ns = kernel.cost.flops / attained_flops * 1e9 if kernel.cost.flops else 0.0

    traffic = kernel_memory_bytes(kernel, calibration, sparse_dma=sparse_dma)
    attained_bandwidth = device.bandwidth_gbps * calibration.bandwidth_efficiency
    memory_ns = traffic / attained_bandwidth  # GB/s == bytes/ns

    return KernelEstimate(
        name=kernel.name,
        category=kernel.category,
        compute_ns=compute_ns,
        memory_ns=memory_ns,
        overhead_ns=calibration.kernel_overhead_ns,
    )
