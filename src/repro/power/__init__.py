"""Power management: CPME/LPME, power integrity, DVFS energy efficiency."""

from repro.power.cpme import Cpme, PowerIntegrityError
from repro.power.dvfs import DvfsController, DvfsDecision, Observation, WorkloadKind
from repro.power.lpme import Lpme, WindowReport
from repro.power.model import (
    chip_power_units,
    DvfsCurve,
    UnitPowerModel,
    UnitPowerParams,
    chip_power_watts,
    dtu2_power_units,
)

__all__ = [
    "Cpme", "DvfsController", "DvfsCurve", "DvfsDecision", "Lpme",
    "Observation", "PowerIntegrityError", "UnitPowerModel", "UnitPowerParams",
    "WindowReport", "WorkloadKind", "chip_power_units", "chip_power_watts", "dtu2_power_units",
]
