"""Central Power Management Engine (paper §IV-F1, Figs. 8-9).

"On system booting, CPME conservatively assigns a baseline power budget to
every function unit (i.e., the minimal power budget the function unit
requires) and reserves the remaining budgets for runtime distribution."

The CPME owns the board power limit. It grants LPME borrow requests out of
the reserve pool while guaranteeing the sum of all outstanding budgets never
exceeds the limit (power integrity), and it reabsorbs budget the LPMEs
return.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power.lpme import Lpme, WindowReport
from repro.power.model import UnitPowerModel


class PowerIntegrityError(RuntimeError):
    """An operation would push committed budgets past the board limit."""


@dataclass
class Cpme:
    """The central engine for one chip."""

    power_limit_watts: float
    baseline_fraction: float = 0.35
    """Boot-time budget as a fraction of each unit's max draw (>= static)."""
    grant_step_watts: float = 1.0
    lpmes: dict[str, Lpme] = field(default_factory=dict)
    grants_issued: int = 0
    grants_denied: int = 0
    recaps: int = 0

    def __post_init__(self) -> None:
        # Conservation ledger: an *incrementally* tracked reserve, mirrored
        # against the recomputed `committed_watts` sum after every budget
        # movement. Grants never read it (reserve_watts stays the computed
        # property), so it cannot change decisions — it only catches float
        # drift between the two bookkeeping paths.
        self._ledger_reserve = self.power_limit_watts

    def register_units(self, units: dict[str, UnitPowerModel]) -> None:
        """Boot: create one LPME per unit with a conservative baseline."""
        if self.lpmes:
            raise PowerIntegrityError("units already registered")
        for name, model in units.items():
            baseline = max(
                model.min_power_watts() + 0.05,
                model.max_power_watts() * self.baseline_fraction,
            )
            self.lpmes[name] = Lpme(unit_model=model, budget_watts=baseline)
        if self.committed_watts > self.power_limit_watts:
            raise PowerIntegrityError(
                f"baseline budgets {self.committed_watts:.1f} W exceed the "
                f"{self.power_limit_watts:.1f} W limit"
            )
        self._ledger_reserve = self.power_limit_watts - self.committed_watts

    @property
    def committed_watts(self) -> float:
        return sum(lpme.budget_watts for lpme in self.lpmes.values())

    @property
    def reserve_watts(self) -> float:
        return self.power_limit_watts - self.committed_watts

    def _assert_conservation(self, context: str) -> None:
        """committed + reserve must equal the limit after every movement."""
        drift = self.committed_watts + self._ledger_reserve - self.power_limit_watts
        if abs(drift) > 1e-9:
            raise PowerIntegrityError(
                f"budget conservation violated after {context}: committed "
                f"{self.committed_watts:.9f} W + reserve "
                f"{self._ledger_reserve:.9f} W != limit "
                f"{self.power_limit_watts:.9f} W (drift {drift:+.3e} W)"
            )

    def set_power_limit(self, watts: float) -> float:
        """Re-cap the board limit (fleet governor interface); returns it.

        Raising the limit grows the reserve; nothing else moves. Tightening
        first shrinks the reserve, then claws back LPME budgets above their
        static floors — proportionally to each unit's excess, in
        registration order — so committed budgets never exceed the new
        limit. A limit the static floors alone cannot satisfy is refused.
        """
        if watts < 0:
            raise PowerIntegrityError(f"negative power limit {watts}")
        floors = {
            name: lpme.unit_model.min_power_watts()
            for name, lpme in self.lpmes.items()
        }
        floor_total = sum(floors.values())
        if watts < floor_total - 1e-9:
            worst = max(floors, key=lambda name: (floors[name], name))
            raise PowerIntegrityError(
                f"limit {watts:.2f} W below the {floor_total:.2f} W static "
                f"floor of registered units (largest: {worst} at "
                f"{floors[worst]:.2f} W)"
            )
        need = self.committed_watts - watts
        if need > 0:
            excess = {
                name: self.lpmes[name].budget_watts - floors[name]
                for name in self.lpmes
            }
            total_excess = sum(excess.values())
            scale = min(1.0, need / total_excess) if total_excess > 0 else 0.0
            for name, lpme in self.lpmes.items():
                take = excess[name] * scale
                if take > 0:
                    lpme.reclaim(take)
        self.power_limit_watts = watts
        self._ledger_reserve = watts - self.committed_watts
        self.recaps += 1
        self._assert_integrity()
        self._assert_conservation(f"re-cap to {watts:.2f} W")
        return watts

    def handle_reports(self, reports: list[WindowReport]) -> dict[str, float]:
        """Process one window's LPME reports; returns grants made by unit.

        Returned budget is absorbed first, then borrow requests are served
        in order of how hard each unit is throttled (worst first), each in
        ``grant_step_watts`` increments while the reserve lasts — assuring
        "the overall power integrity is risk-free".
        """
        lpmes = self.lpmes
        requests = []
        moved = None
        for report in reports:
            if report.returned_watts:
                if report.unit not in lpmes:
                    raise PowerIntegrityError(
                        f"report from unknown unit {report.unit}"
                    )
                # The LPME already shrank its budget when it returned the
                # excess; credit the reserve ledger so conservation holds.
                self._ledger_reserve += report.returned_watts
                moved = report.unit
            if report.borrow_requested:
                requests.append(report)
        grants: dict[str, float] = {}
        if requests:
            requests.sort(key=lambda report: report.throttle, reverse=True)
        for report in requests:
            lpme = self.lpmes[report.unit]
            needed = max(
                self.grant_step_watts,
                report.projected_watts - report.budget_watts,
            )
            grant = min(needed, self.reserve_watts)
            if grant <= 0:
                self.grants_denied += 1
                continue
            lpme.grant(grant)
            grants[report.unit] = grant
            self._ledger_reserve -= grant
            moved = report.unit
            self.grants_issued += 1
        self._assert_integrity()
        if moved is not None:
            self._assert_conservation(f"grant/return cycle touching {moved}")
        return grants

    def _assert_integrity(self) -> None:
        if self.committed_watts > self.power_limit_watts + 1e-9:
            raise PowerIntegrityError(
                f"committed {self.committed_watts:.2f} W exceeds limit "
                f"{self.power_limit_watts:.2f} W"
            )

    def run_window(
        self,
        activities: dict[str, float],
        frequencies: dict[str, float],
        window_ns: float,
    ) -> dict[str, WindowReport]:
        """Convenience: observe every LPME then process the reports."""
        reports = {}
        get_activity = activities.get
        get_frequency = frequencies.get
        settled = True
        for name, lpme in self.lpmes.items():
            reports[name] = report = lpme.observe(
                get_activity(name, 0.0),
                get_frequency(name, lpme.unit_model.curve.f_max_ghz),
                window_ns,
            )
            if report.borrow_requested or report.returned_watts:
                settled = False
        if not settled:
            # Only windows with borrows or returns can move budgets; a
            # settled window would make handle_reports a no-op re-assert.
            self.handle_reports(list(reports.values()))
        return reports
