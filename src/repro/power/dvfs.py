"""Energy-efficiency management: the 4-stage DVFS loop (paper §IV-F2, Fig. 10).

Per observation window:

- **Observation** — LPME collects the compute core's busy duty cycle and its
  paired DMA engine's ratio of stalls caused by L3 access, plus projected
  power.
- **Evaluation** — CPME classifies the workload as compute-bound,
  bandwidth-bound, or balanced from the two ratios.
- **Decision** — looking at the classification history over the last few
  windows, decide whether a frequency change is warranted (hysteresis).
- **Action** — step the compute-core clock up or down inside the
  1.0-1.4 GHz envelope.

A bandwidth-bound phase therefore runs its cores at a lower clock with no
throughput loss (memory is the bottleneck), buying the ~13 % energy saving
the paper reports at a sub-3.2 % performance cost.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.power.model import DvfsCurve


class WorkloadKind(enum.Enum):
    COMPUTE_BOUND = "compute-bound"
    BANDWIDTH_BOUND = "bandwidth-bound"
    BALANCED = "balanced"


@dataclass(frozen=True)
class Observation:
    """Stage 1 payload sent from LPME to CPME."""

    busy_ratio: float
    """Compute core duty cycle in the window, [0, 1]."""
    dma_stall_ratio: float
    """Fraction of the window the core stalled on L3-bound DMA, [0, 1]."""
    projected_watts: float = 0.0

    def __post_init__(self) -> None:
        for value, label in (
            (self.busy_ratio, "busy_ratio"),
            (self.dma_stall_ratio, "dma_stall_ratio"),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} {value} outside [0, 1]")


@dataclass(frozen=True)
class DvfsDecision:
    """Outcome of one loop iteration."""

    kind: WorkloadKind
    f_ghz: float
    changed: bool
    forced: bool = False
    """True when a power cap forced the step regardless of classification."""


@dataclass
class DvfsController:
    """The closed-loop frequency governor for one clock domain."""

    curve: DvfsCurve = field(default_factory=lambda: DvfsCurve(1.0, 1.4))
    step_ghz: float = 0.1
    busy_threshold: float = 0.70
    """Busy duty cycle above which a compute-bound phase earns a step up."""
    stall_threshold: float = 0.25
    """DMA-stall ratio above which the phase counts as bandwidth-bound."""
    hysteresis_windows: int = 3
    """Consecutive same-kind windows required before acting (Decision stage)."""
    enabled: bool = True
    f_ghz: float = field(init=False)
    cap_ghz: float | None = field(init=False, default=None)
    _history: deque = field(init=False)
    decisions: list[DvfsDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        # The governor boots at maximum performance and *downclocks* when it
        # observes bandwidth-bound phases; integrity is CPME's job, so the
        # performance-first default is safe.
        self.f_ghz = self.curve.f_max_ghz
        self._history = deque(maxlen=self.hysteresis_windows)

    def set_cap(self, f_ghz: float | None) -> None:
        """Install (or lift, with None) a power-cap frequency ceiling.

        The cap is clamped to the envelope and takes effect on the next
        ``update()``: a clock above the ceiling is stepped straight down to
        it, bypassing hysteresis — the forced step the fleet governor uses
        when a device's power cap tightens mid-run.
        """
        self.cap_ghz = None if f_ghz is None else self.curve.clamp(f_ghz)

    # -- Evaluation stage ------------------------------------------------

    def classify(self, observation: Observation) -> WorkloadKind:
        if observation.dma_stall_ratio >= self.stall_threshold:
            return WorkloadKind.BANDWIDTH_BOUND
        if observation.busy_ratio >= self.busy_threshold:
            return WorkloadKind.COMPUTE_BOUND
        return WorkloadKind.BALANCED

    # -- Decision + Action stages ------------------------------------------

    def update(self, observation: Observation) -> DvfsDecision:
        """Run Evaluation -> Decision -> Action for one window."""
        kind = self.classify(observation)
        if not self.enabled:
            decision = DvfsDecision(kind=kind, f_ghz=self.f_ghz, changed=False)
            self.decisions.append(decision)
            return decision
        cap = self.cap_ghz
        if cap is not None and self.f_ghz > cap + 1e-12:
            # Forced step under cap: power integrity outranks the Decision
            # stage, so the clamp bypasses hysteresis and lands immediately.
            self.f_ghz = cap
            self._history.clear()
            decision = DvfsDecision(
                kind=kind, f_ghz=self.f_ghz, changed=True, forced=True
            )
            self.decisions.append(decision)
            return decision
        self._history.append(kind)
        changed = False
        if len(self._history) == self.hysteresis_windows and all(
            entry is kind for entry in self._history
        ):
            ceiling = self.curve.f_max_ghz if cap is None else cap
            if kind is WorkloadKind.COMPUTE_BOUND and self.f_ghz < ceiling:
                self.f_ghz = min(ceiling, self.curve.clamp(self.f_ghz + self.step_ghz))
                changed = True
            elif (
                kind is WorkloadKind.BANDWIDTH_BOUND
                and self.f_ghz > self.curve.f_min_ghz
            ):
                self.f_ghz = self.curve.clamp(self.f_ghz - self.step_ghz)
                changed = True
            if changed:
                self._history.clear()
        decision = DvfsDecision(kind=kind, f_ghz=self.f_ghz, changed=changed)
        self.decisions.append(decision)
        return decision

    # -- analysis helpers ----------------------------------------------------

    def frequency_profile(self) -> dict[float, int]:
        """Histogram of windows spent at each frequency."""
        profile: dict[float, int] = {}
        for decision in self.decisions:
            key = round(decision.f_ghz, 3)
            profile[key] = profile.get(key, 0) + 1
        return profile

    def mean_frequency_ghz(self) -> float:
        if not self.decisions:
            return self.f_ghz
        return sum(decision.f_ghz for decision in self.decisions) / len(self.decisions)
