"""Local Power Management Engine (paper §IV-F1, Fig. 9).

One LPME sits at each function unit. Per observation window it:

1. projects the power the unit needs from its observed activity,
2. enforces its assigned budget by inserting pipeline stalls/bubbles via a
   negative-feedback throttle when the projection exceeds the budget,
3. tracks the stall ratio over recent windows; when stalls exceed the
   *budget-borrow threshold* in M of the last N windows, it asks the CPME
   for more budget,
4. returns budget it demonstrably does not need.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.power.model import UnitPowerModel


@dataclass(frozen=True)
class WindowReport:
    """What one LPME observed and decided in one observation window."""

    unit: str
    activity: float
    projected_watts: float
    budget_watts: float
    throttle: float
    """Fraction of the window spent stalled to stay under budget (0 = free)."""
    borrow_requested: bool
    returned_watts: float


@dataclass
class Lpme:
    """The local engine for one function unit."""

    unit_model: UnitPowerModel
    budget_watts: float
    borrow_threshold: float = 0.05
    """Stall ratio above which a window counts as budget-starved."""
    borrow_m: int = 3
    borrow_n: int = 5
    """Request more budget when M of the last N windows were starved."""
    return_headroom: float = 1.25
    """Keep this multiple of projected need before returning the excess."""
    history: deque = field(default_factory=lambda: deque(maxlen=5))
    stall_time_total: float = 0.0
    windows_observed: int = 0

    def __post_init__(self) -> None:
        self.history = deque(maxlen=self.borrow_n)
        floor = self.unit_model.min_power_watts()
        if self.budget_watts < floor:
            raise ValueError(
                f"{self.unit_model.params.name}: budget {self.budget_watts} W "
                f"below static floor {floor} W"
            )

    @property
    def name(self) -> str:
        return self.unit_model.params.name

    def observe(
        self,
        activity: float,
        f_ghz: float,
        window_ns: float,
    ) -> WindowReport:
        """Run one observation window; returns the regulation decision.

        ``activity`` is the duty-cycle the workload *wants*; the throttle is
        how much of it the budget forces the unit to forgo.
        """
        projected = self.unit_model.power_watts(activity, f_ghz)
        throttle = 0.0
        if projected > self.budget_watts and activity > 0:
            # Negative feedback: scale activity down until the projection
            # meets the budget. Dynamic power is linear in activity, so the
            # fixpoint is closed-form.
            static = self.unit_model.params.static_watts
            dynamic = projected - static
            allowed_dynamic = max(0.0, self.budget_watts - static)
            achievable = allowed_dynamic / dynamic if dynamic > 0 else 1.0
            throttle = max(0.0, 1.0 - achievable)
        self.stall_time_total += throttle * window_ns
        self.windows_observed += 1
        self.history.append(throttle > self.borrow_threshold)

        borrow = (
            len(self.history) == self.borrow_n
            and sum(self.history) >= self.borrow_m
        )
        returned = 0.0
        if not borrow and throttle == 0.0:
            keep = max(
                self.unit_model.min_power_watts(), projected * self.return_headroom
            )
            if self.budget_watts > keep:
                returned = self.budget_watts - keep
                self.budget_watts = keep
        return WindowReport(
            unit=self.name,
            activity=activity,
            projected_watts=projected,
            budget_watts=self.budget_watts,
            throttle=throttle,
            borrow_requested=borrow,
            returned_watts=returned,
        )

    def grant(self, watts: float) -> None:
        """CPME granted additional budget."""
        if watts < 0:
            raise ValueError(f"negative grant {watts}")
        self.budget_watts += watts
        self.history.clear()

    def effective_slowdown(self, report: WindowReport) -> float:
        """Workload time dilation the throttle causes this window.

        A unit stalled for fraction ``t`` of a window delivers ``1 - t`` of
        its work, i.e. runs ``1 / (1 - t)`` slower.
        """
        if report.throttle >= 1.0:
            raise RuntimeError(f"{self.name}: budget below static floor")
        return 1.0 / (1.0 - report.throttle)
