"""Local Power Management Engine (paper §IV-F1, Fig. 9).

One LPME sits at each function unit. Per observation window it:

1. projects the power the unit needs from its observed activity,
2. enforces its assigned budget by inserting pipeline stalls/bubbles via a
   negative-feedback throttle when the projection exceeds the budget,
3. tracks the stall ratio over recent windows; when stalls exceed the
   *budget-borrow threshold* in M of the last N windows, it asks the CPME
   for more budget,
4. returns budget it demonstrably does not need.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.power.model import UnitPowerModel


class WindowReport(NamedTuple):
    """What one LPME observed and decided in one observation window.

    A NamedTuple rather than a dataclass: one report is built per unit per
    observation window (tens of thousands per launch) and tuple
    construction is an order of magnitude cheaper. ``throttle`` is the
    fraction of the window spent stalled to stay under budget (0 = free).
    """

    unit: str
    activity: float
    projected_watts: float
    budget_watts: float
    throttle: float
    borrow_requested: bool
    returned_watts: float


@dataclass
class Lpme:
    """The local engine for one function unit."""

    unit_model: UnitPowerModel
    budget_watts: float
    borrow_threshold: float = 0.05
    """Stall ratio above which a window counts as budget-starved."""
    borrow_m: int = 3
    borrow_n: int = 5
    """Request more budget when M of the last N windows were starved."""
    return_headroom: float = 1.25
    """Keep this multiple of projected need before returning the excess."""
    history: deque = field(default_factory=lambda: deque(maxlen=5))
    stall_time_total: float = 0.0
    windows_observed: int = 0

    def __post_init__(self) -> None:
        self.history = deque(maxlen=self.borrow_n)
        # Steady-state window memo: most units spend most windows at a
        # fixed point (idle, budget settled) where observe() would redo
        # the identical arithmetic. The memo is keyed on the complete
        # observable state and only populated when a window provably
        # left that state untouched, so replaying it is exact.
        self._memo_key: tuple | None = None
        self._memo_report: WindowReport | None = None
        floor = self.unit_model.min_power_watts()
        if self.budget_watts < floor:
            raise ValueError(
                f"{self.unit_model.params.name}: budget {self.budget_watts} W "
                f"below static floor {floor} W"
            )

    @property
    def name(self) -> str:
        return self.unit_model.params.name

    def observe(
        self,
        activity: float,
        f_ghz: float,
        window_ns: float,
    ) -> WindowReport:
        """Run one observation window; returns the regulation decision.

        ``activity`` is the duty-cycle the workload *wants*; the throttle is
        how much of it the budget forces the unit to forgo.
        """
        history = self.history
        budget = self.budget_watts
        state = (activity, f_ghz, window_ns, budget, tuple(history))
        if state == self._memo_key:
            report = self._memo_report
            self.stall_time_total += report.throttle * window_ns
            self.windows_observed += 1
            return report
        unit_model = self.unit_model
        projected = unit_model.power_watts(activity, f_ghz)
        throttle = 0.0
        if projected > budget and activity > 0:
            # Negative feedback: scale activity down until the projection
            # meets the budget. Dynamic power is linear in activity, so the
            # fixpoint is closed-form.
            static = unit_model.params.static_watts
            dynamic = projected - static
            allowed_dynamic = max(0.0, budget - static)
            achievable = allowed_dynamic / dynamic if dynamic > 0 else 1.0
            throttle = max(0.0, 1.0 - achievable)
        self.stall_time_total += throttle * window_ns
        self.windows_observed += 1
        history.append(throttle > self.borrow_threshold)

        borrow = (
            len(history) == self.borrow_n and sum(history) >= self.borrow_m
        )
        returned = 0.0
        if not borrow and throttle == 0.0:
            # min_power_watts() is the unit's static floor.
            keep = max(
                unit_model.params.static_watts, projected * self.return_headroom
            )
            if budget > keep:
                returned = budget - keep
                self.budget_watts = budget = keep
        if returned == 0.0 and tuple(history) == state[4]:
            # Fixed point: budget and history are exactly as they were on
            # entry, so the next identical window replays this report.
            self._memo_key = state
        else:
            self._memo_key = None
        self._memo_report = report = WindowReport(
            unit=self.name,
            activity=activity,
            projected_watts=projected,
            budget_watts=budget,
            throttle=throttle,
            borrow_requested=borrow,
            returned_watts=returned,
        )
        return report

    def grant(self, watts: float) -> None:
        """CPME granted additional budget."""
        if watts < 0:
            raise ValueError(f"negative grant {watts}")
        self.budget_watts += watts
        self.history.clear()
        self._memo_key = None

    def reclaim(self, watts: float) -> None:
        """CPME clawed budget back (board limit tightened under a cap)."""
        if watts < 0:
            raise ValueError(f"negative reclaim {watts}")
        floor = self.unit_model.min_power_watts()
        if self.budget_watts - watts < floor - 1e-12:
            raise RuntimeError(
                f"{self.name}: reclaim {watts} W would cut budget below the "
                f"{floor} W static floor"
            )
        self.budget_watts -= watts
        self.history.clear()
        self._memo_key = None

    def effective_slowdown(self, report: WindowReport) -> float:
        """Workload time dilation the throttle causes this window.

        A unit stalled for fraction ``t`` of a window delivers ``1 - t`` of
        its work, i.e. runs ``1 / (1 - t)`` slower.
        """
        if report.throttle >= 1.0:
            raise RuntimeError(f"{self.name}: budget below static floor")
        return 1.0 / (1.0 - report.throttle)
