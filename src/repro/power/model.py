"""Power models for DTU function units.

Standard CMOS first-order model: a unit draws static (leakage) power plus
dynamic power proportional to activity, frequency, and the square of supply
voltage. DVFS couples voltage to frequency linearly across the chip's
operating range (1.0-1.4 GHz on DTU 2.0, §VI-D), so stepping the clock down
saves super-linear dynamic power — the physics behind the paper's 13 %
energy-efficiency win at a 0.85-3.2 % performance cost.

Unit budgets are sized so that a fully busy chip at maximum frequency sits
at the 150 W board TDP (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DvfsCurve:
    """Frequency/voltage operating range of a clock domain."""

    f_min_ghz: float
    f_max_ghz: float
    v_min: float = 0.72
    v_max: float = 0.90

    def __post_init__(self) -> None:
        if not 0 < self.f_min_ghz <= self.f_max_ghz:
            raise ValueError(f"bad frequency range {self.f_min_ghz}..{self.f_max_ghz}")
        if not 0 < self.v_min <= self.v_max:
            raise ValueError(f"bad voltage range {self.v_min}..{self.v_max}")
        # Memo of f_ghz -> (f/f_max, (V(f)/V_max)**2). The DVFS governor
        # steps through a small discrete set of frequencies, but the power
        # manager evaluates every unit at every observation window — caching
        # the two scale factors per distinct frequency removes a clamp +
        # voltage interpolation from each of those evaluations. Entries are
        # computed by exactly the arithmetic power_watts used inline, so the
        # cached path is bit-identical.
        object.__setattr__(self, "_scale_memo", {})

    def clamp(self, f_ghz: float) -> float:
        return min(max(f_ghz, self.f_min_ghz), self.f_max_ghz)

    def voltage(self, f_ghz: float) -> float:
        """Supply voltage required to close timing at ``f_ghz``."""
        f_ghz = self.clamp(f_ghz)
        if self.f_max_ghz == self.f_min_ghz:
            return self.v_max
        alpha = (f_ghz - self.f_min_ghz) / (self.f_max_ghz - self.f_min_ghz)
        return self.v_min + alpha * (self.v_max - self.v_min)


@dataclass(frozen=True)
class UnitPowerParams:
    """Calibration of one function unit's power draw."""

    name: str
    static_watts: float
    dynamic_watts_peak: float
    """Dynamic power at 100 % activity, f_max, v_max."""


class UnitPowerModel:
    """Instantaneous power of one unit given activity and frequency."""

    def __init__(self, params: UnitPowerParams, curve: DvfsCurve) -> None:
        self.params = params
        self.curve = curve

    def power_watts(self, activity: float, f_ghz: float | None = None) -> float:
        """P = P_static + P_dyn_peak * activity * (f/f_max) * (V/V_max)^2."""
        if not 0.0 <= activity <= 1.0:
            raise ValueError(f"activity {activity} outside [0, 1]")
        curve = self.curve
        memo = curve._scale_memo
        scales = memo.get(f_ghz)
        if scales is None:
            clamped = curve.f_max_ghz if f_ghz is None else curve.clamp(f_ghz)
            f_scale = clamped / curve.f_max_ghz
            v_scale = curve.voltage(clamped) / curve.v_max
            if len(memo) > 128:  # DVFS steps are discrete; this never trips
                memo.clear()  # pragma: no cover - memo growth backstop
            scales = memo[f_ghz] = (f_scale, v_scale**2)
        params = self.params
        return (
            params.static_watts
            + params.dynamic_watts_peak * activity * scales[0] * scales[1]
        )

    def max_power_watts(self) -> float:
        return self.power_watts(1.0, self.curve.f_max_ghz)

    def min_power_watts(self) -> float:
        return self.params.static_watts

    def energy_joules(
        self, activity: float, f_ghz: float, duration_ns: float
    ) -> float:
        return self.power_watts(activity, f_ghz) * duration_ns * 1e-9


def chip_power_units(
    cores: int,
    dma_engines: int,
    tdp_watts: float,
    curve: DvfsCurve | None = None,
) -> dict[str, UnitPowerModel]:
    """Per-unit power budget for a chip: cores + DMA + HBM + fabric = TDP.

    The fixed blocks (HBM 18 W, fabric 11 W, 1.3 W per DMA engine) come off
    the top; the remainder splits over the compute cores, 11 % static /
    89 % dynamic — the standard FinFET leakage share at these nodes.
    """
    curve = curve or DvfsCurve(f_min_ghz=1.0, f_max_ghz=1.4)
    hbm_watts, fabric_watts, dma_watts = 18.0, 11.0, 1.3
    fixed = hbm_watts + fabric_watts + dma_engines * dma_watts
    if tdp_watts <= fixed:
        raise ValueError(f"TDP {tdp_watts} W below fixed blocks {fixed} W")
    per_core = (tdp_watts - fixed) / cores
    units: dict[str, UnitPowerModel] = {}
    for core in range(cores):
        units[f"core{core}"] = UnitPowerModel(
            UnitPowerParams(
                f"core{core}",
                static_watts=0.11 * per_core,
                dynamic_watts_peak=0.89 * per_core,
            ),
            curve,
        )
    # DMA engines and HBM run on a fixed clock domain (flat DVFS curve): the
    # paper scales the compute cores, not the memory path.
    flat = DvfsCurve(f_min_ghz=1.0, f_max_ghz=1.0)
    for dma in range(dma_engines):
        units[f"dma{dma}"] = UnitPowerModel(
            UnitPowerParams(
                f"dma{dma}", static_watts=0.3, dynamic_watts_peak=dma_watts - 0.3
            ),
            flat,
        )
    units["hbm"] = UnitPowerModel(
        UnitPowerParams(
            "hbm", static_watts=4.0, dynamic_watts_peak=hbm_watts - 4.0
        ),
        flat,
    )
    units["fabric"] = UnitPowerModel(
        UnitPowerParams(
            "fabric", static_watts=5.0, dynamic_watts_peak=fabric_watts - 5.0
        ),
        flat,
    )
    return units


def dtu2_power_units(curve: DvfsCurve | None = None) -> dict[str, UnitPowerModel]:
    """Per-unit power calibration for DTU 2.0 (24 cores, 6 groups, 150 W)."""
    return chip_power_units(cores=24, dma_engines=6, tdp_watts=150.0, curve=curve)


def chip_power_watts(
    units: dict[str, UnitPowerModel],
    activities: dict[str, float],
    frequencies: dict[str, float] | None = None,
) -> float:
    """Total chip draw for a snapshot of per-unit activities/frequencies."""
    frequencies = frequencies or {}
    total = 0.0
    for name, unit in units.items():
        activity = activities.get(name, 0.0)
        total += unit.power_watts(activity, frequencies.get(name))
    return total
