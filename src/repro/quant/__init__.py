"""INT8 post-training quantization with accuracy verification (§VI-A)."""

from repro.quant.quantize import (
    AccuracyReport,
    CalibrationTable,
    QuantizationScale,
    QuantizedExecutor,
    calibrate,
    verify_accuracy,
    weight_compression_bytes,
)

__all__ = [
    "AccuracyReport", "CalibrationTable", "QuantizationScale",
    "QuantizedExecutor", "calibrate", "verify_accuracy",
    "weight_compression_bytes",
]
