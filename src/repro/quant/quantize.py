"""Post-training INT8 quantization with accuracy verification.

The i20 advertises 256 TOPS at INT8 (Table I), and the paper's methodology
fixes an accuracy budget against the CPU reference: "the differences in
inference precision of the tests run on CPU and accelerators are configured
as 0.01% for all tested DNNs except for Bert Large, which is 0.05%"
(§VI-A). This module provides the standard PTQ flow those numbers imply:

1. **Observe** — run calibration batches through the FP reference executor,
   recording per-tensor dynamic ranges at every conv/GEMM boundary.
2. **Quantize** — derive symmetric per-tensor INT8 scales (abs-max or a
   percentile of it, the usual outlier guard).
3. **Verify** — evaluate the graph with fake-quantization (quantize ->
   dequantize around each matrix operand) and measure the deviation from
   the FP reference, the §VI-A precision metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.fusion import fused_members
from repro.graph.ir import Graph
from repro.graph.reference import EvaluationError, ReferenceExecutor

#: operator types whose operands run on the INT8 matrix engine
QUANTIZED_OPS = frozenset({"conv2d", "conv1d", "dense", "matmul"})

INT8_LEVELS = 127


@dataclass(frozen=True)
class QuantizationScale:
    """Symmetric per-tensor scale: real = int8 * scale."""

    tensor: str
    scale: float

    def quantize(self, values: np.ndarray) -> np.ndarray:
        if self.scale == 0.0:
            return np.zeros_like(values)
        return np.clip(np.rint(values / self.scale), -INT8_LEVELS, INT8_LEVELS)

    def fake_quantize(self, values: np.ndarray) -> np.ndarray:
        """Quantize then dequantize: the INT8 rounding the hardware sees."""
        return self.quantize(values) * self.scale


@dataclass
class CalibrationTable:
    """Per-tensor dynamic ranges observed over calibration data."""

    abs_max: dict[str, float] = field(default_factory=dict)
    samples: int = 0

    def observe(self, tensor: str, values: np.ndarray) -> None:
        peak = float(np.max(np.abs(values))) if values.size else 0.0
        self.abs_max[tensor] = max(self.abs_max.get(tensor, 0.0), peak)

    def scale_for(self, tensor: str, headroom: float = 1.0) -> QuantizationScale:
        if tensor not in self.abs_max:
            raise EvaluationError(f"tensor {tensor!r} was never observed")
        return QuantizationScale(
            tensor=tensor, scale=self.abs_max[tensor] * headroom / INT8_LEVELS
        )


class _ObservingExecutor(ReferenceExecutor):
    """FP executor that records ranges at every quantized-op boundary."""

    def __init__(
        self,
        graph: Graph,
        table: CalibrationTable,
        seed: int = 0,
        weight_cache: dict | None = None,
    ):
        super().__init__(graph, seed=seed, weight_cache=weight_cache)
        self.table = table

    def _evaluate(self, node, env):
        if node.op_type in QUANTIZED_OPS:
            for name in node.inputs:
                self.table.observe(name, self._fetch(name, env))
        super()._evaluate(node, env)


def calibrate(
    graph: Graph, batches: list[dict[str, np.ndarray]], seed: int = 0
) -> CalibrationTable:
    """Run calibration batches, returning observed dynamic ranges.

    One observing executor serves the whole sweep: weights materialize
    once and the topological schedule is sorted once, instead of paying
    both per batch. Observed ranges are per-batch maxima, so executor
    reuse cannot change the resulting table.
    """
    if not batches:
        raise EvaluationError("calibration needs at least one batch")
    table = CalibrationTable()
    executor = _ObservingExecutor(graph, table, seed=seed)
    for batch in batches:
        executor.run(**batch)
        table.samples += 1
    return table


class QuantizedExecutor(ReferenceExecutor):
    """Evaluates with INT8 fake-quantization on every matrix operand."""

    def __init__(
        self,
        graph: Graph,
        table: CalibrationTable,
        seed: int = 0,
        headroom: float = 1.0,
        weight_cache: dict | None = None,
    ) -> None:
        super().__init__(graph, seed=seed, weight_cache=weight_cache)
        self.table = table
        self.headroom = headroom
        self.quantized_tensors = 0

    def _evaluate(self, node, env):
        if node.op_type in QUANTIZED_OPS:
            quantized = list(node.inputs)
            operands = []
            for name in quantized:
                values = self._fetch(name, env)
                scale = self.table.scale_for(name, self.headroom)
                operands.append(scale.fake_quantize(values))
                self.quantized_tensors += 1
            handler = self._handler(node.op_type)
            results = handler(node, operands)
            if not isinstance(results, tuple):
                results = (results,)
            for name, value in zip(node.outputs, results):
                env[name] = np.asarray(value, dtype=np.float64)
        else:
            super()._evaluate(node, env)


@dataclass(frozen=True)
class AccuracyReport:
    """FP-vs-INT8 deviation, the §VI-A precision metric."""

    mean_relative_error: float
    max_relative_error: float
    top1_agreement: float
    """Fraction of rows whose argmax matches the FP reference (1.0 when the
    output is not a classification head)."""

    @property
    def precision_difference_percent(self) -> float:
        return self.mean_relative_error * 100.0


def verify_accuracy(
    graph: Graph,
    table: CalibrationTable,
    batches: list[dict[str, np.ndarray]],
    seed: int = 0,
) -> AccuracyReport:
    """Measure INT8 deviation from the FP reference on held-out batches.

    The FP and fake-quantized executors are built once and share one
    weight cache (weights are deterministic in (name, seed)), so the
    sweep pays weight materialization and topological sorting once
    instead of twice per batch.
    """
    relative_errors = []
    max_error = 0.0
    agreements = []
    weights: dict = {}
    fp_executor = ReferenceExecutor(graph, seed=seed, weight_cache=weights)
    q_executor = QuantizedExecutor(graph, table, seed=seed, weight_cache=weights)
    for batch in batches:
        reference = fp_executor.run(**batch)
        quantized = q_executor.run(**batch)
        for name in graph.outputs:
            fp_out, q_out = reference[name], quantized[name]
            denom = np.maximum(np.abs(fp_out), 1e-6)
            errors = np.abs(q_out - fp_out) / denom
            relative_errors.append(float(errors.mean()))
            max_error = max(max_error, float(errors.max()))
            if fp_out.ndim >= 2 and fp_out.shape[-1] > 1:
                agreements.append(
                    float(
                        (fp_out.argmax(axis=-1) == q_out.argmax(axis=-1)).mean()
                    )
                )
    return AccuracyReport(
        mean_relative_error=float(np.mean(relative_errors)),
        max_relative_error=max_error,
        top1_agreement=float(np.mean(agreements)) if agreements else 1.0,
    )


def weight_compression_bytes(graph: Graph) -> tuple[int, int]:
    """(fp16_bytes, int8_bytes) of the quantizable weights — the memory and
    bandwidth win INT8 deployment buys on top of the 2x compute rate."""
    fp16 = 0
    int8 = 0
    for node in graph.topological_nodes():
        for member in fused_members(node):
            if member.op_type not in QUANTIZED_OPS:
                continue
            for name in member.inputs:
                if name in graph.initializers:
                    elements = graph.tensor_type(name).num_elements()
                    fp16 += elements * 2
                    int8 += elements + 4  # payload + per-tensor scale
    return fp16, int8
