"""Runtime ("TopsRuntime"): device handle, executor, profiler."""

from repro.runtime.executor import ExecutionResult, Executor, KernelTiming
from repro.runtime.host import EndToEndResult, HostSession, PcieLink, model_io_bytes
from repro.runtime.pipeline import PipelineExecutor, PipelineResult, StagePlan
from repro.runtime.profiler import CategoryStat, Profile
from repro.runtime.runtime import Device

__all__ = [
    "CategoryStat", "Device", "EndToEndResult", "ExecutionResult",
    "Executor", "HostSession", "KernelTiming", "PcieLink", "Profile",
    "model_io_bytes", "PipelineExecutor", "PipelineResult", "StagePlan",
]
