"""The execution engine: compiled kernels on the simulated accelerator.

This is where all the substrates meet. For each kernel, on each assigned
processing group:

1. the instruction buffer is consulted (cache hit / prefetch / miss stall),
   and a prefetch for the *next* kernel is issued (§IV-B);
2. the group's DMA engine pulls the kernel's share of inputs + weights from
   L3 — weights go through one hardware broadcast per cluster when several
   groups share them (§IV-C); sparse activations travel compressed when the
   chip supports it; repeat mode collapses the tiling plan's N transactions
   into one configuration (Fig. 6);
3. compute proceeds overlapped with the remaining DMA (double buffering:
   makespan is max(compute, dma) plus the first-tile prologue);
4. groups rendezvous through the synchronization engine before the next
   kernel.

A power-manager process samples fixed observation windows, feeding measured
core/DMA duty cycles to the CPME/LPMEs (power integrity) and the DVFS
governor (energy efficiency), whose frequency choice changes the compute
time of subsequent kernels — the closed loop of Fig. 10. Energy integrates
the unit power models over every window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.kernel import Kernel
from repro.compiler.lowering import CompiledModel
from repro.core.accelerator import Accelerator
from repro.core.processing_group import ProcessingGroup
from repro.core.resource import Assignment
from repro.power.dvfs import Observation
from repro.sim.kernel import AllOf, Timeout
from repro.sync.events import Barrier

#: sustained fraction of peak the compute engines reach per kernel category
#: (vector/matrix pipelines never hit 100 % of the datasheet number)
DTU_CATEGORY_EFFICIENCY = {
    "conv": 0.82,
    "gemm": 0.80,
    "elementwise": 0.55,
    "activation": 0.55,
    "norm": 0.50,
    "softmax": 0.45,
    "pool": 0.55,
    "reduce": 0.50,
    "layout": 0.90,
    "embedding": 0.35,
    "sort": 0.50,
}

#: bitmask sparse format overhead: 1 mask bit per element; at FP16 that is
#: 1/16 of the dense payload (see repro.dma.sparse)
_SPARSE_MASK_FRACTION = 1.0 / 16.0

#: dynamic-power fraction a core burns while stalled (clock tree, issue
#: logic) relative to full activity — imperfect clock gating
_STALL_CLOCK_ACTIVITY = 0.60


@dataclass
class KernelTiming:
    """Measured timeline of one kernel execution."""

    name: str
    category: str
    start_ns: float
    end_ns: float
    compute_ns: float
    dma_ns: float
    icache_stall_ns: float
    sync_ns: float
    clock_ghz: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class ExecutionResult:
    """Everything one model run produced."""

    latency_ns: float
    energy_joules: float
    kernel_timings: list[KernelTiming]
    mean_power_watts: float
    mean_frequency_ghz: float
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def latency_ms(self) -> float:
        return self.latency_ns / 1e6

    def throughput_samples_per_s(self, batch: int = 1) -> float:
        if self.latency_ns == 0:
            return float("inf")
        return batch * 1e9 / self.latency_ns


class Executor:
    """Runs compiled models on one accelerator instance."""

    def __init__(
        self,
        accelerator: Accelerator,
        window_ns: float = 15_000.0,
    ) -> None:
        self.accelerator = accelerator
        self.window_ns = window_ns
        self._finished = False
        self._energy_joules = 0.0
        self._power_samples: list[float] = []
        self._power_timeline: list[tuple[float, float]] = []
        #: parent span for observability (set by Device.launch when an
        #: Observability hub is attached to the accelerator)
        self.trace_ctx = None

    # -- kernel-level timing math --------------------------------------------

    def _compute_time_ns(
        self, kernel: Kernel, cores: int, clock_ghz: float, num_groups: int = 1
    ) -> float:
        """Time one group needs for its 1/num_groups share of the kernel."""
        if kernel.cost.flops <= 0:
            return 0.0
        chip = self.accelerator.chip
        rate = chip.core_flops_per_ns(kernel.dtype, clock_ghz) * cores
        efficiency = DTU_CATEGORY_EFFICIENCY.get(kernel.category, 0.5)
        if kernel.tensorization is not None:
            efficiency *= kernel.tensorization.utilization
        effective = rate * efficiency
        if effective <= 0:
            raise RuntimeError(f"kernel {kernel.name}: zero compute throughput")
        return kernel.cost.flops / num_groups / effective

    def _wire_bytes(self, kernel: Kernel, activation_bytes: int) -> int:
        """Bytes activations occupy on the L3 wire, after sparse compression."""
        chip = self.accelerator.chip
        if not chip.features.sparse_dma or kernel.sparsity <= 0.0:
            return activation_bytes
        dense_kept = 1.0 - kernel.sparsity
        compressed = activation_bytes * (dense_kept + _SPARSE_MASK_FRACTION)
        return min(activation_bytes, int(compressed))

    # -- per-group kernel process ---------------------------------------------

    def _run_kernel_on_group(
        self,
        kernel: Kernel,
        next_kernel: Kernel | None,
        group: ProcessingGroup,
        num_groups: int,
        barrier: Barrier,
        weight_leader: bool,
        timings: dict,
    ):
        sim = self.accelerator.sim
        chip = self.accelerator.chip
        trace = self.accelerator.trace
        start = sim.now
        clock = self.accelerator.clock_ghz
        injector = self.accelerator.faults

        # A fatal fault queued earlier in this launch: the launch is dead,
        # so fast-forward — arrive at the barrier with no work so sibling
        # groups drain cleanly (no dangling ports or barriers), and let
        # run_concurrent raise the typed fault once the simulation ends.
        if injector is not None and injector.fatal_pending:
            yield barrier.arrive()
            return

        # 1. Instruction buffer: fetch this kernel, prefetch the next.
        icache = group.icaches[0]
        fetch = icache.fetch(kernel.name, kernel.code_bytes, sim.now)
        if next_kernel is not None:
            icache.prefetch(next_kernel.name, next_kernel.code_bytes, sim.now)
        if fetch.stall_ns > 0:
            trace.record(f"icache.{group.name}", kernel.name, sim.now, sim.now + fetch.stall_ns)
            yield Timeout(fetch.stall_ns)

        # 2. DMA: this group's share of activations, plus weights.
        share_in = kernel.cost.input_bytes // num_groups
        share_out = kernel.cost.output_bytes // num_groups
        wire_in = self._wire_bytes(kernel, share_in)
        weight_bytes = kernel.cost.weight_bytes
        broadcast = (
            chip.features.l2_broadcast and num_groups > 1 and weight_leader
        )
        if num_groups > 1 and chip.features.l2_broadcast and not weight_leader:
            weight_bytes = 0  # the leader's broadcast delivers our copy
        configurations = 1
        if kernel.tiling is not None:
            configurations = kernel.tiling.dma_configurations

        l2_level = group.l2.level
        l3 = self.accelerator.l3
        dma_bytes = wire_in + share_out + (0 if broadcast else weight_bytes)

        compute_ns = self._compute_time_ns(
            kernel, cores=group.num_cores, clock_ghz=clock, num_groups=num_groups
        )
        if injector is not None:
            # Hang -> the group burns the watchdog window and the launch is
            # declared dead; slowdown -> derated compute time this kernel.
            compute_ns = injector.perturb_compute(
                kernel.name, group.name, compute_ns, sim.now
            )
            # Silent corruption: wrong numbers, no error signal — timing
            # is untouched and nothing raises; only a detected=False
            # record marks that this kernel's output is wrong.
            injector.silent_compute(kernel.name, group.name, sim.now)

        dma_start = sim.now
        dma_processes = []
        if broadcast:
            destinations = [
                other.l2.level
                for other in self.accelerator.groups
                if other.group_id.cluster == group.group_id.cluster
            ]
            dma_processes.append(
                sim.spawn(
                    group.dma.transfer(
                        kernel.cost.weight_bytes,
                        l3,
                        destinations,
                        configurations=1,
                        hardware_broadcast=True,
                        label=f"{kernel.name}.weights",
                    )
                )
            )
        if dma_bytes > 0:
            dma_processes.append(
                sim.spawn(
                    group.dma.transfer(
                        dma_bytes,
                        l3,
                        l2_level,
                        configurations=configurations,
                        wire_bytes=dma_bytes,
                        label=kernel.name,
                    )
                )
            )

        # 3. Compute overlapped with DMA (double buffering). Compute has no
        # cross-resource interaction, so it is a bare timer event rather
        # than a spawned process — same completion time, two fewer event
        # dispatches per kernel per group.
        compute_start = sim.now
        waits = [process.done_event for process in dma_processes]
        waits.append(sim.timer(compute_ns))
        yield AllOf(waits)
        dma_ns = sim.now - dma_start
        trace.record(f"core.{group.name}", kernel.name, compute_start, compute_start + compute_ns)
        # LPME event counters (§IV-F): time the core spent stalled waiting
        # for L3-bound DMA after its compute share finished. This is the
        # "ratio of DMA stalls" signal the DVFS loop classifies on.
        if sim.now > compute_start + compute_ns:
            trace.record(
                f"stall.{group.name}",
                kernel.name,
                compute_start + compute_ns,
                sim.now,
            )

        # 4. Rendezvous with sibling groups before the next kernel (through
        # the sync engine, so lost-event faults take its timeout path).
        sync_start = sim.now
        yield from group.sync.arrive(barrier)
        sync_ns = sim.now - sync_start

        timings.setdefault(kernel.name, []).append(
            KernelTiming(
                name=kernel.name,
                category=kernel.category,
                start_ns=start,
                end_ns=sim.now,
                compute_ns=compute_ns,
                dma_ns=dma_ns,
                icache_stall_ns=fetch.stall_ns,
                sync_ns=sync_ns,
                clock_ghz=clock,
            )
        )

    # -- power manager ----------------------------------------------------------

    def _power_manager(self):
        accelerator = self.accelerator
        sim = accelerator.sim
        trace = accelerator.trace
        chip = accelerator.chip
        units = accelerator.power_units
        cpme = accelerator.cpme
        dvfs = accelerator.dvfs
        group_names = [group.name for group in accelerator.groups]
        num_groups = len(group_names)
        cores_per_group = chip.cores_per_group
        window_ns = self.window_ns
        busy_in = trace.busy_time

        # Window-invariant lookups, hoisted: engine/unit key strings and the
        # core-index -> group-index map never change across windows.
        core_engines = [f"core.{name}" for name in group_names]
        dma_engines = [f"dma.{name}" for name in group_names]
        stall_engines = [f"stall.{name}" for name in group_names]
        core_group = [
            min(index // cores_per_group, num_groups - 1)
            for index in range(chip.total_cores)
        ]
        core_keys = [f"core{index}" for index in range(chip.total_cores)]
        dma_group = [
            min(index, num_groups - 1) for index in range(chip.total_groups)
        ]
        dma_keys = [f"dma{index}" for index in range(chip.total_groups)]
        core_units = [name for name in units if name.startswith("core")]

        while not self._finished:
            window_start = sim.now
            yield Timeout(window_ns)
            window_end = sim.now
            if self._finished:
                # Clamp the last window to the workload's actual end so the
                # idle tail is neither billed for energy nor latency.
                window_end = min(window_end, self._main_end)
            span = window_end - window_start
            if span <= 0:
                break

            # One trace query per engine per window: utilization is
            # busy_time / span by definition, so derive it instead of
            # asking the trace twice (identical float division).
            core_busy = [
                busy_in(engine, window_start, window_end)
                for engine in core_engines
            ]
            dma_busy = [
                busy_in(engine, window_start, window_end)
                for engine in dma_engines
            ]
            stall_busy = [
                busy_in(engine, window_start, window_end)
                for engine in stall_engines
            ]
            core_utils = [busy / span for busy in core_busy]
            dma_utils = [busy / span for busy in dma_busy]
            stall_utils = [busy / span for busy in stall_busy]
            mean_core = sum(core_utils) / num_groups
            mean_dma = sum(dma_utils) / num_groups

            # DVFS loop: Observation -> Evaluation -> Decision -> Action.
            # LPMEs report event time, not wall-clock: of the cycles spent
            # inside kernels, how many computed vs stalled on L3-bound DMA.
            busy_time = sum(core_busy)
            stall_time = sum(stall_busy)
            in_kernel = busy_time + stall_time
            if in_kernel > 0:
                dvfs.update(
                    Observation(
                        busy_ratio=min(1.0, busy_time / in_kernel),
                        dma_stall_ratio=min(1.0, stall_time / in_kernel),
                    )
                )

            # Power integrity: LPMEs observe, CPME redistributes budget.
            # A stalled core is not free: its clock tree and issue pipeline
            # keep toggling while it waits on DMA, so stalled time counts as
            # partial activity — the power DVFS reclaims by downclocking
            # bandwidth-bound phases.
            group_activity = [
                min(
                    1.0,
                    core_utils[index]
                    + _STALL_CLOCK_ACTIVITY * stall_utils[index],
                )
                for index in range(num_groups)
            ]
            activities: dict[str, float] = {}
            for key, group_index in zip(core_keys, core_group):
                activities[key] = group_activity[group_index]
            for key, group_index in zip(dma_keys, dma_group):
                activities[key] = min(1.0, dma_utils[group_index])
            activities["hbm"] = min(1.0, mean_dma)
            activities["fabric"] = min(1.0, (mean_core + mean_dma) / 2)
            frequencies = dict.fromkeys(core_units, accelerator.clock_ghz)
            reports = cpme.run_window(activities, frequencies, span)

            # chip_power_watts(units, activities, frequencies) walks the
            # same units in the same order with the same activities and
            # frequencies the LPMEs just observed, so the chip draw is
            # exactly the left-to-right sum of the projections already in
            # the window reports.
            power = 0.0
            for report in reports.values():
                power += report.projected_watts
            self._power_samples.append(power)
            self._power_timeline.append((window_end, power))
            self._energy_joules += power * span * 1e-9

    # -- top level ------------------------------------------------------------

    def run(
        self,
        compiled: CompiledModel,
        num_groups: int | None = None,
        tenant: str = "default",
    ) -> ExecutionResult:
        """Execute ``compiled`` once; returns latency/energy/timelines."""
        accelerator = self.accelerator
        if num_groups is None:
            num_groups = accelerator.chip.groups_per_cluster
        assignment = accelerator.resources.assign(tenant, num_groups)
        try:
            return self.run_on(compiled, assignment)
        finally:
            accelerator.resources.release(tenant)

    def _model_process(
        self,
        compiled: CompiledModel,
        groups: list[ProcessingGroup],
        timings: dict,
        completions: dict[str, float],
        label: str,
    ):
        """Generator: run one compiled model's kernels on its group slice."""
        sim = self.accelerator.sim
        kernels = compiled.kernels
        for index, kernel in enumerate(kernels):
            next_kernel = kernels[index + 1] if index + 1 < len(kernels) else None
            barrier = Barrier(
                sim, parties=len(groups), name=f"{label}.{kernel.name}.sync"
            )
            processes = [
                sim.spawn(
                    self._run_kernel_on_group(
                        kernel,
                        next_kernel,
                        group,
                        len(groups),
                        barrier,
                        weight_leader=(position == 0),
                        timings=timings,
                    )
                )
                for position, group in enumerate(groups)
            ]
            yield AllOf([process.done_event for process in processes])
        completions[label] = sim.now

    def _collect(
        self,
        compiled: CompiledModel,
        groups: list[ProcessingGroup],
        timings: dict,
        latency_ns: float,
    ) -> ExecutionResult:
        flat_timings = [
            timing
            for kernel in compiled.kernels
            for timing in timings.get(kernel.name, [])[:1]
        ]
        mean_power = (
            sum(self._power_samples) / len(self._power_samples)
            if self._power_samples
            else 0.0
        )
        counters = {
            "icache_hits": sum(g.icaches[0].hits for g in groups),
            "icache_misses": sum(g.icaches[0].misses for g in groups),
            "icache_prefetch_hits": sum(g.icaches[0].prefetch_hits for g in groups),
            "dma_configurations": sum(g.dma.stats.configurations for g in groups),
            "dma_bytes": sum(g.dma.stats.bytes_moved for g in groups),
            "dma_wire_bytes": sum(g.dma.stats.wire_bytes for g in groups),
        }
        if self.accelerator.faults is not None:
            counters["dma_replays"] = sum(g.dma.stats.replays for g in groups)
            counters["sync_lost_events"] = sum(
                g.sync.stats.lost_events for g in groups
            )
            counters.update(self.accelerator.faults.counters())
        return ExecutionResult(
            latency_ns=latency_ns,
            energy_joules=self._energy_joules,
            kernel_timings=flat_timings,
            mean_power_watts=mean_power,
            mean_frequency_ghz=self.accelerator.dvfs.mean_frequency_ghz()
            if self.accelerator.dvfs.decisions
            else self.accelerator.clock_ghz,
            counters=counters,
        )

    def run_on(
        self, compiled: CompiledModel, assignment: Assignment
    ) -> ExecutionResult:
        """Execute on an assignment the caller already holds (multi-tenant
        serving keeps long-lived assignments across many launches)."""
        results = self.run_concurrent({assignment.tenant: (compiled, assignment)})
        return results[assignment.tenant]

    def run_concurrent(
        self, jobs: dict[str, tuple[CompiledModel, Assignment]]
    ) -> dict[str, ExecutionResult]:
        """Execute several tenants' models *simultaneously* on their slices.

        This is §IV-E running in the detailed simulator: every tenant's
        kernels progress in parallel on isolated processing groups, sharing
        only the L3 port and the chip-wide power envelope. Returns one
        ExecutionResult per tenant (energy/power fields are chip-wide).
        """
        if not jobs:
            raise ValueError("run_concurrent needs at least one job")
        sim = self.accelerator.sim
        self._finished = False
        self._energy_joules = 0.0
        self._power_samples = []
        self._power_timeline = []
        start_time = sim.now
        self._main_end = start_time
        trace_mark = len(self.accelerator.trace.intervals)
        fault_mark = (
            len(self.accelerator.faults.records)
            if self.accelerator.faults is not None
            else 0
        )

        groups_by_tenant = {
            tenant: [self.accelerator.group(gid) for gid in assignment.groups]
            for tenant, (_compiled, assignment) in jobs.items()
        }
        timings_by_tenant: dict[str, dict] = {tenant: {} for tenant in jobs}
        completions: dict[str, float] = {}

        def _supervisor():
            mains = [
                sim.spawn(
                    self._model_process(
                        compiled,
                        groups_by_tenant[tenant],
                        timings_by_tenant[tenant],
                        completions,
                        label=tenant,
                    ),
                    name=f"executor.{tenant}",
                )
                for tenant, (compiled, _assignment) in jobs.items()
            ]
            yield AllOf([main.done_event for main in mains])
            self._finished = True
            self._main_end = sim.now

        sim.spawn(_supervisor(), name="executor.supervisor")
        sim.spawn(self._power_manager(), name="executor.power")
        sim.run()

        fault = None
        injector = self.accelerator.faults
        if injector is not None:
            fault = injector.take_fatal()
            if fault is not None:
                # The simulation drained cleanly (fatal faults fast-forward,
                # they never strand ports or barriers), so the launch can be
                # retried on this same accelerator. Surface the typed fault
                # with the simulated time the failed attempt consumed.
                fault.elapsed_ns = max(completions.values()) - start_time

        results = None
        if fault is None:
            results = {
                tenant: self._collect(
                    compiled,
                    groups_by_tenant[tenant],
                    timings_by_tenant[tenant],
                    latency_ns=completions[tenant] - start_time,
                )
                for tenant, (compiled, _assignment) in jobs.items()
            }

        if self.accelerator.obs is not None:
            self._emit_observability(
                jobs, groups_by_tenant, timings_by_tenant, completions,
                results, start_time, trace_mark, fault_mark,
            )
        if fault is not None:
            raise fault
        return results

    # -- observability bridge ------------------------------------------------

    def _emit_observability(
        self,
        jobs: dict,
        groups_by_tenant: dict,
        timings_by_tenant: dict,
        completions: dict[str, float],
        results: "dict[str, ExecutionResult] | None",
        start_time: float,
        trace_mark: int,
        fault_mark: int,
    ) -> None:
        """Report this run into the attached Observability hub.

        Runs once per launch, after the simulation drained — nothing here
        touches the simulated hot path, so with no hub attached the run is
        bit-identical and pays zero cost.
        """
        obs = self.accelerator.obs
        tracer = obs.tracer
        metrics = obs.metrics
        sim_now = self.accelerator.sim.now

        # runtime layer: one span per tenant run, one child span per kernel.
        flops_by_kernel = {
            kernel.name: (kernel.category, kernel.cost.flops)
            for compiled, _assignment in jobs.values()
            for kernel in compiled.kernels
        }
        kernel_hist = metrics.histogram(
            "runtime_kernel_duration_ns",
            "wall time of one kernel on its group slice", unit="ns",
        )
        kernel_count = metrics.counter(
            "runtime_kernels_total", "kernels executed"
        )
        kernel_flops = metrics.counter(
            "runtime_kernel_flops_total", "FLOPs of executed kernels",
            unit="flops",
        )
        tenant_ctx = {}
        for tenant, (compiled, _assignment) in jobs.items():
            end = completions.get(tenant, sim_now)
            ctx = tracer.add_span(
                f"run:{compiled.name}", layer="runtime",
                start_ns=start_time, end_ns=end,
                parent=self.trace_ctx, track=f"executor.{tenant}",
                tenant=tenant, model=compiled.name,
                groups=len(groups_by_tenant[tenant]),
            )
            tenant_ctx[tenant] = ctx
            for kernel in compiled.kernels:
                recorded = timings_by_tenant[tenant].get(kernel.name, [])
                for timing in recorded[:1]:
                    tracer.add_span(
                        timing.name, layer="runtime",
                        start_ns=timing.start_ns, end_ns=timing.end_ns,
                        parent=ctx, track=f"kernels.{tenant}",
                        cat=timing.category,
                        compute_ns=timing.compute_ns, dma_ns=timing.dma_ns,
                        icache_stall_ns=timing.icache_stall_ns,
                        sync_ns=timing.sync_ns, clock_ghz=timing.clock_ghz,
                    )
                    kernel_hist.observe(
                        timing.duration_ns, category=timing.category
                    )
                    kernel_count.inc(category=timing.category)
                    _category, flops = flops_by_kernel[timing.name]
                    kernel_flops.inc(flops, category=timing.category)

        # sim layer: every engine interval this run appended to the trace.
        ctx_by_group = {
            group.name: tenant_ctx[tenant]
            for tenant, groups in groups_by_tenant.items()
            for group in groups
        }
        engine_busy = metrics.counter(
            "sim_engine_busy_ns_total",
            "busy time per engine per processing group", unit="ns",
        )
        for interval in self.accelerator.trace.intervals[trace_mark:]:
            family, _, group_name = interval.engine.partition(".")
            tracer.add_span(
                interval.label, layer="sim",
                start_ns=interval.start, end_ns=interval.end,
                parent=ctx_by_group.get(group_name, self.trace_ctx),
                track=interval.engine, cat=family,
            )
            engine_busy.inc(interval.duration, engine=family, group=group_name)

        # fault layer: every injector record this run produced, as a span
        # whose duration is the recovery penalty the plan charges (zero for
        # perturbations whose cost is folded into the component's own
        # interval, e.g. DMA replays).
        injector = self.accelerator.faults
        if injector is not None and len(injector.records) > fault_mark:
            plan = injector.plan
            penalties = {
                "ecc.ce": plan.ecc_retry_ns,
                "sync.lost": plan.sync_timeout_ns,
                "core.hang": plan.watchdog_timeout_ns,
            }
            injected = metrics.counter(
                "faults_injected_total", "hardware faults injected"
            )
            for record in injector.records[fault_mark:]:
                # Fleet deployments share one tracer across devices: prefix
                # the track with the device identity so fault streams from
                # distinct boards never collide on one row.
                track = record.component
                if record.device:
                    track = f"{record.device}.{record.component}"
                tracer.add_span(
                    record.kind, layer="fault",
                    start_ns=record.time_ns,
                    end_ns=record.time_ns + penalties.get(record.kind, 0.0),
                    parent=self.trace_ctx, track=track,
                    recovered=record.recovered, detail=record.detail,
                )
                injected.inc(
                    kind=record.kind,
                    recovered=str(record.recovered).lower(),
                )

        # power layer: the power-manager's window samples + energy totals.
        for when, watts in self._power_timeline:
            tracer.add_counter_sample(
                "chip_power_watts", layer="power", time_ns=when, watts=watts
            )
        metrics.counter(
            "power_energy_joules_total", "energy integrated over windows",
            unit="joules",
        ).inc(self._energy_joules)
        metrics.counter(
            "power_windows_total", "power-manager observation windows"
        ).inc(len(self._power_timeline))
        if self._power_samples:
            metrics.gauge(
                "power_mean_watts", "mean chip power of the last launch",
                unit="watts",
            ).set(sum(self._power_samples) / len(self._power_samples))
        metrics.gauge(
            "power_mean_frequency_ghz",
            "mean DVFS frequency of the last launch", unit="ghz",
        ).set(
            self.accelerator.dvfs.mean_frequency_ghz()
            if self.accelerator.dvfs.decisions
            else self.accelerator.clock_ghz
        )

        # engine core: dispatch + fast-path accounting (the `repro profile`
        # engine table; docs/sim-internals.md). Gauges, not counters: these
        # snapshot monotonic totals owned by the engine objects.
        sim = self.accelerator.sim
        metrics.gauge(
            "sim_events_dispatched", "event-core wakeups dispatched"
        ).set(getattr(sim, "events_dispatched", 0), engine=sim.engine)
        metrics.gauge(
            "sim_time_steps", "distinct timestamps the clock stepped through"
        ).set(getattr(sim, "time_steps", 0), engine=sim.engine)
        query_stats = self.accelerator.trace.query_stats()
        metrics.gauge(
            "sim_busy_queries", "trace busy-time queries by evaluation path"
        ).set(query_stats["scalar_queries"], path="scalar")
        metrics.gauge("sim_busy_queries").set(
            query_stats["vector_queries"], path="vector"
        )
        metrics.gauge(
            "sim_timeout_pool_hits", "interned Timeout reuses (process-wide)"
        ).set(Timeout.pool_hits)
        metrics.gauge(
            "sim_timeout_pool_misses", "Timeout allocations (process-wide)"
        ).set(Timeout.pool_misses)

        # hardware counters mirrored from the results.
        if results:
            mirrored = {
                "icache_hits": "sim_icache_hits_total",
                "icache_misses": "sim_icache_misses_total",
                "icache_prefetch_hits": "sim_icache_prefetch_hits_total",
                "dma_configurations": "sim_dma_configurations_total",
                "dma_bytes": "sim_dma_bytes_total",
                "dma_wire_bytes": "sim_dma_wire_bytes_total",
            }
            for result in results.values():
                for source, target in mirrored.items():
                    if source in result.counters:
                        metrics.counter(target).inc(result.counters[source])
