"""Host-device interface: PCIe transfers and end-to-end inference latency.

Table I lists the i20's interconnect as PCIe Gen4 x16 at 64 GB/s, and §V-B
describes the CUDA-like host flow: "the developer needs to allocate device
memory and launch the kernel to interact with accelerator from the host
CPU". This module completes the latency picture a cloud operator sees —
host-to-device input upload, device execution, device-to-host readback —
with optional stream pipelining (upload of request *n+1* overlaps compute
of request *n*).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.lowering import CompiledModel
from repro.runtime.executor import ExecutionResult
from repro.runtime.runtime import Device


@dataclass(frozen=True)
class PcieLink:
    """One direction-agnostic PCIe link."""

    bandwidth_gbps: float = 64.0
    latency_us: float = 5.0
    """Round-trip submission latency (driver + doorbell + DMA setup)."""

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth_gbps}")

    def transfer_time_ns(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        return self.latency_us * 1e3 + nbytes / self.bandwidth_gbps


@dataclass(frozen=True)
class EndToEndResult:
    """Latency breakdown of one host-visible inference."""

    h2d_ns: float
    device_ns: float
    d2h_ns: float
    device_result: ExecutionResult

    @property
    def total_ns(self) -> float:
        return self.h2d_ns + self.device_ns + self.d2h_ns

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6

    @property
    def pcie_share(self) -> float:
        """Fraction of end-to-end latency spent on the interconnect."""
        if self.total_ns == 0:
            return 0.0
        return (self.h2d_ns + self.d2h_ns) / self.total_ns

    def pipelined_interval_ns(self) -> float:
        """Steady-state per-request interval with stream overlap.

        With separate copy and compute queues, the bottleneck stage sets
        the request interval: max(upload, execute, readback).
        """
        return max(self.h2d_ns, self.device_ns, self.d2h_ns)


def model_io_bytes(compiled: CompiledModel) -> tuple[int, int]:
    """(input_bytes, output_bytes) crossing PCIe for one inference.

    The first kernel's activation inputs arrive from the host; the last
    kernel's outputs return. Weights are resident on the device after the
    one-time model load (not charged per inference).
    """
    if not compiled.kernels:
        return 0, 0
    first = compiled.kernels[0]
    last = compiled.kernels[-1]
    return first.cost.input_bytes, last.cost.output_bytes


class HostSession:
    """A host process driving one simulated device over PCIe."""

    def __init__(self, device: Device, link: PcieLink | None = None) -> None:
        self.device = device
        self.link = link or PcieLink(
            bandwidth_gbps=device.accelerator.chip.pcie_gbps
        )

    def infer(
        self,
        compiled: CompiledModel,
        num_groups: int | None = None,
        tenant: str = "host",
    ) -> EndToEndResult:
        """One synchronous end-to-end inference."""
        input_bytes, output_bytes = model_io_bytes(compiled)
        device_result = self.device.launch(
            compiled, num_groups=num_groups, tenant=tenant
        )
        return EndToEndResult(
            h2d_ns=self.link.transfer_time_ns(input_bytes),
            device_ns=device_result.latency_ns,
            d2h_ns=self.link.transfer_time_ns(output_bytes),
            device_result=device_result,
        )

    def pipelined_throughput_per_s(self, result: EndToEndResult) -> float:
        """Requests/second with copy/compute stream overlap."""
        interval = result.pipelined_interval_ns()
        if interval == 0:
            return float("inf")
        return 1e9 / interval
