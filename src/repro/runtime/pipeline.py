"""Pipeline (layer-wise) parallelism across processing groups.

The paper's executor splits every kernel *data-parallel* across the
assigned groups. For streaming inference there is a second classical
mapping the resource abstraction (§IV-E) enables: partition the network's
kernels into *stages*, pin each stage to its own processing-group slice,
and stream requests through — stage `s` works on request `n` while stage
`s+1` finishes request `n-1`. Steady-state throughput is set by the
slowest stage, and cross-stage handoffs ride the synchronization engine's
1-to-1 pattern (§IV-D).

This is flagged in DESIGN.md as an extension (the paper does not evaluate
pipelining); it reuses the per-kernel timing model of
:class:`~repro.runtime.executor.Executor` and runs the stream on the same
discrete-event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.lowering import CompiledModel
from repro.core.accelerator import Accelerator
from repro.runtime.executor import Executor
from repro.sim.kernel import AllOf, Timeout
from repro.sync.events import Barrier, Semaphore


class PipelineError(RuntimeError):
    """Invalid pipeline configuration."""


@dataclass(frozen=True)
class StagePlan:
    """One pipeline stage: a contiguous kernel range on a group slice."""

    stage: int
    kernel_range: tuple[int, int]
    groups: tuple
    estimated_ns: float


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of streaming ``requests`` inferences through the pipeline."""

    requests: int
    makespan_ns: float
    first_latency_ns: float
    stages: tuple[StagePlan, ...]

    @property
    def throughput_per_s(self) -> float:
        if self.makespan_ns == 0:
            return float("inf")
        return self.requests * 1e9 / self.makespan_ns

    @property
    def steady_interval_ns(self) -> float:
        """Per-request interval once the pipeline is full."""
        if self.requests <= 1:
            return self.makespan_ns
        return (self.makespan_ns - self.first_latency_ns) / (self.requests - 1)


def partition_stages(
    compiled: CompiledModel,
    executor: Executor,
    num_stages: int,
    groups_per_stage: int,
) -> list[tuple[int, int]]:
    """Balance kernels into contiguous stages by estimated compute time."""
    if num_stages < 1:
        raise PipelineError(f"need >= 1 stage, got {num_stages}")
    if num_stages > len(compiled.kernels):
        raise PipelineError(
            f"{num_stages} stages for {len(compiled.kernels)} kernels"
        )
    chip = executor.accelerator.chip
    costs = [
        max(
            executor._compute_time_ns(
                kernel, cores=chip.cores_per_group, clock_ghz=chip.max_clock_ghz,
                num_groups=groups_per_stage,
            ),
            1.0,
        )
        for kernel in compiled.kernels
    ]
    target = sum(costs) / num_stages
    ranges: list[tuple[int, int]] = []
    start = 0
    accumulated = 0.0
    for index, cost in enumerate(costs):
        accumulated += cost
        remaining_kernels = len(costs) - index - 1
        remaining_stages = num_stages - len(ranges) - 1
        if (
            accumulated >= target and remaining_stages > 0
            and remaining_kernels >= remaining_stages
        ):
            ranges.append((start, index + 1))
            start = index + 1
            accumulated = 0.0
        if len(ranges) == num_stages - 1:
            break
    ranges.append((start, len(costs)))
    while len(ranges) < num_stages:  # degenerate: pad with empty-free split
        last_start, last_stop = ranges.pop()
        middle = max(last_start + 1, (last_start + last_stop) // 2)
        ranges.extend([(last_start, middle), (middle, last_stop)])
    return ranges


class PipelineExecutor:
    """Streams a request sequence through a staged pipeline."""

    def __init__(self, accelerator: Accelerator) -> None:
        self.accelerator = accelerator
        self.executor = Executor(accelerator)

    def run(
        self,
        compiled: CompiledModel,
        num_stages: int,
        requests: int,
        tenant: str = "pipeline",
    ) -> PipelineResult:
        if requests < 1:
            raise PipelineError(f"need >= 1 request, got {requests}")
        accelerator = self.accelerator
        chip = accelerator.chip
        total_groups = chip.total_groups
        if num_stages > total_groups:
            raise PipelineError(
                f"{num_stages} stages exceed {total_groups} processing groups"
            )
        groups_per_stage = total_groups // num_stages

        assignments = [
            accelerator.resources.assign(f"{tenant}.stage{stage}", groups_per_stage)
            for stage in range(num_stages)
        ]
        try:
            return self._run_stages(
                compiled, assignments, num_stages, groups_per_stage, requests
            )
        finally:
            for stage in range(num_stages):
                accelerator.resources.release(f"{tenant}.stage{stage}")

    def _run_stages(
        self, compiled, assignments, num_stages, groups_per_stage, requests
    ) -> PipelineResult:
        sim = self.accelerator.sim
        ranges = partition_stages(
            compiled, self.executor, num_stages, groups_per_stage
        )
        stage_groups = [
            [self.accelerator.group(gid) for gid in assignment.groups]
            for assignment in assignments
        ]
        # 1-to-1 handoff semaphores between consecutive stages (§IV-D).
        handoffs = [
            Semaphore(sim, name=f"stage{stage}->{stage + 1}")
            for stage in range(num_stages - 1)
        ]
        first_done = {"at": None}
        start_time = sim.now
        sync_latency = self.accelerator.chip.sync_latency_ns

        def stage_process(stage: int):
            lo, hi = ranges[stage]
            groups = stage_groups[stage]
            timings: dict = {}
            for request in range(requests):
                if stage > 0:
                    yield handoffs[stage - 1].wait()
                for index in range(lo, hi):
                    kernel = compiled.kernels[index]
                    next_kernel = (
                        compiled.kernels[index + 1]
                        if index + 1 < hi
                        else None
                    )
                    barrier = Barrier(
                        sim, parties=len(groups),
                        name=f"s{stage}r{request}k{index}",
                    )
                    processes = [
                        sim.spawn(
                            self.executor._run_kernel_on_group(
                                kernel, next_kernel, group, len(groups),
                                barrier, weight_leader=(position == 0),
                                timings=timings,
                            )
                        )
                        for position, group in enumerate(groups)
                    ]
                    yield AllOf([process.done_event for process in processes])
                if stage < num_stages - 1:
                    yield Timeout(sync_latency)
                    handoffs[stage].signal()
                elif first_done["at"] is None:
                    first_done["at"] = sim.now

        processes = [
            sim.spawn(stage_process(stage), name=f"pipeline.stage{stage}")
            for stage in range(num_stages)
        ]
        self.executor._finished = False
        self.executor._main_end = start_time

        def supervisor():
            yield AllOf([process.done_event for process in processes])
            self.executor._finished = True
            self.executor._main_end = sim.now

        sim.spawn(supervisor(), name="pipeline.supervisor")
        sim.spawn(self.executor._power_manager(), name="pipeline.power")
        sim.run()

        makespan = self.executor._main_end - start_time
        plans = tuple(
            StagePlan(
                stage=stage,
                kernel_range=ranges[stage],
                groups=assignments[stage].groups,
                estimated_ns=0.0,
            )
            for stage in range(num_stages)
        )
        return PipelineResult(
            requests=requests,
            makespan_ns=makespan,
            first_latency_ns=(first_done["at"] or makespan) - start_time,
            stages=plans,
        )
