"""Profiler: per-operator breakdowns of an execution (the trtexec analogue).

The paper's §VI-D discussion leans on "profiling statistics" such as the
share of high-computational-density operators per model; :class:`Profile`
computes those summaries from an :class:`~repro.runtime.executor.ExecutionResult`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.compiler.lowering import CompiledModel
from repro.runtime.executor import ExecutionResult

#: categories the paper counts as "high computational density"
DENSE_CATEGORIES = frozenset({"conv", "gemm"})


@dataclass(frozen=True)
class CategoryStat:
    """Aggregated contribution of one operator category."""

    category: str
    kernels: int
    time_ns: float
    flops: float
    time_share: float
    flops_share: float


@dataclass
class Profile:
    """Post-run analysis of one execution."""

    compiled: CompiledModel
    result: ExecutionResult

    def by_category(self) -> list[CategoryStat]:
        time_by_category: dict[str, float] = defaultdict(float)
        count_by_category: dict[str, int] = defaultdict(int)
        flops_by_category: dict[str, float] = defaultdict(float)
        for timing in self.result.kernel_timings:
            time_by_category[timing.category] += timing.duration_ns
            count_by_category[timing.category] += 1
        for kernel in self.compiled.kernels:
            flops_by_category[kernel.category] += kernel.cost.flops
        total_time = sum(time_by_category.values()) or 1.0
        total_flops = sum(flops_by_category.values()) or 1.0
        return sorted(
            (
                CategoryStat(
                    category=category,
                    kernels=count_by_category.get(category, 0),
                    time_ns=time_by_category.get(category, 0.0),
                    flops=flops_by_category.get(category, 0.0),
                    time_share=time_by_category.get(category, 0.0) / total_time,
                    flops_share=flops_by_category.get(category, 0.0) / total_flops,
                )
                for category in set(time_by_category) | set(flops_by_category)
            ),
            key=lambda stat: stat.time_ns,
            reverse=True,
        )

    def dense_flops_share(self) -> float:
        """FLOP share of conv/GEMM ops — §VI-D's "computational density"."""
        total = sum(kernel.cost.flops for kernel in self.compiled.kernels)
        if total == 0:
            return 0.0
        dense = sum(
            kernel.cost.flops
            for kernel in self.compiled.kernels
            if kernel.category in DENSE_CATEGORIES
        )
        return dense / total

    def slowest_kernels(self, count: int = 10) -> list[tuple[str, float]]:
        ordered = sorted(
            self.result.kernel_timings,
            key=lambda timing: timing.duration_ns,
            reverse=True,
        )
        return [(timing.name, timing.duration_ns) for timing in ordered[:count]]

    def summary(self) -> str:
        """Human-readable report, one line per category."""
        lines = [
            f"model {self.compiled.name}: {self.result.latency_ms:.3f} ms, "
            f"{self.result.mean_power_watts:.1f} W mean, "
            f"{self.result.energy_joules * 1e3:.2f} mJ"
        ]
        for stat in self.by_category():
            lines.append(
                f"  {stat.category:<12} {stat.kernels:>4} kernels  "
                f"{stat.time_ns / 1e3:>10.1f} us  "
                f"time {stat.time_share:>6.1%}  flops {stat.flops_share:>6.1%}"
            )
        return "\n".join(lines)
