"""TopsRuntime: device management, memory allocation, task launch (§V-B).

"TopsRuntime is a library for DTU runtime management. It triggers resource
allocation and task execution, which is critical for efficient deployment of
heterogeneous systems."

:class:`Device` is the user-facing handle mirroring the CUDA-style flow the
paper describes for TopsEngine ("the developer needs to allocate device
memory and launch the kernel to interact with accelerator from the host
CPU"): allocate L3 buffers, upload graphs through the compiler, launch, and
read back profiling results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro.caching import COMPILE_CACHE, CompileCache
from repro.compiler.lowering import CompiledModel
from repro.compiler.pipeline import compile_graph
from repro.core.accelerator import Accelerator
from repro.core.datatypes import DType
from repro.core.errors import ReproRuntimeError
from repro.core.resource import recommend_groups
from repro.faults.errors import DeadlineExceededError, TransientFault
from repro.graph.ir import Graph
from repro.graph.shape_inference import bind_shapes, dynamic_symbols
from repro.runtime.executor import ExecutionResult, Executor

#: Deprecated alias — the class is now :class:`repro.core.errors.ReproRuntimeError`,
#: giving fault-path exceptions (repro.faults.errors) a sane hierarchy to extend.
RuntimeError_ = ReproRuntimeError


#: Process-wide monotonic counter behind Device.open's auto-assigned ids.
_OPEN_COUNTER = count()


@dataclass
class Device:
    """One accelerator card as the host runtime sees it."""

    accelerator: Accelerator
    device_id: str = ""
    """Unique identity of this card instance. Auto-assigned by
    :meth:`open` (``"i20-0"``, ``"i20-1"``, ...) so a fleet of devices
    opened in one process never aliases: launch spans/metrics and fault
    records carry the id, keeping per-device telemetry distinguishable."""
    _buffers: dict[str, int] = field(default_factory=dict)

    @classmethod
    def open(
        cls, name: str = "i20", obs=None, device_id: str | None = None
    ) -> "Device":
        """Open a simulated device by product name ('i20' or 'i10').

        Every call builds a *distinct* card instance and assigns it a
        unique ``device_id`` (``"<name>-<n>"`` from a process-wide
        counter, or the caller's explicit id — fleet managers pass stable
        ids like ``"i20-r0"`` so reports stay reproducible run-to-run).

        ``obs`` optionally attaches an :class:`~repro.obs.Observability`
        hub: every launch then reports spans (runtime/sim/fault/power
        layers) and metrics into it. Without one, telemetry costs nothing.
        """
        if name == "i20":
            accelerator = Accelerator.cloudblazer_i20()
        elif name == "i10":
            accelerator = Accelerator.cloudblazer_i10()
        else:
            raise ReproRuntimeError(f"unknown device {name!r}")
        if obs is not None:
            accelerator.attach_observability(obs)
        if device_id is None:
            device_id = f"{name}-{next(_OPEN_COUNTER)}"
        return cls(accelerator, device_id=device_id)

    # -- memory ---------------------------------------------------------------

    def malloc(self, name: str, nbytes: int) -> None:
        """Allocate a named L3 buffer (device global memory)."""
        self.accelerator.l3.allocate(name, nbytes)
        self._buffers[name] = nbytes

    def free(self, name: str) -> None:
        self.accelerator.l3.free(name)
        self._buffers.pop(name, None)

    @property
    def memory_in_use(self) -> int:
        return self.accelerator.l3.used_bytes

    # -- compile & launch -------------------------------------------------------

    def compile(
        self,
        graph: Graph,
        dtype: DType = DType.FP16,
        fusion: bool | None = None,
        cache: CompileCache | bool | None = None,
        verify_fusion: bool = False,
        **shape_bindings: int,
    ) -> CompiledModel:
        """TopsInference + TopsEngine pipeline: validate, optimize, lower.

        Compiled models are content-addressed: the bound graph's
        :meth:`~repro.graph.ir.Graph.structural_hash` plus chip config,
        dtype, fusion flag and guard flag key the process-wide
        :data:`repro.caching.COMPILE_CACHE` (see docs/performance.md), so
        recompiling an identical graph returns the shared, already-lowered
        model. Pass ``cache`` to use a private cache, or ``cache=False``
        to force a fresh lowering.

        The pipeline is hardened (see docs/robustness.md): malformed
        graphs raise :class:`~repro.graph.ir.GraphValidationError` /
        :class:`~repro.compiler.errors.CompileError` naming the offending
        node, and ``verify_fusion=True`` replays every fused group
        against its unfused members on seeded inputs, auto-falling back
        to an unfused compile (with a warning and a
        ``fusion_guard_fallbacks_total`` bump) on numeric mismatch.
        """
        if shape_bindings:
            graph = bind_shapes(graph, **shape_bindings)
        unbound = dynamic_symbols(graph)
        if unbound:
            raise ReproRuntimeError(
                f"graph has unbound dynamic dims {sorted(unbound)}; pass "
                "bindings to compile()"
            )
        if fusion is None:
            fusion = self.accelerator.chip.features.operator_fusion

        def build() -> CompiledModel:
            result = compile_graph(
                graph,
                self.accelerator.chip,
                dtype=dtype,
                fusion=fusion,
                verify_fusion=verify_fusion,
                obs=self.accelerator.obs,
            )
            return result.model

        if cache is False:
            return build()
        if cache is None:
            cache = COMPILE_CACHE
        key = CompileCache.key_for(
            graph, self.accelerator.chip, dtype, fusion, verify_fusion
        )
        hits_before = cache.stats.hits
        compiled = cache.get_or_build(key, build)
        obs = self.accelerator.obs
        if obs is not None:
            outcome = "hit" if cache.stats.hits > hits_before else "miss"
            obs.metrics.counter(
                "compile_cache_lookups_total", "Device.compile cache outcomes"
            ).inc(result=outcome)
        return compiled

    def launch(
        self,
        compiled: CompiledModel,
        num_groups: int | None = None,
        tenant: str = "default",
        deadline_ms: float | None = None,
        max_retries: int = 0,
        retry_backoff_ms: float = 0.05,
        trace_ctx=None,
    ) -> ExecutionResult:
        """Run one inference; groups default to the Fig. 7 recommendation.

        Refuses models whose resident footprint (weights + code + buffered
        activations, see :meth:`CompiledModel.memory_footprint_bytes`)
        exceeds the device's L3 capacity — the constraint the Fig. 12
        memory-capacity row is about.

        RAS semantics (active when a fault campaign is attached to the
        accelerator): a :class:`~repro.faults.TransientFault` — aborted
        DMA, uncorrectable ECC, watchdog core reset — is retried up to
        ``max_retries`` times with exponential backoff starting at
        ``retry_backoff_ms``; the time failed attempts and backoffs
        consumed is folded into the returned latency. When the final
        latency exceeds ``deadline_ms`` the launch raises
        :class:`~repro.faults.DeadlineExceededError`; with retries
        exhausted the last fault propagates.

        Observability: with a hub attached (``Device.open(obs=...)`` or
        ``accelerator.attach_observability``), the launch opens a
        ``launch:<model>`` span — parented under ``trace_ctx`` when the
        caller (e.g. serving admission) supplies one — with one child
        span per attempt, and mirrors launch counters into the registry.
        """
        l3 = self.accelerator.l3
        available = l3.capacity_bytes - l3.used_bytes
        if not compiled.fits(available):
            raise ReproRuntimeError(
                f"{compiled.name} needs "
                f"{compiled.memory_footprint_bytes() / 1e9:.2f} GB but only "
                f"{available / 1e9:.2f} GB of device memory is free"
            )
        if num_groups is None:
            working_set = max(
                (kernel.cost.boundary_bytes for kernel in compiled.kernels),
                default=0,
            )
            num_groups = recommend_groups(working_set, self.accelerator.chip)

        obs = self.accelerator.obs
        sim = self.accelerator.sim
        launch_handle = None
        # Per-device track: distinct cards opened against one tracer keep
        # their launches on separate rows (and the span carries the id).
        # Beyond REPRO_OBS_DEVICE_LABEL_CAP distinct cards, the identity
        # collapses into the "other" bucket (repro.obs.labels) so
        # thousand-device fleets don't explode span/label cardinality.
        device_name = self.device_id
        if device_name and obs is not None:
            from repro.obs.labels import device_label

            device_name = device_label(obs, self.device_id)
        device_track = f"device.{device_name}" if device_name else "device"
        if obs is not None:
            span_attrs = {}
            if device_name:
                span_attrs["device"] = device_name
            launch_handle = obs.tracer.begin(
                f"launch:{compiled.name}", layer="runtime",
                start_ns=sim.now, parent=trace_ctx, track=device_track,
                model=compiled.name, tenant=tenant, groups=num_groups,
                **span_attrs,
            )

        overhead_ns = 0.0
        retries = 0
        while True:
            attempt_handle = None
            if launch_handle is not None:
                attempt_handle = obs.tracer.begin(
                    f"attempt{retries}", layer="runtime", start_ns=sim.now,
                    parent=launch_handle.context, track=device_track,
                )
            executor = Executor(self.accelerator)
            if attempt_handle is not None:
                executor.trace_ctx = attempt_handle.context
            try:
                result = executor.run(compiled, num_groups=num_groups, tenant=tenant)
                if attempt_handle is not None:
                    attempt_handle.end(sim.now, status="ok")
                break
            except TransientFault as fault:
                if attempt_handle is not None:
                    attempt_handle.end(
                        sim.now, status="transient_fault", fault=str(fault)
                    )
                overhead_ns += getattr(fault, "elapsed_ns", 0.0)
                if retries >= max_retries:
                    self._finish_launch(
                        launch_handle, compiled.name, "failed", retries
                    )
                    raise
                overhead_ns += retry_backoff_ms * 1e6 * (2.0 ** retries)
                retries += 1
        if retries or overhead_ns:
            result.latency_ns += overhead_ns
            result.counters["launch_retries"] = retries
            result.counters["retry_overhead_ns"] = overhead_ns
        if deadline_ms is not None and result.latency_ms > deadline_ms:
            self._finish_launch(
                launch_handle, compiled.name, "deadline_exceeded", retries
            )
            raise DeadlineExceededError(
                f"{compiled.name}: {result.latency_ms:.3f} ms exceeds the "
                f"{deadline_ms} ms deadline after {retries} retries"
            )
        self._finish_launch(
            launch_handle, compiled.name, "ok", retries,
            latency_ms=result.latency_ms,
        )
        return result

    def _finish_launch(
        self,
        launch_handle,
        model: str,
        status: str,
        retries: int,
        latency_ms: float | None = None,
    ) -> None:
        """Close the launch span and mirror launch metrics (no-op sans obs)."""
        obs = self.accelerator.obs
        if obs is None:
            return
        if launch_handle is not None and not launch_handle.closed:
            launch_handle.end(
                self.accelerator.sim.now, status=status, retries=retries
            )
        # Label launch counters with the device identity when one is set,
        # so fleet-wide registries can slice outcomes per card. The
        # identity is capped (repro.obs.labels): past the cap, devices
        # share the "other" bucket instead of minting new label values.
        id_label = {}
        if self.device_id:
            from repro.obs.labels import device_label

            id_label = {"device": device_label(obs, self.device_id)}
        obs.metrics.counter(
            "runtime_launches_total", "model launches by outcome"
        ).inc(model=model, status=status, **id_label)
        if retries:
            obs.metrics.counter(
                "runtime_launch_retries_total", "launch-level RAS retries"
            ).inc(retries, model=model, **id_label)
        if latency_ms is not None:
            from repro.obs.metrics import DEFAULT_BUCKETS_MS

            obs.metrics.histogram(
                "runtime_launch_latency_ms",
                "end-to-end launch latency (incl. retry overhead)",
                unit="ms", buckets=DEFAULT_BUCKETS_MS,
            ).observe(latency_ms, model=model)

    def run(
        self,
        graph: Graph,
        dtype: DType = DType.FP16,
        num_groups: int | None = None,
        **shape_bindings: int,
    ) -> ExecutionResult:
        """compile + launch in one call."""
        compiled = self.compile(graph, dtype=dtype, **shape_bindings)
        return self.launch(compiled, num_groups=num_groups)
