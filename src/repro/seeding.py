"""Deterministic seed derivation: one root seed fans out into labeled streams.

Every stochastic component of the stack (fault draws, traffic generation,
per-tenant serving RNGs, fleet routing, chaos scenarios) derives its
randomness from one top-level seed through a *labeled stream*: a
``random.Random`` keyed on ``"<root>:<label>:<label>:..."``. Two runs with
the same root seed therefore reproduce every stream exactly, while streams
with different labels are statistically independent of each other — adding
a new consumer (a new tenant, a new replica) never perturbs existing ones.

Stream label conventions (the ``_rng`` catalogue):

========================  =====================================================
label path                consumer
========================  =====================================================
``<tenant>``              :class:`~repro.serving.server.InferenceServer`
                          per-tenant fault draws (isolated mode)
``shared``                :class:`~repro.serving.server.InferenceServer`
                          shared-queue fault draws
``serve:<replica>``       :class:`~repro.serving.fleet.FleetManager` request
                          outcome draws on one replica
``injector:<replica>``    per-replica :class:`~repro.faults.FaultInjector`
                          seed for bring-up validation launches
``probe:<replica>:<n>``   repair-probe injector seed (attempt ``n``; the
                          first screen vector keeps this legacy label)
``probe:<r>:<n>:<v>``     repair-probe injector seed for screen vector
                          ``v`` >= 1 (multi-vector screens)
``probe-screen:<r>:<n>``  repair-probe corruption-screen draws (attempt
                          ``n``, :class:`~repro.serving.fleet.FleetManager`)
``sdc:<replica>``         :class:`~repro.serving.sdc.SdcTracker` silent-
                          corruption + probe-coverage draws per replica
``screen:<replica>``      :class:`~repro.serving.sdc.SdcTracker` golden-
                          vector screen draws per replica
``audit``                 :class:`~repro.serving.sdc.SdcTracker` audit
                          sampling + secondary-execution draws
``scenario:<name>``       :mod:`repro.chaos` per-scenario fleet seed
``trace:<name>``          :mod:`repro.chaos` per-scenario traffic seed
``load:<name>``           :mod:`repro.chaos` per-scenario open-loop loadgen
                          seed (overload scenarios)
``loadgen:<i>:<t>:<c>``   :mod:`repro.serving.loadgen` per-spec arrival +
                          session stream (spec index, tenant, SLO class)
========================  =====================================================

docs/robustness.md documents how the chaos harness pins this: two chaos
runs from the same root seed must produce byte-identical reports.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_rng", "derive_seed", "stream_name"]


def stream_name(root: int | str, *labels: object) -> str:
    """The canonical stream key: ``"<root>:<label>:<label>..."``."""
    return ":".join([str(root), *(str(label) for label in labels)])


def derive_seed(root: int | str, *labels: object) -> int:
    """A stable 64-bit integer seed for the labeled stream.

    Hash-based (SHA-256 over the stream name) so it is stable across
    processes and Python versions regardless of ``PYTHONHASHSEED`` —
    suitable for seeding components that want an ``int`` seed (e.g.
    :class:`~repro.faults.FaultInjector`).
    """
    digest = hashlib.sha256(stream_name(root, *labels).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(root: int | str, *labels: object) -> random.Random:
    """A fresh ``random.Random`` for the labeled stream.

    Seeded directly with the stream *name* (``random.Random`` hashes
    strings with SHA-512 internally, independent of ``PYTHONHASHSEED``),
    which keeps existing single-label consumers bit-identical to the
    historical ``random.Random(f"{seed}:{label}")`` idiom.
    """
    return random.Random(stream_name(root, *labels))
