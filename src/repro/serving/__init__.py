"""Cloud inference serving: traces, queueing, SLAs, tenant isolation."""

from repro.serving.server import (
    CompletedRequest,
    InferenceServer,
    TenantConfig,
    TenantReport,
    batch_service_time_ns,
    measure_service_time_ns,
)
from repro.serving.workload import Request, TrafficPattern, generate_trace

__all__ = [
    "CompletedRequest", "InferenceServer", "Request", "TenantConfig",
    "TenantReport", "TrafficPattern", "batch_service_time_ns",
    "generate_trace", "measure_service_time_ns",
]
