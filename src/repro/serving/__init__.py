"""Cloud inference serving: traces, queueing, SLAs, tenant isolation, RAS,
and fleet-level resilience (multi-device failover + quarantine/repair)."""

from repro.serving.fleet import (
    DeviceReport,
    FleetConfig,
    FleetManager,
    FleetReport,
    FleetTenantStats,
    LifecycleEvent,
    ReplicaStatus,
)
from repro.serving.server import (
    CompletedRequest,
    InferenceServer,
    NoHealthyGroupsError,
    RasConfig,
    TenantConfig,
    TenantHealth,
    TenantReport,
    batch_service_time_ns,
    measure_service_time_ns,
)
from repro.serving.workload import Request, TrafficPattern, generate_trace

__all__ = [
    "CompletedRequest", "DeviceReport", "FleetConfig", "FleetManager",
    "FleetReport", "FleetTenantStats", "InferenceServer", "LifecycleEvent",
    "NoHealthyGroupsError", "RasConfig", "ReplicaStatus", "Request",
    "TenantConfig", "TenantHealth", "TenantReport", "TrafficPattern",
    "batch_service_time_ns", "generate_trace", "measure_service_time_ns",
]
