"""Cloud inference serving: traces, queueing, SLAs, tenant isolation, RAS,
fleet-level resilience (multi-device failover + quarantine/repair) and
overload robustness (open-loop load generation, SLO-class admission,
continuous batching, autoscaling)."""

from repro.serving.admission import (
    DEFAULT_SLO_CLASSES,
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    SloClass,
)
from repro.serving.autoscale import Autoscaler, AutoscalerConfig, ScaleAction
from repro.serving.fleet import (
    DeviceReport,
    FleetConfig,
    FleetManager,
    FleetReport,
    FleetTenantStats,
    LifecycleEvent,
    ReplicaStatus,
)
from repro.serving.loadgen import (
    LoadSpec,
    LoadSummary,
    demo_specs,
    generate_load,
    merge_traces,
    summarize_trace,
)
from repro.serving.powercap import (
    FleetPowerGovernor,
    PowerCapConfig,
    PowerCapPhase,
)
from repro.serving.server import (
    CompletedRequest,
    InferenceServer,
    NoHealthyGroupsError,
    RasConfig,
    SloClassStats,
    TenantConfig,
    TenantHealth,
    TenantReport,
    batch_service_time_ns,
    measure_service_time_ns,
)
from repro.serving.workload import Request, TrafficPattern, generate_trace

__all__ = [
    "AdmissionController", "AdmissionDecision", "AdmissionPolicy",
    "Autoscaler", "AutoscalerConfig", "CompletedRequest",
    "DEFAULT_SLO_CLASSES", "DeviceReport", "FleetConfig", "FleetManager",
    "FleetPowerGovernor", "FleetReport", "FleetTenantStats",
    "InferenceServer", "LifecycleEvent",
    "LoadSpec", "LoadSummary", "NoHealthyGroupsError",
    "PowerCapConfig", "PowerCapPhase", "RasConfig",
    "ReplicaStatus", "Request", "ScaleAction", "SloClass", "SloClassStats",
    "TenantConfig", "TenantHealth", "TenantReport", "TrafficPattern",
    "batch_service_time_ns", "demo_specs", "generate_load", "generate_trace",
    "measure_service_time_ns", "merge_traces", "summarize_trace",
]
