"""Cloud inference serving: traces, queueing, SLAs, tenant isolation, RAS."""

from repro.serving.server import (
    CompletedRequest,
    InferenceServer,
    NoHealthyGroupsError,
    RasConfig,
    TenantConfig,
    TenantHealth,
    TenantReport,
    batch_service_time_ns,
    measure_service_time_ns,
)
from repro.serving.workload import Request, TrafficPattern, generate_trace

__all__ = [
    "CompletedRequest", "InferenceServer", "NoHealthyGroupsError", "RasConfig",
    "Request", "TenantConfig", "TenantHealth", "TenantReport",
    "batch_service_time_ns", "generate_trace", "measure_service_time_ns",
    "TrafficPattern",
]
