"""SLO-class admission: bounded queues, early shedding, brownout.

The paper sells the i20 as a *cloud inference* part; the defining cloud
constraint is that offered load is open-loop — when it exceeds capacity,
something must give, and the operator chooses *what* gives. This module
encodes that choice as policy shared by
:class:`~repro.serving.server.InferenceServer` and
:class:`~repro.serving.fleet.FleetManager`:

- **SLO classes** — every request carries a class
  (``interactive`` / ``standard`` / ``batch`` by default) with its own
  deadline, bounded queue and brownout priority;
- **bounded per-class queues** — an arrival to a class already holding
  ``queue_limit`` queued-or-in-flight requests is shed immediately
  (reason ``queue-full``) instead of growing an unbounded backlog;
- **deadline-aware early shedding** — an arrival whose *predicted*
  completion (current queue wait + one service time) already exceeds the
  class deadline is rejected now rather than served uselessly late
  (reason ``deadline``): under overload, serving a certainly-late request
  only steals capacity from one that could still make its deadline;
- **brownout** — a backpressure signal in [0, 1] (worst per-class queue
  fullness) drives a stepped degradation level with hysteresis
  (``brownout_enter`` / ``brownout_exit``): level 1 sheds the highest
  shed-priority class (``batch``), level 2 additionally sheds the next
  (``standard``), and so on — classes with shed priority 0
  (``interactive``) are *never* brownout-shed (reason ``brownout``);
- **backpressure** — the same signal is exported as a gauge and consumed
  by the :mod:`~repro.serving.autoscale` loop, so shedding and scaling
  react to one number.

Everything here is pure deterministic state machinery — no RNG, no
clocks — so admission decisions replay bit-identically inside seeded
chaos storms. docs/serving.md draws the admit/shed state machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ReproRuntimeError

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "DEFAULT_SLO_CLASSES",
    "SloClass",
]


@dataclass(frozen=True)
class SloClass:
    """One service class: deadline + queue bound + brownout priority."""

    name: str
    deadline_ms: float | None
    """Completion target; ``None`` means best-effort (never deadline-shed)."""
    queue_limit: int
    """Bounded queue: arrivals beyond this depth are shed (queue-full)."""
    shed_priority: int
    """Brownout order: higher sheds earlier; 0 is never brownout-shed."""

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ReproRuntimeError(
                f"SloClass {self.name!r}: queue_limit must be >= 1, "
                f"got {self.queue_limit}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ReproRuntimeError(
                f"SloClass {self.name!r}: deadline_ms must be > 0 or None, "
                f"got {self.deadline_ms}"
            )
        if self.shed_priority < 0:
            raise ReproRuntimeError(
                f"SloClass {self.name!r}: shed_priority must be >= 0, "
                f"got {self.shed_priority}"
            )


#: The canonical three-class policy: latency-critical interactive traffic,
#: latency-tolerant standard traffic, and throughput-oriented batch work
#: that brownout sheds first.
DEFAULT_SLO_CLASSES = (
    SloClass("interactive", deadline_ms=50.0, queue_limit=64, shed_priority=0),
    SloClass("standard", deadline_ms=250.0, queue_limit=128, shed_priority=1),
    SloClass("batch", deadline_ms=None, queue_limit=256, shed_priority=2),
)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str = ""
    """Empty when admitted; ``queue-full`` / ``deadline`` / ``brownout``
    when shed (plus ``no-capacity``, stamped by the fleet when zero
    replicas are active)."""


@dataclass(frozen=True)
class AdmissionPolicy:
    """The static half of admission: classes + brownout thresholds."""

    classes: tuple[SloClass, ...] = DEFAULT_SLO_CLASSES
    brownout_enter: float = 0.85
    """Backpressure at/above which the brownout level steps up."""
    brownout_exit: float = 0.5
    """Backpressure at/below which the brownout level steps down."""
    default_class: str = "standard"
    """Class assumed for requests whose ``slo_class`` is unknown — keeps
    legacy traces (all ``standard``) flowing through unchanged."""

    def __post_init__(self) -> None:
        if not self.classes:
            raise ReproRuntimeError("AdmissionPolicy: needs >= 1 SLO class")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ReproRuntimeError(
                f"AdmissionPolicy: duplicate class names {names}"
            )
        if not 0.0 <= self.brownout_exit < self.brownout_enter <= 1.0:
            raise ReproRuntimeError(
                f"AdmissionPolicy: need 0 <= brownout_exit < brownout_enter "
                f"<= 1, got exit={self.brownout_exit} "
                f"enter={self.brownout_enter}"
            )
        if self.default_class not in names:
            raise ReproRuntimeError(
                f"AdmissionPolicy: default_class {self.default_class!r} "
                f"not among classes {names}"
            )

    def class_for(self, name: str) -> SloClass:
        """Resolve a request's class, falling back to the default."""
        for cls in self.classes:
            if cls.name == name:
                return cls
        return self.class_for(self.default_class)

    @property
    def class_names(self) -> tuple[str, ...]:
        return tuple(cls.name for cls in self.classes)

    @property
    def max_brownout_level(self) -> int:
        """Deepest level: one step per class with shed priority > 0."""
        return sum(1 for cls in self.classes if cls.shed_priority > 0)


class AdmissionController:
    """Runtime admission state: brownout level + peak-signal accounting.

    One controller serves one run; :meth:`reset` restores the pristine
    state so repeated runs of the same trace replay bit-identically.
    """

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy
        self.brownout_level = 0
        self.peak_backpressure = 0.0
        self.max_level_seen = 0
        self.level_changes = 0
        # Classes sorted by descending shed priority: level L sheds the
        # first L entries of this list (priority-0 classes excluded).
        self._shed_order = tuple(
            cls.name
            for cls in sorted(
                policy.classes,
                key=lambda cls: (-cls.shed_priority, cls.name),
            )
            if cls.shed_priority > 0
        )

    def reset(self) -> None:
        self.brownout_level = 0
        self.peak_backpressure = 0.0
        self.max_level_seen = 0
        self.level_changes = 0

    # -- signals -----------------------------------------------------------

    def backpressure(self, depths: dict[str, int]) -> float:
        """Worst per-class queue fullness in [0, 1]: max(depth/limit)."""
        worst = 0.0
        for cls in self.policy.classes:
            depth = depths.get(cls.name, 0)
            worst = max(worst, min(1.0, depth / cls.queue_limit))
        return worst

    def update(self, backpressure: float) -> int:
        """Step the brownout level by at most 1 with hysteresis.

        Levels rise at ``brownout_enter`` and fall at ``brownout_exit``;
        the dead band between the two stops the level oscillating when
        the signal hovers near one threshold.
        """
        self.peak_backpressure = max(self.peak_backpressure, backpressure)
        if (
            backpressure >= self.policy.brownout_enter
            and self.brownout_level < self.policy.max_brownout_level
        ):
            self.brownout_level += 1
            self.level_changes += 1
        elif backpressure <= self.policy.brownout_exit and self.brownout_level > 0:
            self.brownout_level -= 1
            self.level_changes += 1
        self.max_level_seen = max(self.max_level_seen, self.brownout_level)
        return self.brownout_level

    def sheds(self, slo_class: str) -> bool:
        """Is this class brownout-shed at the current level?"""
        cls = self.policy.class_for(slo_class)
        return cls.name in self._shed_order[: self.brownout_level]

    # -- the decision ------------------------------------------------------

    def decide(
        self,
        slo_class: str,
        depth: int,
        predicted_wait_ns: float,
        service_ns: float,
    ) -> AdmissionDecision:
        """Admit or shed one arrival of ``slo_class``.

        ``depth`` is the class's queued-or-in-flight count at the arrival,
        ``predicted_wait_ns`` the estimated time until service could start
        and ``service_ns`` one service time — the deadline check rejects
        requests that would *certainly* finish past their class deadline
        even if everything goes well from here.
        """
        cls = self.policy.class_for(slo_class)
        if self.sheds(cls.name):
            return AdmissionDecision(False, "brownout")
        if depth >= cls.queue_limit:
            return AdmissionDecision(False, "queue-full")
        if (
            cls.deadline_ms is not None
            and predicted_wait_ns + service_ns > cls.deadline_ms * 1e6
        ):
            return AdmissionDecision(False, "deadline")
        return AdmissionDecision(True)
