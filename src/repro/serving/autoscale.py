"""Autoscaler: grow/retire fleet replicas against p99 + queue signals.

The fleet (PR 4) already owns the hardware lifecycle — hot spares promote
when an active replica quarantines. This module adds the *demand* side:
a control loop that watches per-SLO-class p99 latency (interpolated from
:class:`~repro.obs.metrics.HistogramSeries` buckets via ``quantile`` —
the same estimator the reports use) and the admission layer's
backpressure signal, and decides when the fleet should promote a standby
replica into the routing pool (scale up) or drain an active one back to
standby (scale down).

Stability is a first-class requirement — the chaos harness checks an
``autoscaler-convergence`` invariant ("no flapping"):

- at most one scaling action per evaluation window;
- a **cooldown** after every action during which no further action fires;
- scale-down additionally requires ``scale_down_consecutive`` quiet
  windows in a row, so one lull inside a flash crowd never sheds
  capacity the next spike needs.

The loop is pure deterministic arithmetic over observed latencies — no
RNG, no wall clock — so autoscaled chaos scenarios replay byte-for-byte
from one root seed. docs/serving.md documents the policy; the fleet
exports ``autoscaler_replicas`` / ``autoscaler_scale_events_total``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ReproRuntimeError
from repro.obs.metrics import DEFAULT_BUCKETS_MS, HistogramSeries

__all__ = ["Autoscaler", "AutoscalerConfig", "ScaleAction"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Policy knobs for one :class:`Autoscaler` control loop."""

    min_active: int = 1
    """Never drain below this many active replicas."""
    max_active: int = 8
    """Never grow beyond this many active replicas (also capped by the
    number of devices the fleet actually opened)."""
    eval_interval_ms: float = 25.0
    """Control-loop period on the trace timeline."""
    p99_targets_ms: tuple[tuple[str, float], ...] = (
        ("interactive", 40.0),
        ("standard", 150.0),
    )
    """Per-class p99 ceilings; any class over its target votes scale-up."""
    backpressure_high: float = 0.75
    """Queue-depth signal at/above which the loop votes scale-up."""
    backpressure_low: float = 0.25
    """Queue-depth signal the loop requires for a scale-down vote."""
    scale_down_fraction: float = 0.5
    """Scale-down needs every targeted class p99 under fraction*target."""
    cooldown_ms: float = 75.0
    """Dead time after any action before the next may fire."""
    scale_down_consecutive: int = 3
    """Quiet windows in a row required before draining a replica."""
    buckets_ms: tuple[float, ...] = DEFAULT_BUCKETS_MS
    """Histogram buckets the per-window p99 is interpolated from."""

    def __post_init__(self) -> None:
        def reject(message: str) -> None:
            raise ReproRuntimeError(f"AutoscalerConfig: {message}")

        if self.min_active < 1:
            reject(f"min_active must be >= 1, got {self.min_active}")
        if self.max_active < self.min_active:
            reject(
                f"max_active {self.max_active} < min_active {self.min_active}"
            )
        if self.eval_interval_ms <= 0:
            reject(f"eval_interval_ms must be > 0, got {self.eval_interval_ms}")
        if self.cooldown_ms < 0:
            reject(f"cooldown_ms must be >= 0, got {self.cooldown_ms}")
        if not 0.0 <= self.backpressure_low < self.backpressure_high <= 1.0:
            reject(
                f"need 0 <= backpressure_low < backpressure_high <= 1, got "
                f"low={self.backpressure_low} high={self.backpressure_high}"
            )
        if not 0.0 < self.scale_down_fraction < 1.0:
            reject(
                f"scale_down_fraction must be in (0, 1), "
                f"got {self.scale_down_fraction}"
            )
        if self.scale_down_consecutive < 1:
            reject(
                f"scale_down_consecutive must be >= 1, "
                f"got {self.scale_down_consecutive}"
            )
        for name, target in self.p99_targets_ms:
            if target <= 0:
                reject(f"p99 target for {name!r} must be > 0, got {target}")

    @property
    def targets(self) -> dict[str, float]:
        return dict(self.p99_targets_ms)


@dataclass(frozen=True)
class ScaleAction:
    """One decision the loop took (recorded for the convergence check)."""

    time_ns: float
    direction: str
    """``up`` or ``down``."""
    reason: str
    active_before: int


@dataclass
class _Window:
    """Latency observations accumulated since the last evaluation."""

    series: dict[str, HistogramSeries] = field(default_factory=dict)

    def observe(self, slo_class: str, latency_ms: float, buckets) -> None:
        series = self.series.get(slo_class)
        if series is None:
            series = self.series[slo_class] = HistogramSeries(buckets)
        series.observe(latency_ms)

    def p99(self, slo_class: str) -> float | None:
        series = self.series.get(slo_class)
        if series is None or series.count == 0:
            return None
        return series.quantile(0.99)


class Autoscaler:
    """The runtime control loop; the fleet drives :meth:`evaluate`.

    The caller owns the actuation (promote/drain a replica through its
    lifecycle machinery); the loop only answers "+1, -1 or hold" and
    keeps the action history the convergence invariant audits.
    """

    def __init__(self, config: AutoscalerConfig | None = None) -> None:
        self.config = config or AutoscalerConfig()
        self.actions: list[ScaleAction] = []
        self._window = _Window()
        self._last_action_ns: float | None = None
        self._quiet_streak = 0
        self.power_blocked_ups = 0

    def reset(self) -> None:
        """Pristine state so repeated runs replay bit-identically."""
        self.actions = []
        self._window = _Window()
        self._last_action_ns = None
        self._quiet_streak = 0
        self.power_blocked_ups = 0

    # -- signal intake -----------------------------------------------------

    def observe(self, slo_class: str, latency_ms: float) -> None:
        """Record one served request's latency into the current window."""
        self._window.observe(slo_class, latency_ms, self.config.buckets_ms)

    # -- the control decision ----------------------------------------------

    def evaluate(
        self,
        now_ns: float,
        active: int,
        backpressure: float,
        can_up: bool = True,
        can_down: bool = True,
        power_feasible: bool = True,
    ) -> int:
        """One control tick: returns the desired replica delta (+1/-1/0).

        Scale-up fires when any targeted class's window p99 exceeds its
        target or the backpressure signal is high; scale-down needs every
        targeted class comfortably under target *and* low backpressure
        for ``scale_down_consecutive`` consecutive windows. A cooldown
        after each action stops the loop flapping.

        ``can_up`` / ``can_down`` are the caller's feasibility flags (a
        standby must exist to promote; an active replica must be
        drainable) — an infeasible action is never recorded, keeping the
        convergence audit honest about what the loop *did*.
        ``power_feasible`` is the fleet power governor's budget check: a
        promotion the rack budget cannot power is suppressed (and tallied
        in ``power_blocked_ups``) rather than throttled back down a
        window later — scaling into a power cap is a guaranteed flap.
        """
        cfg = self.config
        window, self._window = self._window, _Window()
        in_cooldown = (
            self._last_action_ns is not None
            and now_ns - self._last_action_ns < cfg.cooldown_ms * 1e6
        )
        overloaded_classes = []
        quiet = backpressure <= cfg.backpressure_low
        for name, target in cfg.p99_targets_ms:
            p99 = window.p99(name)
            if p99 is None:
                continue
            if p99 > target:
                overloaded_classes.append((name, p99, target))
            if p99 > cfg.scale_down_fraction * target:
                quiet = False
        overloaded = bool(overloaded_classes) or (
            backpressure >= cfg.backpressure_high
        )
        if overloaded:
            self._quiet_streak = 0
            if in_cooldown or active >= cfg.max_active or not can_up:
                return 0
            if not power_feasible:
                self.power_blocked_ups += 1
                return 0
            if overloaded_classes:
                name, p99, target = overloaded_classes[0]
                reason = f"p99[{name}] {p99:.1f}ms > target {target:.1f}ms"
            else:
                reason = f"backpressure {backpressure:.2f} >= " \
                         f"{cfg.backpressure_high:.2f}"
            self._record(now_ns, "up", reason, active)
            return 1
        if quiet:
            self._quiet_streak += 1
            if (
                not in_cooldown
                and can_down
                and active > cfg.min_active
                and self._quiet_streak >= cfg.scale_down_consecutive
            ):
                self._quiet_streak = 0
                self._record(
                    now_ns, "down",
                    f"{cfg.scale_down_consecutive} quiet windows, "
                    f"backpressure {backpressure:.2f}",
                    active,
                )
                return -1
        else:
            self._quiet_streak = 0
        return 0

    def _record(
        self, now_ns: float, direction: str, reason: str, active: int
    ) -> None:
        self._last_action_ns = now_ns
        self.actions.append(
            ScaleAction(
                time_ns=now_ns, direction=direction, reason=reason,
                active_before=active,
            )
        )

    # -- audit views -------------------------------------------------------

    @property
    def scale_ups(self) -> int:
        return sum(1 for action in self.actions if action.direction == "up")

    @property
    def scale_downs(self) -> int:
        return sum(1 for action in self.actions if action.direction == "down")

    def reversals(self) -> int:
        """Direction changes across the action history (flap measure)."""
        flips = 0
        for previous, current in zip(self.actions, self.actions[1:]):
            if previous.direction != current.direction:
                flips += 1
        return flips
