"""Fleet-level resilience: multi-device failover, quarantine and repair.

One :class:`~repro.serving.server.InferenceServer` survives *request*
faults inside a single card (retries, admission control, per-group circuit
breaking). At cloud scale the unit of failure is the whole device — the
paper positions the i20 as a datacenter inference part, and fleet behavior
(Jouppi et al.'s observation for TPU pods) dominates serving reliability.
This module adds that layer:

- :class:`FleetManager` owns N+M simulated :class:`~repro.runtime.Device`
  replicas (N active, M hot spares), opened through ``Device.open`` with
  stable per-replica ids and compiled through the shared
  :data:`~repro.caching.COMPILE_CACHE` — a fleet compiles each tenant
  model **once**;
- tenant traffic routes to the least-loaded healthy replica; a fatal
  outcome triggers a **hedged re-dispatch** on another healthy replica, so
  a dying board costs latency, not requests;
- per-device health is scored from fault outcomes:
  ``quarantine_threshold`` consecutive fatals drive the
  **quarantine → repair → reintegrate** lifecycle — the replica drains, a
  hot spare is promoted in its place, and after ``repair_ms`` a *real
  probe launch* on the simulated device (with the fault schedule's
  plan at probe time attached) must come back clean before the board
  rejoins the pool (as active, or as a standby spare when the fleet is
  already at strength); repeated probe failures retire the board;
- every stochastic choice derives from one fleet seed via labeled streams
  (:mod:`repro.seeding`), so a whole fleet run — reports included — is
  byte-for-byte reproducible.

Time-varying fault pressure comes from a
:class:`~repro.faults.schedule.FaultSchedule` (storm windows, ramps,
device kills); :mod:`repro.chaos` composes those into checked scenarios.
See docs/robustness.md for the lifecycle state machine and the invariant
catalogue the chaos harness enforces on top of this layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ReproRuntimeError
from repro.faults.errors import HardwareFault
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.models.zoo import build
from repro.runtime.runtime import Device
from repro.seeding import derive_rng, derive_seed
from repro.serving.routing import (
    DepthView,
    PowerAwareRouter,
    PrunedFinishes,
    ReplicaStatus,
    make_router,
    resolve_routing,
)
from repro.serving.server import (
    RasConfig,
    SloClassStats,
    TenantConfig,
    batch_service_time_ns,
    measure_service_time_ns,
)
from repro.serving.workload import Request

__all__ = [
    "DeviceReport",
    "FleetConfig",
    "FleetManager",
    "FleetReport",
    "FleetTenantStats",
    "LifecycleEvent",
    "ReplicaStatus",
]


@dataclass(frozen=True)
class FleetConfig:
    """Sizing + lifecycle policy for one :class:`FleetManager`."""

    replicas: int = 2
    """Target number of active (traffic-taking) replicas."""
    hot_spares: int = 0
    """Standby devices promoted when an active replica quarantines."""
    device: str = "i20"
    """Product name every replica is opened as (``Device.open``)."""
    seed: int = 0
    """Root seed: every RNG stream of the fleet derives from it."""
    quarantine_threshold: int = 2
    """Consecutive fatal outcomes on one replica that quarantine it."""
    repair_ms: float = 25.0
    """Sim-time dwell between quarantine (or a failed probe) and the
    next repair probe."""
    max_repair_attempts: int = 4
    """Failed probes before a quarantined replica is retired."""
    max_hedges: int = 2
    """Re-dispatches of one request after fatal outcomes before it fails."""
    validate_on_open: bool = True
    """Run one real launch per replica at bring-up to prove the board."""
    screen_vectors: int = 1
    """Real launches per repair probe. The historical single-launch probe
    (``1``, the default — byte-identical) can pass a board that corrupts
    only some operand patterns; multi-vector probes launch ``n`` seeded
    vectors and require all of them clean before reintegration."""

    def __post_init__(self) -> None:
        def reject(message: str) -> None:
            raise ReproRuntimeError(f"FleetConfig: {message}")

        if self.replicas < 1:
            reject(f"replicas must be >= 1, got {self.replicas}")
        if self.hot_spares < 0:
            reject(f"hot_spares must be >= 0, got {self.hot_spares}")
        if self.quarantine_threshold < 1:
            reject(
                f"quarantine_threshold must be >= 1, "
                f"got {self.quarantine_threshold}"
            )
        if self.repair_ms <= 0:
            reject(f"repair_ms must be > 0, got {self.repair_ms}")
        if self.max_repair_attempts < 1:
            reject(
                f"max_repair_attempts must be >= 1, "
                f"got {self.max_repair_attempts}"
            )
        if self.max_hedges < 0:
            reject(f"max_hedges must be >= 0, got {self.max_hedges}")
        if self.screen_vectors < 1:
            reject(f"screen_vectors must be >= 1, got {self.screen_vectors}")


@dataclass(frozen=True)
class LifecycleEvent:
    """One fleet lifecycle transition, on the trace timeline."""

    time_ns: float
    device: str
    kind: str
    """``opened``/``validated``/``quarantined``/``promoted``/
    ``repair_failed``/``repaired``/``reintegrated``/``retired``/
    ``scaled-up``/``scaled-down`` (the last two autoscaler-driven)."""
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "time_ns": self.time_ns, "device": self.device,
            "kind": self.kind, "detail": self.detail,
        }


@dataclass
class FleetTenantStats:
    """Per-tenant request accounting over one fleet run."""

    tenant: str
    offered: int = 0
    served: int = 0
    failed: int = 0
    shed: int = 0
    """Every dropped-before-service request (admission + no capacity)."""
    shed_no_capacity: int = 0
    """Subset of ``shed`` that arrived while zero replicas were active."""
    hedged: int = 0
    """Served-or-failed requests that needed >= 1 re-dispatch."""
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    shed_reasons: dict[str, int] = field(default_factory=dict)
    """Shed counts by admission reason (``queue-full``/``deadline``/
    ``brownout``/``no-capacity``); empty without an admission policy."""
    by_class: dict[str, SloClassStats] = field(default_factory=dict)
    """Per-SLO-class breakdown (populated when admission is attached)."""

    @property
    def availability(self) -> float:
        """Served / offered over the whole run (1.0 on zero offered)."""
        if self.offered == 0:
            return 1.0
        return self.served / self.offered

    @property
    def availability_while_healthy(self) -> float:
        """Served / offered among requests arriving with >= 1 active
        replica — the floor the chaos invariants hold the fleet to."""
        eligible = self.offered - self.shed_no_capacity
        if eligible == 0:
            return 1.0
        return self.served / eligible

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant, "offered": self.offered,
            "served": self.served, "failed": self.failed,
            "shed": self.shed, "shed_no_capacity": self.shed_no_capacity,
            "hedged": self.hedged, "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms, "p99_ms": self.p99_ms,
            "availability": self.availability,
            "availability_while_healthy": self.availability_while_healthy,
            "shed_reasons": dict(sorted(self.shed_reasons.items())),
            "by_class": {
                name: stats.to_dict()
                for name, stats in sorted(self.by_class.items())
            },
        }


@dataclass
class DeviceReport:
    """Health summary of one replica over a fleet run."""

    name: str
    device_id: str
    final_status: str
    served: int
    fatal_outcomes: int
    quarantines: int
    repair_attempts: int
    reintegrations: int
    injected_faults: int
    """Hardware faults the board's injectors recorded (bring-up
    validation + repair probes)."""

    def to_dict(self) -> dict:
        return {
            "name": self.name, "device_id": self.device_id,
            "final_status": self.final_status, "served": self.served,
            "fatal_outcomes": self.fatal_outcomes,
            "quarantines": self.quarantines,
            "repair_attempts": self.repair_attempts,
            "reintegrations": self.reintegrations,
            "injected_faults": self.injected_faults,
        }


@dataclass
class FleetReport:
    """Everything one fleet run produced, JSON-stable for chaos pinning."""

    seed: int
    replicas: int
    hot_spares: int
    tenants: dict[str, FleetTenantStats]
    devices: list[DeviceReport]
    events: list[LifecycleEvent]
    failovers: int
    hedged_requests: int
    quarantines: int
    repairs: int
    repair_failures: int
    reintegrations: int
    promotions: int
    retirements: int
    min_healthy: int
    final_healthy: int
    horizon_ns: float
    autoscale_ups: int = 0
    """Standby promotions the autoscaler drove (not failover promotions)."""
    autoscale_downs: int = 0
    """Active replicas the autoscaler drained back to standby."""
    autoscale_reversals: int = 0
    """Up/down direction flips in the action history (flap measure)."""
    max_brownout_level: int = 0
    """Deepest brownout degradation level the admission layer reached."""
    peak_backpressure: float = 0.0
    """Worst per-class queue-fullness signal seen during the run."""
    power: dict | None = None
    """Fleet power governor section (None when no governor is attached;
    the key is omitted from ``to_dict`` then, so ungoverned reports stay
    byte-identical to builds without the power layer)."""
    sdc: dict | None = None
    """Silent-data-corruption section (None when no SdcConfig is
    attached; omitted from ``to_dict`` then — same conditional-key
    contract as ``power``). See :mod:`repro.serving.sdc`."""

    def to_dict(self) -> dict:
        """Deterministic nested-dict form (same run -> identical JSON)."""
        data = {
            "seed": self.seed,
            "replicas": self.replicas,
            "hot_spares": self.hot_spares,
            "tenants": {
                name: stats.to_dict()
                for name, stats in sorted(self.tenants.items())
            },
            "devices": [report.to_dict() for report in self.devices],
            "events": [event.to_dict() for event in self.events],
            "failovers": self.failovers,
            "hedged_requests": self.hedged_requests,
            "quarantines": self.quarantines,
            "repairs": self.repairs,
            "repair_failures": self.repair_failures,
            "reintegrations": self.reintegrations,
            "promotions": self.promotions,
            "retirements": self.retirements,
            "min_healthy": self.min_healthy,
            "final_healthy": self.final_healthy,
            "horizon_ns": self.horizon_ns,
            "autoscale_ups": self.autoscale_ups,
            "autoscale_downs": self.autoscale_downs,
            "autoscale_reversals": self.autoscale_reversals,
            "max_brownout_level": self.max_brownout_level,
            "peak_backpressure": self.peak_backpressure,
        }
        if self.power is not None:
            data["power"] = self.power
        if self.sdc is not None:
            data["sdc"] = self.sdc
        return data

    def device(self, name: str) -> DeviceReport:
        for report in self.devices:
            if report.name == name:
                return report
        raise KeyError(f"no device {name!r} in fleet report")

    def transitions(self, device: str) -> list[str]:
        """Time-ordered lifecycle kinds one device went through."""
        return [
            event.kind for event in self.events if event.device == device
        ]


@dataclass
class _Replica:
    """Mutable runtime state of one fleet member."""

    index: int
    name: str
    device: Device
    injector: FaultInjector
    status: ReplicaStatus
    initial_status: ReplicaStatus
    compiled: dict[str, object] = field(default_factory=dict)
    free_at: float = 0.0
    consecutive_fatals: int = 0
    served: int = 0
    fatal_outcomes: int = 0
    quarantines: int = 0
    repair_attempts_total: int = 0
    reintegrations: int = 0
    probe_faults: int = 0
    repair_due_ns: float | None = None
    repair_attempts: int = 0
    power_dilation: float = 1.0
    """Service-time stretch the fleet power governor's cap imposes
    (1.0 = uncapped; only read when a governor is attached)."""


class FleetManager:
    """Routes tenant traffic over a pool of simulated device replicas.

    The manager serves at request granularity against calibrated service
    times (one memoized simulator measurement per tenant model — see
    :func:`~repro.serving.server.measure_service_time_ns`), while the
    lifecycle machinery exercises the *real* devices: bring-up validation
    and repair probes are genuine :meth:`Device.launch` calls with fault
    injectors attached. Dynamic batching stays the single-server layer's
    job; the fleet routes whole requests (sharding/batching across
    replicas composes on top of this layer in later work).
    """

    def __init__(
        self,
        tenants: list[TenantConfig],
        config: FleetConfig | None = None,
        schedule: FaultSchedule | None = None,
        ras: RasConfig | None = None,
        obs=None,
        service_times_ns: dict[str, float] | None = None,
        admission=None,
        autoscaler=None,
        routing: str | None = None,
        powercap=None,
        sdc=None,
    ) -> None:
        if not tenants:
            raise ReproRuntimeError("fleet needs at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ReproRuntimeError(f"duplicate tenant names: {names}")
        self.tenants = {tenant.name: tenant for tenant in tenants}
        self.config = config or FleetConfig()
        self.schedule = schedule or FaultSchedule()
        self.ras = ras or RasConfig()
        self.obs = obs
        # SLO-class admission (AdmissionPolicy) supersedes the flat
        # ras.queue_depth_limit; the autoscaler (AutoscalerConfig) drives
        # standby promotion / active drain on top of the failover
        # lifecycle. Both are optional and change nothing when absent.
        self.admission = admission
        self._admission_ctl = None
        if admission is not None:
            from repro.serving.admission import AdmissionController

            self._admission_ctl = AdmissionController(admission)
        self._autoscaler = None
        if autoscaler is not None:
            from repro.serving.autoscale import Autoscaler

            self._autoscaler = Autoscaler(autoscaler)
        # The fleet power governor (PowerCapConfig) caps the rack budget
        # and dilates per-replica service under cap. Optional: without it
        # no power state exists and every path below is bit-identical to
        # an ungoverned build.
        self._governor = None
        if powercap is not None:
            from repro.serving.powercap import FleetPowerGovernor

            self._governor = FleetPowerGovernor(powercap)
        # Silent-data-corruption defense (SdcConfig): ABFT result
        # checking, golden-vector screens, dual-execution audits and
        # corruption-aware containment. Optional; with no config the
        # tracker never exists and the serving path is bit-identical.
        self.sdc_config = sdc
        self._sdc = None
        self.service_times_ns = dict(service_times_ns or {})
        missing = [
            tenant for tenant in tenants
            if tenant.name not in self.service_times_ns
        ]
        if missing:
            # Independent simulations: warm the measurement memo across
            # worker processes (bit-identical merge — repro.sim.parallel),
            # then measure_service_time_ns below is pure cache hits.
            from repro.sim.parallel import prewarm_measurements

            prewarm_measurements(
                (tenant.model, tenant.groups) for tenant in missing
            )
        for tenant in missing:
            self.service_times_ns[tenant.name] = measure_service_time_ns(
                tenant.model, tenant.groups
            )
        # Replica selection: "heap" (the O(log N) fast path, default) or
        # "reference" (the pinned O(N) scans) — explicit arg wins over the
        # REPRO_FLEET_ROUTING environment override. Both produce
        # byte-identical reports (tests/serving/test_routing.py).
        self.routing = resolve_routing(routing)
        self._router = make_router(self.routing)
        if self._governor is not None:
            self._router = PowerAwareRouter(self._router)
        if self.sdc_config is not None:
            from repro.serving.sdc import SdcAwareRouter

            # Outermost wrapper: corruption suspicion is a soft
            # avoidance applied after the governor's hard exclusions.
            self._router = SdcAwareRouter(self._router)
        self._service_memo: dict[tuple[str, int], float] = {}
        self._group_next: list[int] = []
        self._bringup_events: list[LifecycleEvent] = []
        self._replicas = self._open_fleet(tenants)

    # -- bring-up ------------------------------------------------------------

    def _open_fleet(self, tenants: list[TenantConfig]) -> list[_Replica]:
        """Open N active + M standby devices, compile every tenant once."""
        cfg = self.config
        replicas: list[_Replica] = []
        # One lowering per tenant model for the whole fleet: replicas are
        # the same chip, so COMPILE_CACHE would hand every later replica
        # the identical CompiledModel anyway — compiling through the first
        # device and sharing the object skips the per-replica cache-key
        # hashing that dominated bring-up at thousands of devices.
        built = {tenant.name: build(tenant.model) for tenant in tenants}
        compiled_shared: dict[str, object] = {}
        for index in range(cfg.replicas + cfg.hot_spares):
            name = f"r{index}"
            device_id = f"{cfg.device}-{name}"
            device = Device.open(cfg.device, obs=self.obs, device_id=device_id)
            injector = FaultInjector(
                self.schedule.base,
                seed=derive_seed(cfg.seed, "injector", name),
                device=device_id,
            )
            device.accelerator.attach_faults(injector)
            role = (
                ReplicaStatus.ACTIVE
                if index < cfg.replicas
                else ReplicaStatus.STANDBY
            )
            replica = _Replica(
                index=index, name=name, device=device, injector=injector,
                status=role, initial_status=role,
            )
            for tenant in tenants:
                compiled = compiled_shared.get(tenant.name)
                if compiled is None:
                    compiled = device.compile(built[tenant.name], batch=1)
                    compiled_shared[tenant.name] = compiled
                replica.compiled[tenant.name] = compiled
            self._bringup_events.append(
                LifecycleEvent(0.0, name, "opened", f"{device_id} as {role.value}")
            )
            if cfg.validate_on_open:
                self._validate(replica, tenants[0])
            replicas.append(replica)
        return replicas

    def _validate(self, replica: _Replica, tenant: TenantConfig) -> None:
        """One real launch proves the board before it joins the pool."""
        try:
            replica.device.launch(
                replica.compiled[tenant.name], num_groups=tenant.groups
            )
            detail = f"launch ok ({tenant.model}x{tenant.groups})"
        except HardwareFault as fault:
            detail = f"launch faulted: {fault}"
        self._bringup_events.append(
            LifecycleEvent(0.0, replica.name, "validated", detail)
        )

    # -- pool views ----------------------------------------------------------

    def _active(self) -> list[_Replica]:
        return [
            replica for replica in self._replicas
            if replica.status is ReplicaStatus.ACTIVE
        ]

    def _standby(self) -> _Replica | None:
        for replica in self._replicas:
            if replica.status is ReplicaStatus.STANDBY:
                return replica
        return None

    # -- the run -------------------------------------------------------------

    def run(self, trace: list[Request]) -> FleetReport:
        """Replay a request trace over the fleet; returns the full report.

        Deterministic: the same trace, schedule, configs and seed always
        produce an identical report (every RNG stream is re-derived from
        the fleet seed on entry, and fleet state is reset to bring-up
        roles — re-running the same manager reproduces the same report).
        """
        self._reset()
        cfg = self.config
        router = self._router
        router.rebuild(self._replicas)
        governor = self._governor
        gov_next: float | None = None
        if governor is not None:
            governor.reset(self._replicas)
            self._apply_power_signals()
            gov_next = governor.window_ns
        self._sdc = None
        screen_next: float | None = None
        screen_interval: float = 0.0
        if self.sdc_config is not None:
            from repro.serving.sdc import SdcTracker

            self._sdc = SdcTracker(
                self.sdc_config, cfg.seed, self.schedule,
                [replica.name for replica in self._replicas],
                self.ras.transfers_per_request,
            )
            if self.sdc_config.screen_interval_ms is not None:
                screen_interval = self.sdc_config.screen_interval_ms * 1e6
                screen_next = screen_interval
        rngs = {
            replica.name: derive_rng(cfg.seed, "serve", replica.name)
            for replica in self._replicas
        }
        events: list[LifecycleEvent] = list(self._bringup_events)
        stats = {name: FleetTenantStats(tenant=name) for name in self.tenants}
        latencies: dict[str, list[float]] = {name: [] for name in self.tenants}
        class_latencies: dict[tuple[str, str], list[float]] = {}
        # Bounded per-tenant / fleet-wide per-class finish times: the
        # admission layer's queue depths and backpressure read these (the
        # fleet is one shared pool). Maintained only when something reads
        # them, and pruned as depth queries move forward in time.
        finishes: dict[str, PrunedFinishes] = {
            name: PrunedFinishes() for name in self.tenants
        }
        class_finishes: dict[str, PrunedFinishes] = {}
        track_tenant_finishes = (
            self._admission_ctl is None
            and self.ras.queue_depth_limit is not None
        )
        track_class_finishes = self._admission_ctl is not None
        counters = _RunCounters()
        counters.min_healthy = router.active_count()
        horizon = 0.0
        # One vectorized pass validates the whole trace (same first error
        # the per-request checks raised) and precomputes the per-(tenant,
        # class) chain the coalescer walks instead of rescanning forward.
        self._validate_trace(trace)
        self._group_next = self._group_chains(trace)
        joined = [False] * len(trace)
        next_tick = (
            self._autoscaler.config.eval_interval_ms * 1e6
            if self._autoscaler is not None
            else None
        )
        for index, request in enumerate(trace):
            if joined[index]:
                continue  # coalesced into an earlier batch, accounted there
            arrival = request.arrival_ns
            # Governor windows, autoscaler ticks and SDC screen ticks
            # interleave in time order (governor first on ties: caps land
            # before the scale decision reads them; screens last). With
            # no governor and no screener this reduces exactly to the
            # historical autoscaler-only stepping.
            while True:
                due_gov = gov_next is not None and gov_next <= arrival
                due_scale = next_tick is not None and next_tick <= arrival
                due_screen = screen_next is not None and screen_next <= arrival
                if (
                    due_gov
                    and (not due_scale or gov_next <= next_tick)
                    and (not due_screen or gov_next <= screen_next)
                ):
                    self._powercap_tick(gov_next)
                    gov_next += governor.window_ns
                elif due_scale and (
                    not due_screen or next_tick <= screen_next
                ):
                    self._autoscale_tick(
                        next_tick, class_finishes, events, counters
                    )
                    next_tick += (
                        self._autoscaler.config.eval_interval_ms * 1e6
                    )
                elif due_screen:
                    self._screen_tick(screen_next, events, counters)
                    screen_next += screen_interval
                else:
                    break
            router.advance(arrival)
            self._advance(arrival, events, counters)
            tenant_stats = stats[request.tenant]
            tenant_stats.offered += 1
            active = router.active_count()
            if active and governor is not None:
                # Parked replicas are powered off by the cap: they sit in
                # the routing pool but cannot take traffic, so a fully
                # parked fleet sheds for lack of capacity like a fully
                # quarantined one.
                parked = governor.parked_indices()
                if parked:
                    active -= sum(
                        1 for index in parked
                        if self._replicas[index].status
                        is ReplicaStatus.ACTIVE
                    )
            if not active:
                tenant_stats.shed += 1
                tenant_stats.shed_no_capacity += 1
                self._note_shed(tenant_stats, request, "no-capacity")
                continue
            shed_reason = self._admission_shed(
                request, finishes[request.tenant], class_finishes
            )
            if shed_reason is not None:
                tenant_stats.shed += 1
                self._note_shed(tenant_stats, request, shed_reason)
                continue
            members = self._coalesce(trace, index, joined)
            for member in members[1:]:
                tenant_stats.offered += 1
            finish, status, hedges = self._dispatch(
                members, rngs, events, counters
            )
            if hedges:
                tenant_stats.hedged += len(members)
                counters.hedged_requests += len(members)
            for member in members:
                final = self._apply_deadline(status, member, finish)
                latency_ms = (finish - member.arrival_ns) / 1e6
                if final == "ok":
                    tenant_stats.served += 1
                    latencies[member.tenant].append(latency_ms)
                    if self._admission_ctl is not None:
                        class_latencies.setdefault(
                            (member.tenant, member.slo_class), []
                        ).append(latency_ms)
                        self._class_stat(tenant_stats, member).served += 1
                    if self._autoscaler is not None:
                        self._autoscaler.observe(member.slo_class, latency_ms)
                else:
                    tenant_stats.failed += 1
                    if self._admission_ctl is not None:
                        self._class_stat(tenant_stats, member).failed += 1
                if self._admission_ctl is not None:
                    self._class_stat(tenant_stats, member).offered += 1
                if track_tenant_finishes:
                    finishes[member.tenant].push(finish)
                if track_class_finishes:
                    entry = class_finishes.get(member.slo_class)
                    if entry is None:
                        entry = class_finishes[member.slo_class] = (
                            PrunedFinishes()
                        )
                    entry.push(finish)
            horizon = max(horizon, finish)
        if screen_next is not None:
            # Let the screener finish sweeping the served interval, so
            # corruption served near the end of the trace still gets its
            # conviction (and its detection-latency sample) on record.
            while screen_next <= horizon:
                self._screen_tick(screen_next, events, counters)
                screen_next += screen_interval
        self._drain_repairs(events, counters)
        if governor is not None:
            # Close governor windows until every occupied interval is
            # accounted, so the energy integral covers the whole run.
            while gov_next - governor.window_ns < horizon:
                self._powercap_tick(gov_next)
                gov_next += governor.window_ns
        for name, values in latencies.items():
            if values:
                array = np.asarray(values)
                stats[name].p50_ms = float(np.percentile(array, 50))
                stats[name].p95_ms = float(np.percentile(array, 95))
                stats[name].p99_ms = float(np.percentile(array, 99))
        if self._admission_ctl is not None:
            from repro.obs.metrics import DEFAULT_BUCKETS_MS

            for (tenant, slo_class), values in class_latencies.items():
                stats[tenant].by_class[slo_class].set_percentiles(
                    values, DEFAULT_BUCKETS_MS
                )
        events.sort(key=lambda event: event.time_ns)
        horizon = max(
            [horizon] + [event.time_ns for event in events] or [0.0]
        )
        report = self._report(stats, events, counters, horizon)
        if self.obs is not None:
            self._export_obs(report)
        return report

    def _validate_trace(self, trace: list[Request]) -> None:
        """Whole-trace validation in one vectorized pass.

        Raises exactly what the historical per-request checks raised, at
        the same first offending request: the arrival-order check wins
        over the unknown-tenant check at equal index (it ran first).
        """
        n = len(trace)
        if not n:
            return
        arrivals = np.fromiter(
            (request.arrival_ns for request in trace),
            dtype=np.float64, count=n,
        )
        previous = np.empty(n)
        previous[0] = 0.0
        previous[1:] = arrivals[:-1]
        drops = np.flatnonzero(arrivals < previous)
        bad_arrival = int(drops[0]) if drops.size else n
        known = self.tenants
        bad_tenant = n
        for index in range(min(bad_arrival + 1, n)):
            if trace[index].tenant not in known:
                bad_tenant = index
                break
        if bad_arrival >= n and bad_tenant >= n:
            return
        if bad_arrival <= bad_tenant:
            request = trace[bad_arrival]
            raise ReproRuntimeError(
                f"trace arrivals must be non-decreasing: request "
                f"{request.request_id} at {request.arrival_ns} after "
                f"{float(previous[bad_arrival])}"
            )
        request = trace[bad_tenant]
        raise ReproRuntimeError(
            f"request {request.request_id}: unknown tenant "
            f"{request.tenant!r}"
        )

    @staticmethod
    def _group_chains(trace: list[Request]) -> list[int]:
        """``chain[i]`` = index of the next same-(tenant, class) request
        after ``i`` (-1 at the tail) — the coalescer walks this instead
        of rescanning every following arrival."""
        chain = [-1] * len(trace)
        last: dict[tuple[str, str], int] = {}
        for index in range(len(trace) - 1, -1, -1):
            request = trace[index]
            key = (request.tenant, request.slo_class)
            chain[index] = last.get(key, -1)
            last[key] = index
        return chain

    def _class_stat(
        self, tenant_stats: FleetTenantStats, request: Request
    ) -> SloClassStats:
        by_class = tenant_stats.by_class
        if request.slo_class not in by_class:
            by_class[request.slo_class] = SloClassStats(
                slo_class=request.slo_class
            )
        return by_class[request.slo_class]

    def _note_shed(
        self, tenant_stats: FleetTenantStats, request: Request, reason: str
    ) -> None:
        tenant_stats.shed_reasons[reason] = (
            tenant_stats.shed_reasons.get(reason, 0) + 1
        )
        if self._admission_ctl is not None:
            entry = self._class_stat(tenant_stats, request)
            entry.offered += 1
            entry.record_shed(reason)

    def _coalesce(
        self, trace: list[Request], index: int, joined: list[bool]
    ) -> list[Request]:
        """Continuous batching: same-(tenant, class) arrivals inside the
        coalescing window ride along with the head request.

        The window is anchored at the batch's earliest possible start
        (the least-loaded active replica's free time); joiners bypass the
        per-arrival admission checks — they consume a batch slot that is
        already paid for, not queue depth. A zero window (the default)
        returns ``[head]`` and reproduces the unbatched fleet exactly.
        """
        head = trace[index]
        tenant = self.tenants[head.tenant]
        members = [head]
        window_ns = tenant.coalesce_window_ms * 1e6
        if window_ns <= 0 or tenant.max_batch <= 1:
            return members
        start = self._router.earliest_start(head.arrival_ns)
        horizon = start + window_ns
        # Walk the precomputed same-(tenant, class) chain: arrivals are
        # non-decreasing, so stopping at the first chain member past the
        # horizon visits exactly the candidates the forward scan did.
        probe = self._group_next[index]
        while (
            probe != -1
            and len(members) < tenant.max_batch
            and trace[probe].arrival_ns <= horizon
        ):
            if not joined[probe]:
                members.append(trace[probe])
                joined[probe] = True
            probe = self._group_next[probe]
        return members

    def _powercap_tick(self, now: float) -> None:
        """One governor window: account draw, re-apportion caps, refresh
        the dilation/routing signals the serving path reads."""
        governor = self._governor
        governor.close_window(
            now, [replica.status for replica in self._replicas]
        )
        self._apply_power_signals()

    def _apply_power_signals(self) -> None:
        governor = self._governor
        dilations = governor.dilations()
        for replica in self._replicas:
            replica.power_dilation = dilations[replica.index]
        self._router.set_power_sets(
            governor.avoid_indices(), governor.parked_indices()
        )

    def _autoscale_tick(
        self,
        now: float,
        class_finishes: dict[str, PrunedFinishes],
        events: list[LifecycleEvent],
        counters: "_RunCounters",
    ) -> None:
        """One autoscaler evaluation: promote a standby or drain an
        active replica back to standby (never below one, never past the
        devices the fleet actually opened)."""
        self._advance(now, events, counters)
        scaler = self._autoscaler
        router = self._router
        n_active = router.active_count()
        backpressure = 0.0
        if self._admission_ctl is not None:
            backpressure = self._admission_ctl.backpressure(
                DepthView(class_finishes, now)
            )
        power_feasible = True
        if self._governor is not None:
            backpressure = max(
                backpressure, self._governor.power_pressure()
            )
            power_feasible = self._governor.can_power_promotion(n_active)
        spare = router.standby()
        delta = scaler.evaluate(
            now, n_active, backpressure,
            can_up=spare is not None,
            can_down=n_active > 1,
            power_feasible=power_feasible,
        )
        if delta > 0:
            spare.status = ReplicaStatus.ACTIVE
            spare.free_at = max(spare.free_at, now)
            router.update(spare)
            counters.autoscale_ups += 1
            events.append(
                LifecycleEvent(
                    now, spare.name, "scaled-up",
                    scaler.actions[-1].reason,
                )
            )
        elif delta < 0:
            victim = router.drain_victim()
            victim.status = ReplicaStatus.STANDBY
            router.update(victim)
            counters.autoscale_downs += 1
            events.append(
                LifecycleEvent(
                    now, victim.name, "scaled-down",
                    scaler.actions[-1].reason,
                )
            )
        counters.note_healthy(router.active_count())

    def _reset(self) -> None:
        """Restore bring-up roles so repeated runs are reproducible."""
        for replica in self._replicas:
            replica.status = replica.initial_status
            replica.free_at = 0.0
            replica.consecutive_fatals = 0
            replica.served = 0
            replica.fatal_outcomes = 0
            replica.quarantines = 0
            replica.repair_attempts_total = 0
            replica.reintegrations = 0
            replica.probe_faults = 0
            replica.repair_due_ns = None
            replica.repair_attempts = 0
            replica.power_dilation = 1.0
        if self._admission_ctl is not None:
            self._admission_ctl.reset()
        if self._autoscaler is not None:
            self._autoscaler.reset()

    # -- routing + serving ---------------------------------------------------

    def _admission_shed(
        self,
        request: Request,
        finishes: PrunedFinishes,
        class_finishes: dict[str, PrunedFinishes],
    ) -> str | None:
        """Admission control at the fleet door; returns a shed reason or
        ``None`` to admit.

        With an :class:`~repro.serving.admission.AdmissionPolicy`
        attached, the request's SLO class gets the full treatment —
        bounded per-class queue, deadline-aware early shedding, brownout
        — driven by fleet-wide per-class depths. Without one, the legacy
        flat per-tenant ``ras.queue_depth_limit`` applies.
        """
        now = request.arrival_ns
        if self._admission_ctl is not None:
            ctl = self._admission_ctl
            depths = DepthView(class_finishes, now)
            pressure = ctl.backpressure(depths)
            if self._governor is not None:
                # Sustained power throttle reads as backpressure: a capped
                # fleet escalates brownout instead of queueing into SLO
                # misses it cannot serve at the throttled rate.
                pressure = max(pressure, self._governor.power_pressure())
            ctl.update(pressure)
            earliest = self._router.earliest_start(now)
            decision = ctl.decide(
                request.slo_class,
                depths.get(request.slo_class, 0),
                earliest - now,
                self.service_times_ns[request.tenant],
            )
            return None if decision.admitted else decision.reason
        limit = self.ras.queue_depth_limit
        if limit is None:
            return None
        return "queue-full" if finishes.depth(now) >= limit else None

    def _dispatch(
        self,
        members: list[Request],
        rngs: dict,
        events: list[LifecycleEvent],
        counters: "_RunCounters",
    ) -> tuple[float, str, int]:
        """Serve one batch with hedged re-dispatch across replicas.

        Returns ``(finish_ns, status, hedges)``. A fatal outcome marks the
        replica (possibly quarantining it), then the batch re-dispatches
        to the next least-loaded healthy replica at the failure time —
        up to ``max_hedges`` times before the batch is declared failed.
        ``members`` is usually one request; continuous batching passes
        the coalesced group, which lives and dies together.
        """
        head = members[0]
        dispatch_ns = head.arrival_ns
        hedges = 0
        excluded: set[int] = set()
        finish = dispatch_ns
        router = self._router
        last_joiner_ns = members[-1].arrival_ns
        while True:
            replica = router.pick(dispatch_ns, excluded)
            if replica is None:
                return finish, "failed", hedges
            if excluded:
                # A prior attempt died fatally and a healthy replica is
                # taking the batch over: that is one hedged failover.
                hedges += 1
                counters.failovers += 1
            start = max(dispatch_ns, replica.free_at)
            # Continuous batching: the launch waits for its last joiner.
            start = max(start, last_joiner_ns)
            finish, outcome, _retries, corrupted = self._attempt(
                replica, head.tenant, start, rngs[replica.name],
                batch=len(members),
            )
            replica.free_at = finish
            if self._governor is not None:
                # Fatal attempts burned power too: every occupied
                # interval feeds the governor's draw accounting.
                self._governor.note_busy(replica.index, start, finish)
            router.update(replica)
            if self._sdc is not None:
                # ABFT detections inside _attempt queued containment
                # directives; apply them at the attempt's finish time.
                self._apply_sdc_actions(finish, events, counters)
            if outcome == "ok":
                if self._sdc is not None:
                    self._sdc_serve(
                        replica, head.tenant, len(members), corrupted,
                        finish, events, counters,
                    )
                replica.served += len(members)
                replica.consecutive_fatals = 0
                return finish, "ok", hedges
            replica.fatal_outcomes += 1
            replica.consecutive_fatals += 1
            self._maybe_quarantine(replica, finish, events, counters)
            excluded.add(replica.index)
            if hedges >= self.config.max_hedges:
                return finish, "failed", hedges
            dispatch_ns = finish

    def _attempt(
        self,
        replica: _Replica,
        tenant_name: str,
        start: float,
        rng,
        batch: int = 1,
    ) -> tuple[float, str, int, bool]:
        """One replica-local service: in-place retries, then ok/fatal.

        Fault pressure comes from the schedule's effective rates at each
        attempt's dispatch time on this replica — storms hit mid-flight
        requests. Zero rates consume no randomness, so quiet fleets stay
        bit-identical to the fault-free path.

        The fourth return element flags a *silently corrupted* ok result
        (always ``False`` without an SDC tracker). With result checking
        attached, an ABFT detection re-executes the batch in place —
        sharing the RAS retry budget, so a replica that corrupts every
        execution escalates to a fatal outcome and the ordinary
        quarantine machinery.
        """
        memo_key = (tenant_name, batch)
        service = self._service_memo.get(memo_key)
        if service is None:
            service = batch_service_time_ns(
                self.service_times_ns[tenant_name], batch
            )
            self._service_memo[memo_key] = service
        if self._governor is not None and replica.power_dilation != 1.0:
            # The power cap's performance echo: a throttled device serves
            # the same work, stretched by the governor's dilation.
            service = service * replica.power_dilation
        tracker = self._sdc
        if tracker is not None:
            # Result checking costs compute: the checked path's measured
            # slowdown (serving.sdc_overhead bench) stretches service.
            service = service * tracker.service_multiplier()
        events_per_attempt = self.ras.transfers_per_request * batch
        now = start
        retries = 0
        while True:
            dispatch_ns = now
            transient_rate, fatal_rate = self.schedule.rates_at(
                now, replica.index
            )
            p_fatal = 1.0 - (1.0 - fatal_rate) ** events_per_attempt
            p_transient = 1.0 - (1.0 - transient_rate) ** events_per_attempt
            now += service
            if p_fatal > 0.0 and rng.random() < p_fatal:
                return now, "fatal", retries, False
            if p_transient > 0.0 and rng.random() < p_transient:
                retries += 1
                if retries > self.ras.max_retries:
                    return now, "fatal", retries, False
                now += (
                    self.ras.retry_backoff_ms * 1e6
                    * (self.ras.backoff_factor ** (retries - 1))
                )
                continue
            corrupted = False
            if tracker is not None:
                corrupted = tracker.attempt_corrupted(
                    replica.name, replica.index, dispatch_ns,
                    events_per_attempt,
                )
                if corrupted and tracker.abft_detects(replica.name):
                    # Caught before the result leaves the replica: the
                    # wrong answer is discarded and the batch re-executes.
                    tracker.note_detection(replica.index, "abft")
                    retries += 1
                    if retries > self.ras.max_retries:
                        return now, "fatal", retries, False
                    now += (
                        self.ras.retry_backoff_ms * 1e6
                        * (self.ras.backoff_factor ** (retries - 1))
                    )
                    continue
            return now, "ok", retries, corrupted

    def _apply_deadline(
        self, status: str, request: Request, finish: float
    ) -> str:
        if (
            status == "ok"
            and self.ras.deadline_ms is not None
            and (finish - request.arrival_ns) > self.ras.deadline_ms * 1e6
        ):
            return "failed"
        return status

    # -- lifecycle -----------------------------------------------------------

    def _maybe_quarantine(
        self,
        replica: _Replica,
        now: float,
        events: list[LifecycleEvent],
        counters: "_RunCounters",
    ) -> None:
        if (
            replica.status is not ReplicaStatus.ACTIVE
            or replica.consecutive_fatals < self.config.quarantine_threshold
        ):
            return
        self._quarantine(
            replica, now,
            f"{replica.consecutive_fatals} consecutive fatal outcomes",
            events, counters,
        )

    def _quarantine(
        self,
        replica: _Replica,
        now: float,
        detail: str,
        events: list[LifecycleEvent],
        counters: "_RunCounters",
    ) -> None:
        """Drain one active replica into quarantine, promoting a spare."""
        replica.status = ReplicaStatus.QUARANTINED
        replica.quarantines += 1
        replica.repair_due_ns = now + self.config.repair_ms * 1e6
        replica.repair_attempts = 0
        self._router.update(replica)
        counters.quarantines += 1
        events.append(
            LifecycleEvent(now, replica.name, "quarantined", detail)
        )
        self._promote_spare(replica.name, now, events, counters)
        counters.note_healthy(self._router.active_count())

    def _promote_spare(
        self,
        replaced: str,
        now: float,
        events: list[LifecycleEvent],
        counters: "_RunCounters",
    ) -> None:
        spare = self._router.standby()
        if spare is None:
            return
        spare.status = ReplicaStatus.ACTIVE
        spare.free_at = max(spare.free_at, now)
        self._router.update(spare)
        counters.promotions += 1
        events.append(
            LifecycleEvent(
                now, spare.name, "promoted",
                f"hot spare replacing {replaced}",
            )
        )

    # -- silent-data-corruption defense (repro.serving.sdc) -------------------

    def _sdc_serve(
        self,
        replica: _Replica,
        tenant_name: str,
        batch: int,
        corrupted: bool,
        finish: float,
        events: list[LifecycleEvent],
        counters: "_RunCounters",
    ) -> None:
        """Post-serve SDC path: sampled dual-execution audit, then the
        served-corrupted ledger for anything nothing caught."""
        tracker = self._sdc
        if tracker.audit_selected():
            secondary = self._router.pick(finish, {replica.index})
            if secondary is not None:
                tracker.audits_run += 1
                service = self._service_memo.get((tenant_name, batch))
                start = max(finish, secondary.free_at)
                audit_finish = start + service
                secondary.free_at = audit_finish
                if self._governor is not None:
                    self._governor.note_busy(
                        secondary.index, start, audit_finish
                    )
                self._router.update(secondary)
                secondary_corrupted = tracker.audit_secondary_corrupted(
                    secondary.index, start
                )
                if corrupted or secondary_corrupted:
                    # Digest disagreement: a golden replay convicts the
                    # corrupting side(s) before the response ships.
                    if corrupted:
                        tracker.note_detection(
                            replica.index, "audit",
                            latency_ms=(audit_finish - finish) / 1e6,
                        )
                        corrupted = False
                    if secondary_corrupted:
                        tracker.note_detection(
                            secondary.index, "audit",
                            latency_ms=(audit_finish - start) / 1e6,
                        )
                    self._apply_sdc_actions(audit_finish, events, counters)
        if corrupted:
            # Nothing caught it: a wrong answer reached the client.
            tracker.note_served(replica.index, finish)

    def _screen_tick(
        self,
        now: float,
        events: list[LifecycleEvent],
        counters: "_RunCounters",
    ) -> None:
        """One screener cadence: golden-vector launches on idle replicas.

        Screens only take replicas that are both in the pool (active or
        standby) and idle at the tick — the screener steals no serving
        capacity from busy boards; a screened replica is occupied for
        ``screen_cost_ms``.
        """
        self._advance(now, events, counters)
        tracker = self._sdc
        cost_ns = tracker.config.screen_cost_ms * 1e6
        for replica in self._replicas:
            if replica.status not in (
                ReplicaStatus.ACTIVE, ReplicaStatus.STANDBY
            ):
                continue
            if replica.free_at > now:
                continue
            detections = tracker.screen_replica(replica.name, replica.index, now)
            if cost_ns > 0.0:
                replica.free_at = now + cost_ns
                self._router.update(replica)
                if self._governor is not None:
                    self._governor.note_busy(replica.index, now, replica.free_at)
            if detections:
                events.append(
                    LifecycleEvent(
                        now, replica.name, "screen_failed",
                        f"{detections} corrupted golden vector(s)",
                    )
                )
        self._apply_sdc_actions(now, events, counters)

    def _apply_sdc_actions(
        self,
        now: float,
        events: list[LifecycleEvent],
        counters: "_RunCounters",
    ) -> None:
        """Apply queued containment directives and refresh routing."""
        tracker = self._sdc
        for index, action in tracker.take_actions():
            replica = self._replicas[index]
            if action == "retire":
                if replica.status is ReplicaStatus.RETIRED:
                    continue
                was_active = replica.status is ReplicaStatus.ACTIVE
                replica.status = ReplicaStatus.RETIRED
                replica.repair_due_ns = None
                self._router.update(replica)
                counters.retirements += 1
                tracker.sdc_retirements += 1
                events.append(
                    LifecycleEvent(
                        now, replica.name, "retired",
                        "repeat silent-corruption offender",
                    )
                )
                if was_active:
                    self._promote_spare(replica.name, now, events, counters)
                counters.note_healthy(self._router.active_count())
            elif action == "quarantine":
                if replica.status is ReplicaStatus.ACTIVE:
                    tracker.sdc_quarantines += 1
                    self._quarantine(
                        replica, now, "silent corruption detected",
                        events, counters,
                    )
        self._router.set_suspected(tracker.suspected_frozen())

    def _advance(
        self,
        now: float,
        events: list[LifecycleEvent],
        counters: "_RunCounters",
    ) -> None:
        """Process every repair probe due at or before ``now``."""
        router = self._router
        while True:
            replica = router.due_repair(now)
            if replica is None:
                counters.note_healthy(router.active_count())
                return
            self._probe(replica, events, counters)

    def _probe(
        self,
        replica: _Replica,
        events: list[LifecycleEvent],
        counters: "_RunCounters",
    ) -> None:
        """Seeded multi-vector repair screen on the quarantined board.

        Each vector is one real launch under the fault schedule's
        effective plan at the probe time — a probe inside a still-raging
        storm fails and extends the quarantine; all vectors clean
        reintegrates the board (active when the fleet is under strength,
        standby spare otherwise). ``screen_vectors=1`` (the default) is
        the historical single-launch probe, byte-identical including its
        seed derivation; more vectors catch boards that fault only on
        some operand patterns. With the SDC layer attached, a clean
        launch set must additionally pass a corruption screen under the
        same effective plan — a board that computes wrong numbers
        without raising cannot pass a probe that only waits for raises.
        """
        cfg = self.config
        due = replica.repair_due_ns
        attempt = replica.repair_attempts
        plan = self.schedule.plan_at(due, replica.index)
        probe_tenant = next(iter(self.tenants.values()))
        ok, detail = True, ""
        for vector in range(cfg.screen_vectors):
            # Vector 0 keeps the historical seed label; extra vectors get
            # their own derived streams (catalogue in repro/seeding.py).
            if vector == 0:
                seed = derive_seed(cfg.seed, "probe", replica.name, attempt)
            else:
                seed = derive_seed(
                    cfg.seed, "probe", replica.name, attempt, vector
                )
            probe_injector = FaultInjector(
                plan, seed=seed, device=replica.device.device_id,
            )
            replica.device.accelerator.attach_faults(probe_injector)
            try:
                replica.device.launch(
                    replica.compiled[probe_tenant.name],
                    num_groups=probe_tenant.groups,
                )
            except HardwareFault as fault:
                ok, detail = False, f"probe faulted: {fault}"
            finally:
                replica.device.accelerator.attach_faults(replica.injector)
            replica.probe_faults += len(probe_injector.records)
            if not ok:
                break
        if ok:
            detail = (
                f"probe launch clean (attempt {attempt})"
                if cfg.screen_vectors == 1
                else f"{cfg.screen_vectors} probe vectors clean "
                     f"(attempt {attempt})"
            )
        if ok and self._sdc is not None and plan.silent_event_rate > 0.0:
            # Statistical corruption screen over the same vectors: any
            # silently-wrong golden output fails the probe (the digest
            # comparison is exact) and counts as a screen detection.
            rng = derive_rng(cfg.seed, "probe-screen", replica.name, attempt)
            p_vector = 1.0 - (
                1.0 - plan.silent_event_rate
            ) ** self.ras.transfers_per_request
            for vector in range(cfg.screen_vectors):
                if rng.random() < p_vector:
                    ok = False
                    detail = (
                        f"probe screen caught silent corruption "
                        f"(vector {vector}, attempt {attempt})"
                    )
                    self._sdc.note_probe_screen_detection(replica.index)
                    break
        replica.repair_attempts += 1
        replica.repair_attempts_total += 1
        if ok:
            counters.repairs += 1
            events.append(LifecycleEvent(due, replica.name, "repaired", detail))
            under_strength = self._router.active_count() < cfg.replicas
            replica.status = (
                ReplicaStatus.ACTIVE if under_strength else ReplicaStatus.STANDBY
            )
            replica.consecutive_fatals = 0
            replica.repair_due_ns = None
            replica.free_at = max(replica.free_at, due)
            replica.reintegrations += 1
            self._router.update(replica)
            counters.reintegrations += 1
            events.append(
                LifecycleEvent(
                    due, replica.name, "reintegrated",
                    f"rejoined as {replica.status.value}",
                )
            )
            if self._sdc is not None:
                # A clean (multi-vector, corruption-screened) probe is
                # the strongest evidence the board computes honestly
                # again: stop avoiding it in routing.
                self._sdc.clear(replica.index)
                self._router.set_suspected(self._sdc.suspected_frozen())
            return
        counters.repair_failures += 1
        events.append(
            LifecycleEvent(due, replica.name, "repair_failed", detail)
        )
        if replica.repair_attempts >= cfg.max_repair_attempts:
            replica.status = ReplicaStatus.RETIRED
            replica.repair_due_ns = None
            counters.retirements += 1
            events.append(
                LifecycleEvent(
                    due, replica.name, "retired",
                    f"{replica.repair_attempts} failed repair probes",
                )
            )
        else:
            replica.repair_due_ns = due + cfg.repair_ms * 1e6
        self._router.update(replica)
        if self._sdc is not None:
            self._apply_sdc_actions(due, events, counters)

    def _drain_repairs(
        self, events: list[LifecycleEvent], counters: "_RunCounters"
    ) -> None:
        """After the trace ends, let pending repairs run to completion so
        the report shows each quarantine's final disposition."""
        router = self._router
        while True:
            replica = router.due_repair(None)
            if replica is None:
                break
            self._probe(replica, events, counters)
        counters.note_healthy(router.active_count())

    # -- reporting -----------------------------------------------------------

    def _report(
        self,
        stats: dict[str, FleetTenantStats],
        events: list[LifecycleEvent],
        counters: "_RunCounters",
        horizon: float,
    ) -> FleetReport:
        devices = [
            DeviceReport(
                name=replica.name,
                device_id=replica.device.device_id,
                final_status=replica.status.value,
                served=replica.served,
                fatal_outcomes=replica.fatal_outcomes,
                quarantines=replica.quarantines,
                repair_attempts=replica.repair_attempts_total,
                reintegrations=replica.reintegrations,
                injected_faults=len(replica.injector.records)
                + replica.probe_faults,
            )
            for replica in self._replicas
        ]
        power = None
        if self._governor is not None:
            if self._autoscaler is not None:
                self._governor.power_blocked_scaleups = (
                    self._autoscaler.power_blocked_ups
                )
            power = self._governor.build_report(
                sum(entry.served for entry in stats.values())
            )
        sdc = None
        if self._sdc is not None:
            sdc = self._sdc.build_section()
        return FleetReport(
            seed=self.config.seed,
            replicas=self.config.replicas,
            hot_spares=self.config.hot_spares,
            tenants=stats,
            devices=devices,
            events=events,
            failovers=counters.failovers,
            hedged_requests=counters.hedged_requests,
            quarantines=counters.quarantines,
            repairs=counters.repairs,
            repair_failures=counters.repair_failures,
            reintegrations=counters.reintegrations,
            promotions=counters.promotions,
            retirements=counters.retirements,
            min_healthy=counters.min_healthy,
            final_healthy=self._router.active_count(),
            horizon_ns=horizon,
            autoscale_ups=counters.autoscale_ups,
            autoscale_downs=counters.autoscale_downs,
            autoscale_reversals=(
                self._autoscaler.reversals()
                if self._autoscaler is not None
                else 0
            ),
            max_brownout_level=(
                self._admission_ctl.max_level_seen
                if self._admission_ctl is not None
                else 0
            ),
            peak_backpressure=(
                self._admission_ctl.peak_backpressure
                if self._admission_ctl is not None
                else 0.0
            ),
            power=power,
            sdc=sdc,
        )

    def _export_obs(self, report: FleetReport) -> None:
        """Mirror the fleet report into the attached metrics registry.

        The gauge/counter catalogue is documented in docs/observability.md
        (fleet rows); ``repro profile --fleet`` prints the same numbers.
        """
        metrics = self.obs.metrics
        metrics.gauge(
            "fleet_replicas", "configured replicas (active target + spares)"
        ).set(report.replicas + report.hot_spares)
        metrics.gauge(
            "fleet_healthy_replicas", "active replicas at end of run"
        ).set(report.final_healthy)
        metrics.gauge(
            "fleet_min_healthy_replicas", "lowest active count seen"
        ).set(report.min_healthy)
        counter_values = {
            "fleet_failovers_total":
                ("request re-dispatches after a replica fatal",
                 report.failovers),
            "fleet_hedged_requests_total":
                ("requests that needed >= 1 hedged retry",
                 report.hedged_requests),
            "fleet_quarantines_total":
                ("replica quarantine transitions", report.quarantines),
            "fleet_repairs_total":
                ("repair probes that came back clean", report.repairs),
            "fleet_repair_failures_total":
                ("repair probes that faulted", report.repair_failures),
            "fleet_reintegrations_total":
                ("repaired replicas rejoining the pool",
                 report.reintegrations),
            "fleet_promotions_total":
                ("hot spares promoted to active", report.promotions),
            "fleet_retirements_total":
                ("replicas retired after failed repairs",
                 report.retirements),
        }
        for name, (help_text, value) in counter_values.items():
            if value:
                metrics.counter(name, help_text).inc(value)
            else:
                metrics.counter(name, help_text)
        requests_total = metrics.counter(
            "fleet_requests_total", "fleet requests by tenant and status"
        )
        availability = metrics.gauge(
            "fleet_availability", "served / offered per tenant"
        )
        for name, stats in sorted(report.tenants.items()):
            for status, value in (
                ("served", stats.served),
                ("failed", stats.failed),
                ("shed", stats.shed),
            ):
                if value:
                    requests_total.inc(value, tenant=name, status=status)
            availability.set(stats.availability, tenant=name)
        self._export_serving_obs(report)
        if report.power is not None:
            self._export_power_obs(report)
        if report.sdc is not None:
            self._export_sdc_obs(report)

    def _export_serving_obs(self, report: FleetReport) -> None:
        """Admission/autoscaler metric rows (docs/observability.md)."""
        metrics = self.obs.metrics
        if self._admission_ctl is not None:
            shed_total = metrics.counter(
                "serving_shed_total",
                "requests shed by admission, by reason",
            )
            class_p99 = metrics.gauge(
                "serving_class_p99_ms", "per-SLO-class p99 latency",
                unit="ms",
            )
            class_availability = metrics.gauge(
                "serving_class_availability",
                "served / offered per SLO class",
            )
            for name, stats in sorted(report.tenants.items()):
                for slo_class, entry in sorted(stats.by_class.items()):
                    for reason, count in sorted(entry.shed_reasons.items()):
                        shed_total.inc(
                            count, tenant=name, slo_class=slo_class,
                            reason=reason,
                        )
                    class_p99.set(
                        entry.p99_ms, tenant=name, slo_class=slo_class
                    )
                    class_availability.set(
                        entry.availability, tenant=name, slo_class=slo_class
                    )
            metrics.gauge(
                "serving_brownout_level", "degradation level at run end"
            ).set(self._admission_ctl.brownout_level)
            metrics.gauge(
                "serving_backpressure_peak", "worst queue fullness seen"
            ).set(report.peak_backpressure)
        if self._autoscaler is not None:
            metrics.gauge(
                "autoscaler_replicas", "active replicas at end of run"
            ).set(report.final_healthy)
            scale_events = metrics.counter(
                "autoscaler_scale_events_total",
                "autoscaler actions by direction",
            )
            if report.autoscale_ups:
                scale_events.inc(report.autoscale_ups, direction="up")
            if report.autoscale_downs:
                scale_events.inc(report.autoscale_downs, direction="down")

    def _export_power_obs(self, report: FleetReport) -> None:
        """Fleet power governor gauge/counter rows (docs/power.md)."""
        metrics = self.obs.metrics
        power = report.power
        metrics.gauge(
            "fleet_power_cap_watts", "base fleet power budget", unit="W"
        ).set(power["budget_watts"])
        metrics.gauge(
            "fleet_power_draw_watts",
            "mean modelled fleet draw over the run", unit="W",
        ).set(power["mean_draw_watts"])
        metrics.gauge(
            "powercap_throttle_ratio",
            "mean power-throttle across active devices",
        ).set(power["mean_throttle_ratio"])
        metrics.gauge(
            "energy_per_inference_mj",
            "modelled energy per served inference", unit="mJ",
        ).set(power["energy_per_inference_mj"])
        device_cap = metrics.gauge(
            "device_power_cap_watts",
            "final per-device power cap", unit="W",
        )
        device_draw = metrics.gauge(
            "device_power_draw_watts",
            "mean per-device modelled draw", unit="W",
        )
        device_throttle = metrics.gauge(
            "device_power_throttle",
            "final per-device power throttle",
        )
        for name, entry in sorted(power["devices"].items()):
            device_cap.set(entry["final_cap_watts"], device=name)
            device_draw.set(entry["mean_draw_watts"], device=name)
            device_throttle.set(entry["final_throttle"], device=name)
        reapportions = metrics.counter(
            "powercap_reapportion_total",
            "governor windows that moved at least one device cap",
        )
        if power["reapportions"]:
            reapportions.inc(power["reapportions"], policy=power["policy"])
        parked = metrics.counter(
            "powercap_parked_device_windows_total",
            "device-windows spent parked by the budget",
        )
        if power["parked_device_windows"]:
            parked.inc(power["parked_device_windows"])
        blocked = metrics.counter(
            "powercap_blocked_scaleups_total",
            "autoscaler promotions the power budget vetoed",
        )
        if power["power_blocked_scaleups"]:
            blocked.inc(power["power_blocked_scaleups"])

    def _export_sdc_obs(self, report: FleetReport) -> None:
        """SDC defense counter/gauge rows (docs/observability.md)."""
        metrics = self.obs.metrics
        sdc = report.sdc
        injected = metrics.counter(
            "sdc_injected_total",
            "silent corruption events injected at the fleet tier",
        )
        if sdc["injected"]:
            injected.inc(sdc["injected"])
        detected = metrics.counter(
            "sdc_detected_total", "caught corruption events by method"
        )
        for method, count in sorted(sdc["detected"].items()):
            if count:
                detected.inc(count, method=method)
        served = metrics.counter(
            "sdc_served_total",
            "corrupted results that reached a client undetected",
        )
        if sdc["served_corrupted"]:
            served.inc(sdc["served_corrupted"])
        screens = metrics.counter(
            "sdc_screens_total", "golden-vector screens executed"
        )
        if sdc["screens_run"]:
            screens.inc(sdc["screens_run"])
        audits = metrics.counter(
            "sdc_audits_total", "dual-execution audits executed"
        )
        if sdc["audits_run"]:
            audits.inc(sdc["audits_run"])
        metrics.gauge(
            "sdc_detection_latency_max_ms",
            "worst injection-to-detection latency of caught events",
            unit="ms",
        ).set(sdc["max_detection_latency_ms"])
        metrics.gauge(
            "sdc_suspected_replicas",
            "replicas under routing avoidance at run end",
        ).set(len(sdc["suspected_final"]))


@dataclass
class _RunCounters:
    """Fleet-wide tallies of one run."""

    failovers: int = 0
    hedged_requests: int = 0
    quarantines: int = 0
    repairs: int = 0
    repair_failures: int = 0
    reintegrations: int = 0
    promotions: int = 0
    retirements: int = 0
    min_healthy: int = 0
    autoscale_ups: int = 0
    autoscale_downs: int = 0

    def note_healthy(self, active: int) -> None:
        self.min_healthy = min(self.min_healthy, active)
