"""Open-loop load generation: arrival processes over synthetic users.

:mod:`repro.serving.workload` replays *closed-form* Poisson tenants; cloud
overload testing needs the open-loop shape real front ends see — offered
load that does **not** slow down when the service saturates (the TPU
datacenter observation: user traffic is an open loop, so an overloaded
server faces ever-deeper queues, not a politely backing-off client). This
module generates such traffic deterministically:

- **arrival processes** — seeded Poisson (stationary), **diurnal**
  (sinusoidal day/night modulation) and **flash-crowd** (a ramped spike
  multiplying the baseline rate for a window) shapes, all realised by
  thinning a homogeneous Poisson stream (Lewis & Shedler), so one seed
  reproduces the trace byte-for-byte;
- **synthetic user populations** — every request is attributed to one of
  ``users`` synthetic users through per-user *session* state: a session
  issues a geometrically-distributed number of requests before closing,
  and new sessions recruit users round-robin from the population;
- **SLO classes** — each spec labels its requests with an SLO class
  (``interactive`` / ``standard`` / ``batch``), which the admission layer
  (:mod:`repro.serving.admission`) sheds in brownout order;
- **composability** — the output is a plain sorted ``list[Request]``;
  :func:`merge_traces` re-ids and interleaves loadgen output with
  :func:`~repro.serving.workload.generate_trace` traces, so legacy
  closed-loop tenants and open-loop populations share one timeline.

Every stream derives from one root seed via :mod:`repro.seeding`
(``loadgen:<index>:<tenant>:<class>`` labels), so whole overload storms
replay bit-identically — the property the chaos harness pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.seeding import derive_seed
from repro.serving.workload import Request

__all__ = [
    "LoadSpec",
    "LoadSummary",
    "demo_specs",
    "generate_load",
    "merge_traces",
    "summarize_trace",
]

_SHAPES = ("poisson", "diurnal", "flash-crowd")


@dataclass(frozen=True)
class LoadSpec:
    """One open-loop arrival process over a synthetic user population."""

    tenant: str
    rate_per_s: float
    """Mean *baseline* aggregate request rate of the population."""
    slo_class: str = "standard"
    """SLO class stamped on every request this spec emits."""
    shape: str = "poisson"
    """Arrival process: ``poisson``, ``diurnal`` or ``flash-crowd``."""
    users: int = 100
    """Synthetic population size requests are attributed to."""
    session_mean_requests: float = 4.0
    """Mean requests per user session (geometric session lengths)."""
    # diurnal shape --------------------------------------------------------
    period_s: float = 1.0
    """Diurnal cycle length; the rate swings once per period."""
    amplitude: float = 0.5
    """Diurnal modulation depth in [0, 1): rate swings rate*(1 +/- amp)."""
    # flash-crowd shape ----------------------------------------------------
    flash_at_s: float = 0.2
    """Flash-crowd onset time."""
    flash_duration_s: float = 0.2
    """Length of the elevated-rate window (including ramps)."""
    flash_multiplier: float = 4.0
    """Peak rate as a multiple of the baseline rate."""
    flash_ramp_s: float = 0.05
    """Linear ramp up to (and back down from) the peak."""

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate_per_s}")
        if self.shape not in _SHAPES:
            raise ValueError(
                f"unknown shape {self.shape!r}; choose from {_SHAPES}"
            )
        if self.users < 1:
            raise ValueError(f"users must be >= 1, got {self.users}")
        if self.session_mean_requests < 1.0:
            raise ValueError(
                f"session_mean_requests must be >= 1, "
                f"got {self.session_mean_requests}"
            )
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )
        if self.period_s <= 0:
            raise ValueError(f"period must be > 0, got {self.period_s}")
        if self.flash_multiplier < 1.0:
            raise ValueError(
                f"flash_multiplier must be >= 1, got {self.flash_multiplier}"
            )
        if self.flash_duration_s <= 0:
            raise ValueError(
                f"flash_duration_s must be > 0, got {self.flash_duration_s}"
            )
        if self.flash_ramp_s < 0 or 2 * self.flash_ramp_s > self.flash_duration_s:
            raise ValueError(
                f"flash_ramp_s must satisfy 0 <= 2*ramp <= duration, "
                f"got ramp={self.flash_ramp_s} duration={self.flash_duration_s}"
            )

    # -- the time-varying rate --------------------------------------------

    def rate_at(self, t_s: float) -> float:
        """Instantaneous arrival rate lambda(t), requests per second."""
        if self.shape == "poisson":
            return self.rate_per_s
        if self.shape == "diurnal":
            # Trough at t=0 so short traces start in the quiet phase.
            swing = math.sin(2.0 * math.pi * t_s / self.period_s - math.pi / 2)
            return self.rate_per_s * (1.0 + self.amplitude * swing)
        # flash-crowd: baseline + ramped spike window.
        start, end = self.flash_at_s, self.flash_at_s + self.flash_duration_s
        if not start <= t_s < end:
            return self.rate_per_s
        surge = self.flash_multiplier - 1.0
        ramp = self.flash_ramp_s
        if ramp > 0.0 and t_s < start + ramp:
            surge *= (t_s - start) / ramp
        elif ramp > 0.0 and t_s >= end - ramp:
            surge *= (end - t_s) / ramp
        return self.rate_per_s * (1.0 + surge)

    @property
    def peak_rate_per_s(self) -> float:
        """Upper bound on lambda(t) — the thinning envelope."""
        if self.shape == "diurnal":
            return self.rate_per_s * (1.0 + self.amplitude)
        if self.shape == "flash-crowd":
            return self.rate_per_s * self.flash_multiplier
        return self.rate_per_s


@dataclass
class _SessionState:
    """Open sessions of one population: who is mid-session, how much left."""

    next_user: int = 0
    open_sessions: list[tuple[int, int]] = field(default_factory=list)
    """(user_id, requests_remaining) per open session."""


def _arrivals(spec: LoadSpec, duration_s: float, rng) -> list[float]:
    """Thinned non-homogeneous Poisson arrival times, in seconds."""
    peak = spec.peak_rate_per_s
    if peak <= 0.0:
        return []
    times: list[float] = []
    now = 0.0
    while True:
        now += rng.exponential(1.0 / peak)
        if now > duration_s:
            return times
        if rng.random() < spec.rate_at(now) / peak:
            times.append(now)


def _attribute_users(
    spec: LoadSpec, count: int, rng, state: _SessionState
) -> list[int]:
    """Assign each arrival to a user via per-user session state.

    With probability ``1 - 1/mean`` an arrival continues a uniformly
    chosen open session (same user, one fewer request remaining); other
    arrivals open a fresh session for the next user round-robin in the
    population, with a geometric number of requests to issue.
    """
    continue_p = 1.0 - 1.0 / spec.session_mean_requests
    users: list[int] = []
    for _ in range(count):
        sessions = state.open_sessions
        if sessions and rng.random() < continue_p:
            slot = int(rng.integers(len(sessions)))
            user, remaining = sessions[slot]
            remaining -= 1
            if remaining <= 0:
                sessions.pop(slot)
            else:
                sessions[slot] = (user, remaining)
        else:
            user = state.next_user % spec.users
            state.next_user += 1
            remaining = int(rng.geometric(1.0 / spec.session_mean_requests))
            if remaining > 1:
                sessions.append((user, remaining - 1))
        users.append(user)
    return users


def generate_load(
    specs: list[LoadSpec],
    duration_s: float,
    seed: int = 0,
) -> list[Request]:
    """Merge every spec's open-loop arrival process into one trace.

    Deterministic: each spec draws from its own labeled stream
    (``loadgen:<index>:<tenant>:<class>`` off the root ``seed``), so
    adding a spec never perturbs the others and the same call reproduces
    the same trace byte-for-byte.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    keyed: list[tuple[float, int, int, LoadSpec, int]] = []
    for index, spec in enumerate(specs):
        stream = derive_seed(
            seed, "loadgen", index, spec.tenant, spec.slo_class
        ) % 2**32
        rng = np.random.default_rng(stream)
        times = _arrivals(spec, duration_s, rng)
        users = _attribute_users(spec, len(times), rng, _SessionState())
        for order, (t_s, user) in enumerate(zip(times, users)):
            keyed.append((t_s * 1e9, index, order, spec, user))
    keyed.sort(key=lambda item: (item[0], item[1], item[2]))
    return [
        Request(
            request_id=request_id,
            tenant=spec.tenant,
            arrival_ns=arrival_ns,
            slo_class=spec.slo_class,
            user_id=user,
        )
        for request_id, (arrival_ns, _idx, _order, spec, user) in enumerate(keyed)
    ]


def merge_traces(*traces: list[Request]) -> list[Request]:
    """Interleave traces (e.g. loadgen + legacy generate_trace) by time.

    Requests are re-numbered so ids stay unique and arrival-ordered; all
    other fields (tenant, class, user) pass through untouched.
    """
    merged = sorted(
        (request for trace in traces for request in trace),
        key=lambda request: (request.arrival_ns, request.tenant,
                             request.slo_class, request.request_id),
    )
    return [
        Request(
            request_id=index,
            tenant=request.tenant,
            arrival_ns=request.arrival_ns,
            slo_class=request.slo_class,
            user_id=request.user_id,
        )
        for index, request in enumerate(merged)
    ]


@dataclass
class LoadSummary:
    """Per (tenant, class) shape statistics of one generated trace."""

    tenant: str
    slo_class: str
    requests: int
    mean_rate_per_s: float
    peak_rate_per_s: float
    """Highest observed rate over any 50 ms window, scaled to per-second."""
    users: int
    sessions: int

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant, "slo_class": self.slo_class,
            "requests": self.requests,
            "mean_rate_per_s": self.mean_rate_per_s,
            "peak_rate_per_s": self.peak_rate_per_s,
            "users": self.users, "sessions": self.sessions,
        }


def summarize_trace(
    trace: list[Request], duration_s: float, window_s: float = 0.05
) -> list[LoadSummary]:
    """Shape statistics per (tenant, class), sorted for stable output."""
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    groups: dict[tuple[str, str], list[Request]] = {}
    for request in trace:
        groups.setdefault((request.tenant, request.slo_class), []).append(
            request
        )
    summaries = []
    buckets = max(1, int(math.ceil(duration_s / window_s)))
    for (tenant, slo_class), requests in sorted(groups.items()):
        counts = [0] * buckets
        for request in requests:
            slot = min(buckets - 1, int(request.arrival_ns / 1e9 / window_s))
            counts[slot] += 1
        users = {r.user_id for r in requests}
        # Session count estimate: first request of each contiguous same-user
        # run is a session start (exact for the generator's attribution).
        sessions = sum(
            1 for i, r in enumerate(requests)
            if i == 0 or requests[i - 1].user_id != r.user_id
        )
        summaries.append(
            LoadSummary(
                tenant=tenant,
                slo_class=slo_class,
                requests=len(requests),
                mean_rate_per_s=len(requests) / duration_s,
                peak_rate_per_s=max(counts) / window_s,
                users=len(users),
                sessions=sessions,
            )
        )
    return summaries


def demo_specs(scale: float = 1.0) -> list[LoadSpec]:
    """The built-in three-class population the CLI and docs demo with."""
    return [
        LoadSpec(
            tenant="app", rate_per_s=400.0 * scale, slo_class="interactive",
            shape="flash-crowd", users=200, flash_at_s=0.15,
            flash_duration_s=0.2, flash_multiplier=4.0, flash_ramp_s=0.05,
        ),
        LoadSpec(
            tenant="app", rate_per_s=500.0 * scale, slo_class="standard",
            shape="diurnal", users=300, period_s=0.5, amplitude=0.6,
        ),
        LoadSpec(
            tenant="app", rate_per_s=600.0 * scale, slo_class="batch",
            shape="poisson", users=50, session_mean_requests=8.0,
        ),
    ]
