"""Fleet power governor: datacenter power capping over CPME/DVFS.

The paper's power engines exist per device — CPME budget borrowing
(§IV-F1) and the 4-stage DVFS loop (§IV-F2) — but a rack has one breaker,
not one per board. This module adds the coordination layer:

- :class:`FleetPowerGovernor` owns a fleet power budget (optionally
  storm-shaped over time by :class:`PowerCapPhase` step/ramp/oscillate
  cuts) and re-apportions it into per-device caps every governor window
  from the draw each device showed in the window just ended
  (``proportional`` / ``priority`` / ``fair-share`` policies);
- each device cap is actuated through the modelled paper machinery: the
  device's :class:`~repro.power.cpme.Cpme` is re-capped via
  ``set_power_limit`` (reserve shrinks, LPME budgets claw back toward
  their static floors), the :class:`~repro.power.dvfs.DvfsController`
  takes a forced step down to the highest envelope frequency whose
  full-activity draw fits the cap, and any residual over-draw becomes an
  LPME-style stall throttle — so a capped device slows down instead of
  failing;
- the performance echo is a deterministic **service-time dilation**
  ``(f_max / f) / (1 - stall)`` applied to every dispatch on the device,
  which is how a power-cap storm turns into p99 inflation, admission
  backpressure (brownout under sustained throttle) and autoscaler
  feasibility limits rather than dropped requests.

Power integrity is enforced instantaneously at the window level (the
LPME negative-feedback loop holds a unit at its budget within a window),
so modelled draw never exceeds the cap in force; the dilation is the
lagging performance cost. A device whose floor the budget cannot cover is
**parked** (cap 0, excluded from routing) — graceful degradation ends in
an orderly brownout, never an uncontrolled shed.

Everything is pure arithmetic over the fleet's deterministic timeline:
the same trace, config and seed produce byte-identical window rows,
energy totals and reports. With no governor attached the fleet path is
untouched (bit-identical to a build without this module).

See docs/power.md for the loop diagram, policy table and the perf/W
accounting convention.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.errors import ReproRuntimeError
from repro.power.cpme import Cpme
from repro.power.dvfs import DvfsController, Observation
from repro.power.model import DvfsCurve, UnitPowerModel, UnitPowerParams
from repro.serving.routing import ReplicaStatus

__all__ = [
    "FleetPowerGovernor",
    "PowerCapConfig",
    "PowerCapPhase",
    "POWERCAP_POLICIES",
]

POWERCAP_POLICIES = ("proportional", "priority", "fair-share")

_PHASE_SHAPES = ("step", "ramp", "oscillate")


@dataclass(frozen=True)
class PowerCapPhase:
    """One scheduled change of the fleet budget on the trace timeline.

    ``step`` holds ``budget_watts`` for the whole phase; ``ramp``
    interpolates linearly from the base budget at ``start_s`` down (or up)
    to ``budget_watts`` at ``end_s``; ``oscillate`` square-waves between
    ``budget_watts`` and the base budget every half ``period_s`` — the
    power-cap-storm worst case for cap-loop stability.
    """

    start_s: float
    end_s: float
    budget_watts: float
    shape: str = "step"
    period_s: float = 0.1

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ReproRuntimeError(
                f"PowerCapPhase: end_s {self.end_s} must be after "
                f"start_s {self.start_s}"
            )
        if self.budget_watts < 0:
            raise ReproRuntimeError(
                f"PowerCapPhase: negative budget {self.budget_watts}"
            )
        if self.shape not in _PHASE_SHAPES:
            raise ReproRuntimeError(
                f"PowerCapPhase: unknown shape {self.shape!r} "
                f"(expected one of {_PHASE_SHAPES})"
            )
        if self.shape == "oscillate" and self.period_s <= 0:
            raise ReproRuntimeError(
                f"PowerCapPhase: oscillate needs period_s > 0, "
                f"got {self.period_s}"
            )

    def budget_at(self, t_s: float, base_watts: float) -> float:
        """Budget this phase dictates at ``t_s`` (caller checks activity)."""
        if self.shape == "step":
            return self.budget_watts
        if self.shape == "ramp":
            span = self.end_s - self.start_s
            frac = min(1.0, max(0.0, (t_s - self.start_s) / span))
            return base_watts + (self.budget_watts - base_watts) * frac
        half = self.period_s / 2.0
        phase_index = int((t_s - self.start_s) / half)
        return self.budget_watts if phase_index % 2 == 0 else base_watts


@dataclass(frozen=True)
class PowerCapConfig:
    """Typed knobs of one :class:`FleetPowerGovernor`."""

    fleet_budget_watts: float
    """Base rack/datacenter budget the governor apportions."""
    policy: str = "proportional"
    """Apportionment: ``proportional`` (to observed draw above idle),
    ``priority`` (device index order, first-come-first-capped) or
    ``fair-share`` (equal surplus split)."""
    window_ms: float = 5.0
    """Governor re-apportionment window on the trace timeline."""
    phases: tuple[PowerCapPhase, ...] = ()
    """Scheduled budget cuts; the latest active phase wins."""
    device_idle_watts: float = 45.0
    """Static floor of one powered device (modelled chip static power)."""
    device_peak_watts: float = 150.0
    """Full-activity draw of one device at f_max (i20 TDP by default)."""
    f_min_ghz: float = 1.0
    f_max_ghz: float = 1.4
    """DVFS envelope the forced step moves inside (paper §IV-F2)."""
    route_avoid_throttle: float = 0.35
    """Routing avoids replicas throttled beyond this (power-headroom
    score); soft — avoided replicas still serve when nothing else can."""
    brownout_throttle: float = 0.5
    brownout_windows: int = 2
    """Sustained mean throttle >= ``brownout_throttle`` for this many
    consecutive windows feeds full backpressure into admission."""
    min_viable_fraction: float = 0.25
    """Autoscaler feasibility: a promotion needs headroom for this
    fraction of every active device's dynamic range."""
    max_stall: float = 0.95
    """Stall-throttle ceiling; beyond it a device parks instead."""

    def __post_init__(self) -> None:
        def reject(message: str) -> None:
            raise ReproRuntimeError(f"PowerCapConfig: {message}")

        if self.fleet_budget_watts <= 0:
            reject(f"fleet_budget_watts must be > 0, got {self.fleet_budget_watts}")
        if self.policy not in POWERCAP_POLICIES:
            reject(
                f"unknown policy {self.policy!r} "
                f"(expected one of {POWERCAP_POLICIES})"
            )
        if self.window_ms <= 0:
            reject(f"window_ms must be > 0, got {self.window_ms}")
        if not 0 < self.device_idle_watts < self.device_peak_watts:
            reject(
                f"need 0 < idle {self.device_idle_watts} < peak "
                f"{self.device_peak_watts}"
            )
        if not 0 < self.f_min_ghz <= self.f_max_ghz:
            reject(
                f"bad DVFS envelope [{self.f_min_ghz}, {self.f_max_ghz}]"
            )
        if not 0 < self.route_avoid_throttle <= 1:
            reject(
                f"route_avoid_throttle {self.route_avoid_throttle} "
                f"outside (0, 1]"
            )
        if not 0 < self.brownout_throttle <= 1:
            reject(
                f"brownout_throttle {self.brownout_throttle} outside (0, 1]"
            )
        if self.brownout_windows < 1:
            reject(f"brownout_windows must be >= 1, got {self.brownout_windows}")
        if not 0 < self.min_viable_fraction <= 1:
            reject(
                f"min_viable_fraction {self.min_viable_fraction} outside (0, 1]"
            )
        if not 0 < self.max_stall < 1:
            reject(f"max_stall {self.max_stall} outside (0, 1)")

    def budget_at(self, t_ns: float) -> float:
        """Fleet budget in force at ``t_ns`` (latest active phase wins)."""
        t_s = t_ns / 1e9
        budget = self.fleet_budget_watts
        for phase in self.phases:
            if phase.start_s <= t_s < phase.end_s:
                budget = phase.budget_at(t_s, self.fleet_budget_watts)
        return budget

    def scaled(self, multiplier: float) -> "PowerCapConfig":
        """A copy with every budget (base + phases) scaled — the
        cap-monotonicity sweep tightens the whole storm at once."""
        phases = tuple(
            PowerCapPhase(
                start_s=phase.start_s, end_s=phase.end_s,
                budget_watts=phase.budget_watts * multiplier,
                shape=phase.shape, period_s=phase.period_s,
            )
            for phase in self.phases
        )
        return PowerCapConfig(
            fleet_budget_watts=self.fleet_budget_watts * multiplier,
            policy=self.policy, window_ms=self.window_ms, phases=phases,
            device_idle_watts=self.device_idle_watts,
            device_peak_watts=self.device_peak_watts,
            f_min_ghz=self.f_min_ghz, f_max_ghz=self.f_max_ghz,
            route_avoid_throttle=self.route_avoid_throttle,
            brownout_throttle=self.brownout_throttle,
            brownout_windows=self.brownout_windows,
            min_viable_fraction=self.min_viable_fraction,
            max_stall=self.max_stall,
        )


@dataclass
class _DeviceState:
    """Per-replica modelled power machinery and its window accounting."""

    index: int
    name: str
    unit: UnitPowerModel
    cpme: Cpme
    dvfs: DvfsController
    cap_watts: float
    stall: float = 0.0
    dilation: float = 1.0
    parked: bool = False
    busy: deque = field(default_factory=deque)
    busy_carry_ns: float = 0.0
    energy_joules: float = 0.0
    cap_sum_watts: float = 0.0
    draw_sum_watts: float = 0.0
    throttle_sum: float = 0.0
    throttled_windows: int = 0
    parked_windows: int = 0

    @property
    def throttle(self) -> float:
        """Fraction of the device's peak service rate the cap forgoes."""
        return 1.0 - 1.0 / self.dilation


class FleetPowerGovernor:
    """Apportions one fleet power budget into per-device caps per window.

    Driven by :class:`~repro.serving.fleet.FleetManager`: the run loop
    calls :meth:`close_window` at every window boundary on the trace
    timeline (and :meth:`note_busy` per dispatch); the governor hands
    back per-device dilations and routing exclusions. It never touches
    the fleet's RNG streams — a governed run is exactly as deterministic
    as an ungoverned one.
    """

    def __init__(self, config: PowerCapConfig) -> None:
        self.config = config
        self.window_ns = config.window_ms * 1e6
        self._devices: list[_DeviceState] = []
        self._curve = DvfsCurve(config.f_min_ghz, config.f_max_ghz)
        # Envelope frequencies, highest first, for the forced-step search.
        steps = int(round((config.f_max_ghz - config.f_min_ghz) / 0.1))
        self._envelope = [
            self._curve.clamp(config.f_max_ghz - 0.1 * k)
            for k in range(steps + 1)
        ]
        self.windows = 0
        self.reapportions = 0
        self.budget_min_watts = config.fleet_budget_watts
        self.peak_draw_watts = 0.0
        self.peak_throttle = 0.0
        self.throttle_ratio = 0.0
        self._throttle_ratio_sum = 0.0
        self._draw_time_sum = 0.0
        self._high_throttle_streak = 0
        self.brownout_pressure_windows = 0
        self.power_blocked_scaleups = 0
        self.window_rows: list[dict] = []

    # -- lifecycle ---------------------------------------------------------

    def reset(self, replicas) -> None:
        """Rebuild pristine per-device machinery for one fleet run."""
        cfg = self.config
        self._devices = []
        for replica in replicas:
            params = UnitPowerParams(
                name=replica.name,
                static_watts=cfg.device_idle_watts,
                dynamic_watts_peak=cfg.device_peak_watts - cfg.device_idle_watts,
            )
            unit = UnitPowerModel(params, self._curve)
            cpme = Cpme(power_limit_watts=cfg.device_peak_watts)
            cpme.register_units({"chip": unit})
            dvfs = DvfsController(curve=self._curve, hysteresis_windows=2)
            self._devices.append(
                _DeviceState(
                    index=replica.index, name=replica.name, unit=unit,
                    cpme=cpme, dvfs=dvfs, cap_watts=cfg.device_peak_watts,
                )
            )
        self.windows = 0
        self.reapportions = 0
        self.budget_min_watts = cfg.fleet_budget_watts
        self.peak_draw_watts = 0.0
        self.peak_throttle = 0.0
        self.throttle_ratio = 0.0
        self._throttle_ratio_sum = 0.0
        self._draw_time_sum = 0.0
        self._high_throttle_streak = 0
        self.brownout_pressure_windows = 0
        self.power_blocked_scaleups = 0
        self.window_rows = []
        # Boot apportionment: caps in force before the first window closes.
        self._apportion(
            cfg.budget_at(0.0),
            [replica.status for replica in replicas],
            [0.0] * len(self._devices),
        )

    def note_busy(self, index: int, start_ns: float, finish_ns: float) -> None:
        """Record one occupied interval on a device (fleet dispatch)."""
        if finish_ns > start_ns:
            self._devices[index].busy.append((start_ns, finish_ns))

    # -- the governor window ----------------------------------------------

    def close_window(self, end_ns: float, statuses) -> None:
        """Account the window ending at ``end_ns`` and re-apportion caps.

        Draw is modelled from each device's occupied fraction of the
        window at the frequency/stall in force, clamped at the cap in
        force (the LPME holds its unit at budget within a window), then
        the budget at ``end_ns`` is redistributed from that observed draw.
        """
        cfg = self.config
        window_ns = self.window_ns
        start_ns = end_ns - window_ns
        span_s = window_ns / 1e9
        cap_in_force = 0.0
        draw_total = 0.0
        demands = []
        for state, status in zip(self._devices, statuses):
            # Occupied intervals on one replica are serialized (free_at),
            # so at most one spans the window end; its tail is carried
            # forward, possibly across several windows for long services.
            carry = state.busy_carry_ns
            busy_ns = min(carry, window_ns)
            state.busy_carry_ns = max(0.0, carry - window_ns)
            pending = state.busy
            while pending:
                busy_start, busy_finish = pending[0]
                if busy_start >= end_ns:
                    break
                pending.popleft()
                clipped_finish = min(busy_finish, end_ns)
                busy_ns += clipped_finish - max(busy_start, start_ns)
                if busy_finish > end_ns:
                    state.busy_carry_ns += busy_finish - end_ns
                    break
            utilization = min(1.0, busy_ns / window_ns)
            if state.parked or status is ReplicaStatus.RETIRED:
                draw = 0.0
            else:
                # Stalled cycles do not toggle: effective switching
                # activity is the occupied fraction times (1 - stall).
                draw = state.unit.power_watts(
                    utilization * (1.0 - state.stall), state.dvfs.f_ghz
                )
                draw = min(draw, state.cap_watts)
            # Demand is the *unclamped* dynamic power the occupancy would
            # have drawn at full clock — weighting by clamped draw would
            # trap a starved device at its cap forever.
            demands.append(
                utilization * state.unit.params.dynamic_watts_peak
            )
            cap_in_force += 0.0 if state.parked else state.cap_watts
            draw_total += draw
            state.energy_joules += draw * span_s
            state.draw_sum_watts += draw
        budget = cfg.budget_at(end_ns)
        parked = self._apportion(budget, statuses, demands)
        throttle_values = [
            state.throttle
            for state, status in zip(self._devices, statuses)
            if status is ReplicaStatus.ACTIVE and not state.parked
        ]
        throttle_ratio = (
            sum(throttle_values) / len(throttle_values)
            if throttle_values else 0.0
        )
        self.windows += 1
        self.throttle_ratio = throttle_ratio
        self._throttle_ratio_sum += throttle_ratio
        self._draw_time_sum += draw_total
        self.budget_min_watts = min(self.budget_min_watts, budget)
        self.peak_draw_watts = max(self.peak_draw_watts, draw_total)
        self.peak_throttle = max(self.peak_throttle, throttle_ratio)
        if throttle_ratio >= cfg.brownout_throttle:
            self._high_throttle_streak += 1
        else:
            self._high_throttle_streak = 0
        if self._high_throttle_streak >= cfg.brownout_windows:
            self.brownout_pressure_windows += 1
        for state in self._devices:
            state.cap_sum_watts += 0.0 if state.parked else state.cap_watts
            if state.throttle > 1e-12 and not state.parked:
                state.throttled_windows += 1
            if state.parked:
                state.parked_windows += 1
        self.window_rows.append(
            {
                "end_ns": end_ns,
                "budget_watts": budget,
                "cap_watts": sum(
                    0.0 if state.parked else state.cap_watts
                    for state in self._devices
                ),
                "cap_in_force_watts": cap_in_force,
                "draw_watts": draw_total,
                "throttle_ratio": throttle_ratio,
                "parked": parked,
            }
        )

    def _apportion(
        self, budget: float, statuses, demands: list[float]
    ) -> int:
        """Distribute ``budget`` into per-device caps; returns parked count.

        Every powered device is floored at idle; the surplus goes to
        active devices by policy, then any clamped-off leftover is
        re-offered in index order so surplus never strands while a
        device throttles. Caps are allocated against a running remainder
        so their float sum can never exceed the budget. Devices the
        floors cannot cover are parked — standbys first, then
        quarantined boards, then the highest-index actives.
        """
        cfg = self.config
        idle = cfg.device_idle_watts
        peak = cfg.device_peak_watts
        powered = [
            state for state, status in zip(self._devices, statuses)
            if status is not ReplicaStatus.RETIRED
        ]
        for state, status in zip(self._devices, statuses):
            if status is ReplicaStatus.RETIRED:
                state.parked = True
                state.cap_watts = 0.0
        park_rank = {
            ReplicaStatus.STANDBY: 0,
            ReplicaStatus.QUARANTINED: 1,
            ReplicaStatus.ACTIVE: 2,
        }
        order = sorted(
            zip(powered, (status for status in statuses
                          if status is not ReplicaStatus.RETIRED)),
            key=lambda pair: (park_rank[pair[1]], -pair[0].index),
        )
        keep = list(order)
        while keep and idle * len(keep) > budget + 1e-9:
            state, _status = keep.pop(0)
            state.parked = True
            state.cap_watts = 0.0
            state.stall = 0.0
            state.dilation = 1.0
        kept_states = {id(state) for state, _status in keep}
        parked = sum(1 for state in powered if id(state) not in kept_states)
        actives = sorted(
            (state for state, status in keep
             if status is ReplicaStatus.ACTIVE),
            key=lambda state: state.index,
        )
        surplus = budget - idle * len(keep)
        if self.config.policy == "proportional":
            # state.index doubles as the position in the device list.
            weights = [max(0.0, demands[state.index]) for state in actives]
            if sum(weights) <= 0:
                weights = [1.0] * len(actives)
        elif self.config.policy == "fair-share":
            weights = [1.0] * len(actives)
        else:  # priority: index order takes peak headroom first
            weights = None
        remaining = surplus
        grants: dict[int, float] = {}
        if weights is None:
            for state in actives:
                give = min(peak - idle, remaining)
                grants[state.index] = give
                remaining -= give
        else:
            total = sum(weights)
            for state, weight in zip(actives, weights):
                share = surplus * weight / total if total > 0 else 0.0
                give = min(peak - idle, share, remaining)
                grants[state.index] = give
                remaining -= give
            # Top-up pass: shares clamped at peak leave surplus behind;
            # re-offer it in index order so a generous budget lifts
            # every device to peak instead of stranding watts.
            for state in actives:
                if remaining <= 1e-12:
                    break
                room = (peak - idle) - grants[state.index]
                if room > 0.0:
                    give = min(room, remaining)
                    grants[state.index] += give
                    remaining -= give
        changed = False
        for state, status in keep:
            state.parked = False
            cap = idle + grants.get(state.index, 0.0)
            if cap != state.cap_watts:
                changed = True
                state.cap_watts = cap
                state.cpme.set_power_limit(cap)
            self._actuate(state, status)
        if changed:
            self.reapportions += 1
        return parked

    def _actuate(self, state: _DeviceState, status) -> None:
        """Turn one device's cap into a DVFS step + stall throttle."""
        cfg = self.config
        cap = state.cap_watts
        unit = state.unit
        f_cap = cfg.f_min_ghz
        for f_ghz in self._envelope:
            if unit.power_watts(1.0, f_ghz) <= cap + 1e-12:
                f_cap = f_ghz
                break
        state.dvfs.set_cap(
            None if f_cap >= cfg.f_max_ghz - 1e-12 else f_cap
        )
        if status is not ReplicaStatus.ACTIVE:
            # Non-serving boards idle at their floor; no dilation needed.
            state.stall = 0.0
            state.dilation = 1.0
            return
        # The Observation feeds the classifier a saturated duty cycle —
        # an active device under cap pressure is compute-bound by
        # definition; the cap ceiling keeps the step honest.
        decision = state.dvfs.update(
            Observation(busy_ratio=1.0, dma_stall_ratio=0.0)
        )
        f_next = decision.f_ghz
        projected = unit.power_watts(1.0, f_next)
        stall = 0.0
        if projected > cap:
            static = unit.params.static_watts
            dynamic = projected - static
            allowed = max(0.0, cap - static)
            stall = min(cfg.max_stall, 1.0 - allowed / dynamic)
        state.stall = stall
        state.dilation = (cfg.f_max_ghz / f_next) / (1.0 - stall)

    # -- signals the fleet composes with -----------------------------------

    def dilations(self) -> dict[int, float]:
        return {
            state.index: (1.0 if state.parked else state.dilation)
            for state in self._devices
        }

    def parked_indices(self) -> frozenset[int]:
        return frozenset(
            state.index for state in self._devices if state.parked
        )

    def avoid_indices(self) -> frozenset[int]:
        """Replicas the router should steer around (low power headroom)."""
        threshold = self.config.route_avoid_throttle
        return frozenset(
            state.index for state in self._devices
            if not state.parked and state.throttle > threshold
        )

    def power_pressure(self) -> float:
        """Backpressure the admission layer folds in (brownout driver)."""
        cfg = self.config
        if self._high_throttle_streak >= cfg.brownout_windows:
            return min(1.0, self.throttle_ratio / cfg.brownout_throttle)
        return 0.0

    def can_power_promotion(self, active_count: int) -> bool:
        """Autoscaler feasibility: is there budget for one more active?"""
        cfg = self.config
        budget = (
            self.window_rows[-1]["budget_watts"]
            if self.window_rows else cfg.budget_at(0.0)
        )
        powered = sum(1 for state in self._devices if not state.parked)
        headroom = budget - cfg.device_idle_watts * powered
        needed = (
            (active_count + 1)
            * cfg.min_viable_fraction
            * (cfg.device_peak_watts - cfg.device_idle_watts)
        )
        return headroom >= needed

    # -- reporting ----------------------------------------------------------

    def build_report(self, served_total: int) -> dict:
        """JSON-stable power section of the fleet report."""
        cfg = self.config
        energy = sum(state.energy_joules for state in self._devices)
        windows = max(1, self.windows)
        devices = {}
        for state in self._devices:
            devices[state.name] = {
                "energy_joules": state.energy_joules,
                "mean_cap_watts": state.cap_sum_watts / windows,
                "final_cap_watts": 0.0 if state.parked else state.cap_watts,
                "mean_draw_watts": state.draw_sum_watts / windows,
                "final_throttle": 0.0 if state.parked else state.throttle,
                "throttled_windows": state.throttled_windows,
                "parked_windows": state.parked_windows,
            }
        return {
            "policy": cfg.policy,
            "budget_watts": cfg.fleet_budget_watts,
            "window_ms": cfg.window_ms,
            "windows": self.windows,
            "reapportions": self.reapportions,
            "energy_joules": energy,
            "energy_per_inference_mj": (
                energy * 1e3 / served_total if served_total else 0.0
            ),
            "mean_draw_watts": self._draw_time_sum / windows,
            "peak_draw_watts": self.peak_draw_watts,
            "min_budget_watts": self.budget_min_watts,
            "mean_throttle_ratio": self._throttle_ratio_sum / windows,
            "peak_throttle_ratio": self.peak_throttle,
            "brownout_pressure_windows": self.brownout_pressure_windows,
            "power_blocked_scaleups": self.power_blocked_scaleups,
            "parked_device_windows": sum(
                state.parked_windows for state in self._devices
            ),
            "devices": devices,
            "window_rows": self.window_rows,
        }
