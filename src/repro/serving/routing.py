"""Fleet routing fast path: O(log N) replica selection and bounded depth.

:class:`~repro.serving.fleet.FleetManager` routes every request to the
least-loaded active replica with the deterministic tie-break
``(max(free_at, now), index)`` and schedules repair probes by
``(repair_due_ns, index)``.  The original implementation rescans the full
replica list per event — O(N) per request — which caps practical fleet
size around a few hundred devices.  This module provides two
interchangeable routers behind one interface:

- :class:`ReferenceRouter` — the pinned original O(N) scans, kept
  byte-for-byte equivalent to the historical behavior.  This is the
  semantic oracle: every fast-path change must replay identically
  through it (``tests/serving/test_routing.py``).
- :class:`HeapRouter` — lazy-deletion heaps (per-entry version counters)
  keyed by the exact same tie-breaks, giving O(log N) per event.  The
  selection it makes is *provably identical* to the reference scan for
  every query the fleet issues, so whole-run reports are byte-identical.

Heap layout.  Active replicas live in two heaps anchored to a monotone
*routing clock* (the last trace arrival the fleet advanced to):

- ``idle``  — replicas with ``free_at <= clock``, keyed by ``index``.
  For these the routing key collapses to ``(now, index)``, so the
  lowest index wins — exactly the reference tie-break.
- ``busy``  — replicas with ``free_at > clock``, keyed by
  ``(free_at, index)``.

Hedged re-dispatches query at a failure time *past* the clock without
advancing it (the clock only moves at trace arrivals, which the fleet
validates as non-decreasing).  ``pick`` therefore temporarily sets aside
busy entries already free at the query time, competes them on index with
the idle pool, and restores them — the clock's busy/idle split is never
corrupted by an out-of-band query.

Every mutation of a replica's ``status``/``free_at``/``repair_due_ns``
must be followed by :meth:`FleetRouter.update`; stale heap entries are
recognized by a per-replica version counter and dropped on pop.

:class:`PrunedFinishes` replaces the unbounded sorted ``finishes`` lists
the depth-based admission layers probed with ``bisect_right``: finish
times whose ``finish <= now`` can never affect a later depth query once
query times are non-decreasing (arrival order — which both serving
layers require), so they are dropped eagerly and memory stays bounded
by the in-flight depth instead of the trace length.
"""

from __future__ import annotations

import os
from enum import Enum
from heapq import heappop, heappush

__all__ = [
    "DepthView",
    "FleetRouter",
    "HeapRouter",
    "PowerAwareRouter",
    "PrunedFinishes",
    "ReferenceRouter",
    "ReplicaStatus",
    "ROUTING_ENV_VAR",
    "make_router",
    "resolve_routing",
]

ROUTING_ENV_VAR = "REPRO_FLEET_ROUTING"
"""Environment override for the fleet routing implementation."""

_ROUTINGS = ("heap", "reference")


class ReplicaStatus(str, Enum):
    """Lifecycle state of one fleet replica (see docs/robustness.md)."""

    ACTIVE = "active"
    """In the routing pool, taking traffic."""
    STANDBY = "standby"
    """Healthy hot spare, promoted when an active replica quarantines."""
    QUARANTINED = "quarantined"
    """Drained after consecutive fatal outcomes; repair in progress."""
    RETIRED = "retired"
    """Failed ``max_repair_attempts`` probes; permanently out."""


def resolve_routing(routing: str | None = None) -> str:
    """Pick the routing implementation: explicit arg > env > ``"heap"``."""
    if routing is None:
        routing = os.environ.get(ROUTING_ENV_VAR) or "heap"
    if routing not in _ROUTINGS:
        raise ValueError(
            f"unknown fleet routing {routing!r}; expected one of {_ROUTINGS}"
        )
    return routing


def make_router(routing: str | None = None) -> "FleetRouter":
    """Build the router selected by :func:`resolve_routing`."""
    routing = resolve_routing(routing)
    return HeapRouter() if routing == "heap" else ReferenceRouter()


class FleetRouter:
    """Replica-selection state machine shared by both implementations.

    The fleet calls :meth:`rebuild` once per run (after its reset),
    :meth:`advance` once per trace arrival, and :meth:`update` after any
    replica mutation; every query below must return exactly what the
    reference O(N) scan would.
    """

    name = "base"

    def rebuild(self, replicas: list) -> None:
        raise NotImplementedError

    def advance(self, now: float) -> None:
        """Move the routing clock to ``now`` (a trace arrival)."""

    def update(self, replica) -> None:
        """Re-sync one replica after a status/free_at/repair_due change."""

    def pick(self, now: float, excluded=frozenset()):
        """Least-loaded active replica at ``now``: the unique minimizer of
        ``(max(free_at, now), index)`` outside ``excluded`` (a set of
        replica indexes), or ``None`` when no candidate exists."""
        raise NotImplementedError

    def earliest_start(self, now: float) -> float:
        """``min(max(free_at, now))`` over active replicas (>= 1 active)."""
        raise NotImplementedError

    def active_count(self) -> int:
        raise NotImplementedError

    def standby(self):
        """Lowest-index standby replica, or ``None``."""
        raise NotImplementedError

    def drain_victim(self):
        """Highest-index active replica (autoscale drain), or ``None``."""
        raise NotImplementedError

    def due_repair(self, now: float | None = None):
        """Earliest ``(repair_due_ns, index)`` quarantined replica with a
        scheduled probe; bounded by ``due <= now`` unless ``now`` is
        ``None``.  Returns ``None`` when nothing qualifies.  The caller
        must probe the returned replica and :meth:`update` it."""
        raise NotImplementedError


class ReferenceRouter(FleetRouter):
    """The pinned original O(N) scans — the semantic oracle.

    Do not optimize this class: its value is being obviously identical
    to the historical ``min()``/list-scan routing so the heap path can
    be byte-compared against it.
    """

    name = "reference"

    def rebuild(self, replicas: list) -> None:
        self._replicas = replicas

    def _active(self) -> list:
        return [
            replica for replica in self._replicas
            if replica.status is ReplicaStatus.ACTIVE
        ]

    def pick(self, now: float, excluded=frozenset()):
        candidates = [
            replica for replica in self._active()
            if replica.index not in excluded
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda r: (max(r.free_at, now), r.index),
        )

    def earliest_start(self, now: float) -> float:
        return min(
            max(replica.free_at, now) for replica in self._active()
        )

    def active_count(self) -> int:
        return len(self._active())

    def standby(self):
        for replica in self._replicas:
            if replica.status is ReplicaStatus.STANDBY:
                return replica
        return None

    def drain_victim(self):
        active = self._active()
        if not active:
            return None
        return max(active, key=lambda replica: replica.index)

    def due_repair(self, now: float | None = None):
        due = [
            replica for replica in self._replicas
            if replica.status is ReplicaStatus.QUARANTINED
            and replica.repair_due_ns is not None
            and (now is None or replica.repair_due_ns <= now)
        ]
        if not due:
            return None
        return min(due, key=lambda r: (r.repair_due_ns, r.index))


class HeapRouter(FleetRouter):
    """Lazy-deletion heaps with the reference tie-breaks — O(log N)."""

    name = "heap"

    def rebuild(self, replicas: list) -> None:
        self._replicas = replicas
        n = len(replicas)
        self._ver = [0] * n
        self._status: list[ReplicaStatus | None] = [None] * n
        self._clock = 0.0
        self._idle: list[tuple[int, int]] = []
        self._busy: list[tuple[float, int, int]] = []
        self._standby_heap: list[tuple[int, int]] = []
        self._active_hi: list[tuple[int, int]] = []
        self._repair: list[tuple[float, int, int]] = []
        self._n_active = 0
        for replica in replicas:
            self.update(replica)

    def update(self, replica) -> None:
        index = replica.index
        self._ver[index] += 1
        version = self._ver[index]
        status = replica.status
        previous = self._status[index]
        if previous is not status:
            if previous is ReplicaStatus.ACTIVE:
                self._n_active -= 1
            if status is ReplicaStatus.ACTIVE:
                self._n_active += 1
            self._status[index] = status
        if status is ReplicaStatus.ACTIVE:
            if replica.free_at > self._clock:
                heappush(self._busy, (replica.free_at, index, version))
            else:
                heappush(self._idle, (index, version))
            heappush(self._active_hi, (-index, version))
        elif status is ReplicaStatus.STANDBY:
            heappush(self._standby_heap, (index, version))
        elif (
            status is ReplicaStatus.QUARANTINED
            and replica.repair_due_ns is not None
        ):
            heappush(
                self._repair, (replica.repair_due_ns, index, version)
            )

    def _live(self, index: int, version: int, status: ReplicaStatus) -> bool:
        return version == self._ver[index] and self._status[index] is status

    def advance(self, now: float) -> None:
        if now < self._clock:
            return
        self._clock = now
        busy, idle = self._busy, self._idle
        while busy and busy[0][0] <= now:
            _free_at, index, version = heappop(busy)
            if self._live(index, version, ReplicaStatus.ACTIVE):
                heappush(idle, (index, version))

    def pick(self, now: float, excluded=frozenset()):
        busy, idle = self._busy, self._idle
        # Busy entries already free at `now` (only possible for hedge
        # queries past the clock): set them aside, compete on index.
        ready_aside: list[tuple[float, int, int]] = []
        while busy:
            free_at, index, version = busy[0]
            if free_at > now:
                break
            heappop(busy)
            if self._live(index, version, ReplicaStatus.ACTIVE):
                ready_aside.append((free_at, index, version))
        idle_aside: list[tuple[int, int]] = []
        idle_top: int | None = None
        while idle:
            index, version = idle[0]
            if not self._live(index, version, ReplicaStatus.ACTIVE):
                heappop(idle)
                continue
            if index in excluded:
                idle_aside.append(heappop(idle))
                continue
            idle_top = index
            break
        ready = [
            entry[1] for entry in ready_aside if entry[1] not in excluded
        ]
        if idle_top is not None:
            ready.append(idle_top)
        choice: int | None = None
        if ready:
            # Everyone here starts at `now`; the reference key collapses
            # to (now, index), so the lowest index wins.
            choice = min(ready)
        else:
            busy_aside: list[tuple[float, int, int]] = []
            while busy:
                free_at, index, version = busy[0]
                if not self._live(index, version, ReplicaStatus.ACTIVE):
                    heappop(busy)
                    continue
                if index in excluded:
                    busy_aside.append(heappop(busy))
                    continue
                choice = index
                break
            for entry in busy_aside:
                heappush(busy, entry)
        for entry in ready_aside:
            heappush(busy, entry)
        for entry in idle_aside:
            heappush(idle, entry)
        return self._replicas[choice] if choice is not None else None

    def earliest_start(self, now: float) -> float:
        idle = self._idle
        while idle:
            index, version = idle[0]
            if self._live(index, version, ReplicaStatus.ACTIVE):
                return now
            heappop(idle)
        busy = self._busy
        while busy:
            free_at, index, version = busy[0]
            if self._live(index, version, ReplicaStatus.ACTIVE):
                # If any active replica is free by `now` the minimum is
                # `now`; the busy top has the smallest free_at, so the
                # max() collapses both cases.
                return max(free_at, now)
            heappop(busy)
        return now

    def active_count(self) -> int:
        return self._n_active

    def standby(self):
        heap = self._standby_heap
        while heap:
            index, version = heap[0]
            if self._live(index, version, ReplicaStatus.STANDBY):
                return self._replicas[index]
            heappop(heap)
        return None

    def drain_victim(self):
        heap = self._active_hi
        while heap:
            neg_index, version = heap[0]
            if self._live(-neg_index, version, ReplicaStatus.ACTIVE):
                return self._replicas[-neg_index]
            heappop(heap)
        return None

    def due_repair(self, now: float | None = None):
        heap = self._repair
        while heap:
            due, index, version = heap[0]
            if not self._live(index, version, ReplicaStatus.QUARANTINED):
                heappop(heap)
                continue
            if now is not None and due > now:
                return None
            # Physically consumed: the caller probes the replica and the
            # follow-up update() pushes whatever schedule comes next.
            heappop(heap)
            return self._replicas[index]
        return None


class PowerAwareRouter(FleetRouter):
    """Power-headroom-aware wrapper over either base router.

    The fleet power governor publishes two index sets after every
    governor window:

    - ``parked`` — devices the budget cannot power at all.  A **hard**
      exclusion: parked replicas never take traffic, exactly like an
      excluded hedge target.
    - ``avoid`` — powered devices throttled past the configured
      headroom threshold.  A **soft** penalty on the routing score: the
      pick first competes only unavoided replicas, and falls back to the
      full (non-parked) pool when nothing else is available — a heavily
      capped fleet degrades instead of refusing traffic.

    Everything else — clocks, depth queries, lifecycle heaps — delegates
    to the wrapped router, so the wrapper preserves the reference/heap
    byte-identity contract within each preference tier.
    ``earliest_start`` stays the inner router's answer (the admission
    wait prediction ignores the soft preference; documented in
    docs/power.md).
    """

    name = "power-aware"

    def __init__(self, inner: FleetRouter) -> None:
        self.inner = inner
        self.avoid: frozenset[int] = frozenset()
        self.parked: frozenset[int] = frozenset()

    def set_power_sets(
        self, avoid: frozenset[int], parked: frozenset[int]
    ) -> None:
        self.avoid = avoid
        self.parked = parked

    def rebuild(self, replicas: list) -> None:
        self.avoid = frozenset()
        self.parked = frozenset()
        self.inner.rebuild(replicas)

    def advance(self, now: float) -> None:
        self.inner.advance(now)

    def update(self, replica) -> None:
        self.inner.update(replica)

    def pick(self, now: float, excluded=frozenset()):
        hard = excluded | self.parked if self.parked else excluded
        if self.avoid:
            preferred = self.inner.pick(now, hard | self.avoid)
            if preferred is not None:
                return preferred
        return self.inner.pick(now, hard)

    def earliest_start(self, now: float) -> float:
        return self.inner.earliest_start(now)

    def active_count(self) -> int:
        return self.inner.active_count()

    def standby(self):
        return self.inner.standby()

    def drain_victim(self):
        return self.inner.drain_victim()

    def due_repair(self, now: float | None = None):
        return self.inner.due_repair(now)


class PrunedFinishes:
    """Finish-time multiset answering bounded depth queries.

    Replaces the sorted ``finishes`` list + ``bisect_right`` pattern:
    ``depth(now)`` is the number of recorded finish times strictly after
    ``now``.  Query times must be non-decreasing (the serving layers
    query at trace arrivals, which are validated/assumed time-ordered);
    under that contract entries with ``finish <= now`` can never affect
    a later query and are dropped, so the structure holds only the
    in-flight tail instead of the whole trace history.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[float] = []

    def push(self, finish: float) -> None:
        heappush(self._heap, finish)

    def depth(self, now: float) -> int:
        heap = self._heap
        while heap and heap[0] <= now:
            heappop(heap)
        return len(heap)

    def __len__(self) -> int:
        return len(self._heap)


class DepthView:
    """Lazy per-class depth mapping over :class:`PrunedFinishes`.

    Duck-types the ``depths.get(name, default)`` reads the admission
    controller performs, computing each class's depth only when asked —
    the fleet no longer rebuilds a full depth dict per arrival/tick.
    """

    __slots__ = ("_finishes", "_now")

    def __init__(self, finishes: dict[str, PrunedFinishes], now: float) -> None:
        self._finishes = finishes
        self._now = now

    def get(self, name: str, default: int = 0) -> int:
        entry = self._finishes.get(name)
        if entry is None:
            return default
        return entry.depth(self._now)
