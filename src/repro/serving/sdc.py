"""Fleet-level silent-data-corruption defense: detect, audit, contain.

A fleet that trusts every launch result unconditionally serves whatever
a defective core computes. This module adds the three detection layers
hyperscalers run against silent data corruption (SDC), composed into
:class:`~repro.serving.fleet.FleetManager`:

- **ABFT result checking** (``abft``): every served result is checksum-
  verified (see :mod:`repro.engines.abft` for the math). ``strict`` mode
  (row + column checksums) catches every modelled corruption; ``probe``
  mode (Freivalds) is cheaper and catches a configurable
  ``probe_coverage`` fraction. A detection re-executes the request —
  sharing the RAS retry budget, so a persistently corrupting replica
  escalates to a fatal outcome and the existing quarantine machinery.
- **Golden-vector screening** (``screen_interval_ms``): on a cadence,
  idle replicas run ``screen_vectors`` known-input launches whose output
  digests are pinned; any mismatch is a detection. Screens are how a
  fleet finds defective cores that corrupt *rarely* or only off the
  serving path.
- **Sampled dual-execution audit** (``audit_fraction``): a fraction of
  served batches re-runs on a second replica; digest disagreement
  convicts the corrupting side.

Detections feed **containment**: suspected replicas are routed around
(:class:`SdcAwareRouter`), repeat detections quarantine the replica
(through the fleet's normal quarantine -> repair -> reintegrate
lifecycle, where repair probes now include a corruption screen), and
persistent offenders retire.

Every stochastic draw comes from dedicated seed-derived streams
(``sdc:<replica>``, ``screen:<replica>``, ``audit`` — see
:mod:`repro.seeding`), never from the serving streams, so attaching the
tracker with all-zero silent rates leaves request outcomes untouched and
a fleet with no :class:`SdcConfig` at all is byte-identical to a build
without this module.

Accounting is a conserved ledger: every injected corruption event lands
in exactly one bucket — ``detected[abft]``, ``detected[audit]``,
``detected[screen]``, or ``served_corrupted``. A screen that later
convicts a replica resolves previously *served* events for detection-
latency reporting, but never moves them out of the served bucket: a
corrupted answer that reached a client stays counted against the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ReproRuntimeError
from repro.faults.schedule import FaultSchedule
from repro.seeding import derive_rng
from repro.serving.routing import FleetRouter

__all__ = ["SdcAwareRouter", "SdcConfig", "SdcTracker"]

ABFT_MODES = ("off", "probe", "strict")
DETECTION_METHODS = ("abft", "audit", "screen")


@dataclass(frozen=True)
class SdcConfig:
    """Detection + containment policy for silent data corruption."""

    abft: str = "off"
    """Result-checking mode applied to every served batch: ``off`` (no
    checking — corrupted results are served), ``probe`` (Freivalds,
    cheap, ``probe_coverage`` detection), ``strict`` (full row+column
    checksums, catches every modelled corruption)."""
    probe_coverage: float = 0.95
    """Probability probe-mode ABFT catches one corrupted result."""
    abft_overhead: float = 1.0
    """Service-time multiplier the checked path costs (>= 1). Calibrate
    from the ``serving.sdc_overhead`` bench row; 1.0 models checksum
    work hidden under the memory-bound phases."""
    screen_interval_ms: float | None = None
    """Golden-vector screen cadence over idle replicas (None = no
    screener)."""
    screen_vectors: int = 4
    """Golden test vectors per screened replica per cadence tick."""
    screen_cost_ms: float = 2.0
    """Replica occupancy of one screen (all vectors)."""
    audit_fraction: float = 0.0
    """Fraction of served batches re-executed on a second replica."""
    quarantine_threshold: int = 2
    """Detections on one replica (since its last clean screen or
    repair) that quarantine it."""
    retire_after: int = 6
    """Lifetime detections on one replica that retire it outright —
    the repeat-offender policy."""

    def __post_init__(self) -> None:
        def reject(message: str) -> None:
            raise ReproRuntimeError(f"SdcConfig: {message}")

        if self.abft not in ABFT_MODES:
            reject(f"abft must be one of {ABFT_MODES}, got {self.abft!r}")
        if not 0.0 <= self.probe_coverage <= 1.0:
            reject(f"probe_coverage must be in [0, 1], got {self.probe_coverage}")
        if self.abft_overhead < 1.0:
            reject(f"abft_overhead must be >= 1, got {self.abft_overhead}")
        if self.screen_interval_ms is not None and self.screen_interval_ms <= 0:
            reject(
                f"screen_interval_ms must be > 0, got {self.screen_interval_ms}"
            )
        if self.screen_vectors < 1:
            reject(f"screen_vectors must be >= 1, got {self.screen_vectors}")
        if self.screen_cost_ms < 0:
            reject(f"screen_cost_ms must be >= 0, got {self.screen_cost_ms}")
        if not 0.0 <= self.audit_fraction <= 1.0:
            reject(f"audit_fraction must be in [0, 1], got {self.audit_fraction}")
        if self.quarantine_threshold < 1:
            reject(
                f"quarantine_threshold must be >= 1, "
                f"got {self.quarantine_threshold}"
            )
        if self.retire_after < 1:
            reject(f"retire_after must be >= 1, got {self.retire_after}")

    @property
    def checking(self) -> bool:
        return self.abft != "off"


@dataclass
class _ReplicaLedger:
    """Per-replica SDC bookkeeping for one run."""

    lifetime: int = 0
    """Detections attributed to this replica over the whole run."""
    consecutive: int = 0
    """Detections since the last clean screen / successful repair."""
    served: int = 0
    """Corruption events this replica served undetected."""


class SdcTracker:
    """Per-run SDC state machine the fleet drives.

    Built fresh at the top of every :meth:`FleetManager.run` (stream
    positions restart with the run, like every other fleet RNG), it owns
    the corruption draws, the detection ledger, and the containment
    directives; the fleet applies directives because it owns the router,
    the event log and the lifecycle counters.
    """

    def __init__(
        self,
        config: SdcConfig,
        seed: int,
        schedule: FaultSchedule,
        replica_names: list[str],
        events_per_request: int,
    ) -> None:
        self.config = config
        self.schedule = schedule
        self.events_per_request = max(1, events_per_request)
        self._rng_sdc = {
            name: derive_rng(seed, "sdc", name) for name in replica_names
        }
        self._rng_screen = {
            name: derive_rng(seed, "screen", name) for name in replica_names
        }
        self._rng_audit = derive_rng(seed, "audit")
        self.injected = 0
        self.detected = {method: 0 for method in DETECTION_METHODS}
        self.served_corrupted = 0
        self.screens_run = 0
        self.screen_detections = 0
        self.audits_run = 0
        self.audit_detections = 0
        self.sdc_quarantines = 0
        self.sdc_retirements = 0
        self.latencies_ms: list[float] = []
        """Injection-to-detection latency of every *caught* event."""
        self.resolution_latencies_ms: list[float] = []
        """Serve-to-conviction latency of served events a later screen
        attributed — diagnostics for the undefended configurations."""
        self._ledgers: dict[int, _ReplicaLedger] = {}
        self._suspected: set[int] = set()
        self._pending_served: list[tuple[int, float]] = []
        self._actions: list[tuple[int, str]] = []

    # -- draws ----------------------------------------------------------------

    def _p_events(self, rate: float, events: int) -> float:
        return 1.0 - (1.0 - rate) ** events

    def attempt_corrupted(
        self, name: str, index: int, time_ns: float, events: int
    ) -> bool:
        """Did a silent corruption land in this service attempt?

        Drawn from the replica's dedicated ``sdc`` stream; a zero
        effective rate consumes no randomness, so quiet schedules leave
        every stream untouched.
        """
        rate = self.schedule.silent_rate_at(time_ns, index)
        if rate <= 0.0:
            return False
        if self._rng_sdc[name].random() < self._p_events(rate, events):
            self.injected += 1
            return True
        return False

    def abft_detects(self, name: str) -> bool:
        """Does result checking catch one corrupted result?

        ``strict`` consumes no randomness (it always catches the
        modelled above-tolerance corruptions); ``probe`` draws its
        coverage from the replica's ``sdc`` stream."""
        mode = self.config.abft
        if mode == "strict":
            return True
        if mode == "probe":
            coverage = self.config.probe_coverage
            return coverage > 0.0 and self._rng_sdc[name].random() < coverage
        return False

    def audit_selected(self) -> bool:
        """Is this served batch sampled for dual-execution audit?"""
        fraction = self.config.audit_fraction
        return fraction > 0.0 and self._rng_audit.random() < fraction

    def audit_secondary_corrupted(self, index: int, time_ns: float) -> bool:
        """Did the audit's second execution itself corrupt?

        Drawn from the fleet-level ``audit`` stream (not the secondary's
        serving or sdc streams), so audit load never shifts the primary
        corruption sequence."""
        rate = self.schedule.silent_rate_at(time_ns, index)
        if rate <= 0.0:
            return False
        if self._rng_audit.random() < self._p_events(
            rate, self.events_per_request
        ):
            self.injected += 1
            return True
        return False

    # -- ledger ---------------------------------------------------------------

    def _ledger(self, index: int) -> _ReplicaLedger:
        ledger = self._ledgers.get(index)
        if ledger is None:
            ledger = self._ledgers[index] = _ReplicaLedger()
        return ledger

    def note_detection(
        self, index: int, method: str, latency_ms: float = 0.0
    ) -> None:
        """One caught corruption event: bucket it and queue containment."""
        self.detected[method] += 1
        if method == "screen":
            self.screen_detections += 1
        elif method == "audit":
            self.audit_detections += 1
        self.latencies_ms.append(latency_ms)
        ledger = self._ledger(index)
        ledger.lifetime += 1
        ledger.consecutive += 1
        self._suspected.add(index)
        if ledger.lifetime >= self.config.retire_after:
            self._actions.append((index, "retire"))
        elif ledger.consecutive >= self.config.quarantine_threshold:
            self._actions.append((index, "quarantine"))

    def note_served(self, index: int, time_ns: float) -> None:
        """One corruption event reached a client undetected."""
        self.served_corrupted += 1
        self._ledger(index).served += 1
        self._pending_served.append((index, time_ns))

    def screen_replica(self, name: str, index: int, now_ns: float) -> int:
        """Run one golden-vector screen; returns corrupted-vector count.

        Each vector is its own potential corruption event (golden
        outputs are pinned digests, so a corrupt vector is always a
        detection). A fully clean screen *clears* the replica: its
        consecutive-detection count resets and routing stops avoiding
        it. A dirty screen also convicts this replica for every
        corrupted result it previously served (detection-latency
        resolution — the served bucket is not revised).
        """
        rng = self._rng_screen[name]
        rate = self.schedule.silent_rate_at(now_ns, index)
        p_vector = self._p_events(rate, self.events_per_request)
        corrupted = 0
        for _vector in range(self.config.screen_vectors):
            if p_vector > 0.0 and rng.random() < p_vector:
                corrupted += 1
                self.injected += 1
                self.note_detection(index, "screen", latency_ms=0.0)
        self.screens_run += 1
        if corrupted:
            kept: list[tuple[int, float]] = []
            for held_index, served_ns in self._pending_served:
                if held_index == index:
                    self.resolution_latencies_ms.append(
                        (now_ns - served_ns) / 1e6
                    )
                else:
                    kept.append((held_index, served_ns))
            self._pending_served = kept
        else:
            self.clear(index)
        return corrupted

    def note_probe_screen_detection(self, index: int) -> None:
        """A repair probe's corruption screen caught the board mid-repair."""
        self.injected += 1
        self.note_detection(index, "screen", latency_ms=0.0)

    def clear(self, index: int) -> None:
        """A clean screen or successful repair: stop avoiding the replica."""
        self._ledger(index).consecutive = 0
        self._suspected.discard(index)

    def take_actions(self) -> list[tuple[int, str]]:
        """Drain queued containment directives (``quarantine``/``retire``)."""
        actions, self._actions = self._actions, []
        return actions

    def suspected_frozen(self) -> frozenset[int]:
        return frozenset(self._suspected)

    def service_multiplier(self) -> float:
        """Service-time stretch of the attached result-checking mode."""
        return self.config.abft_overhead if self.config.checking else 1.0

    # -- reporting ------------------------------------------------------------

    @property
    def max_detection_latency_ms(self) -> float:
        return max(self.latencies_ms, default=0.0)

    def build_section(self) -> dict:
        """The ``sdc`` section of the fleet report (JSON-stable)."""
        total_detected = sum(self.detected.values())
        return {
            "abft_mode": self.config.abft,
            "injected": self.injected,
            "detected": {
                method: self.detected[method]
                for method in DETECTION_METHODS
            },
            "detected_total": total_detected,
            "served_corrupted": self.served_corrupted,
            "screens_run": self.screens_run,
            "screen_detections": self.screen_detections,
            "audits_run": self.audits_run,
            "audit_detections": self.audit_detections,
            "quarantines": self.sdc_quarantines,
            "retirements": self.sdc_retirements,
            "max_detection_latency_ms": self.max_detection_latency_ms,
            "max_resolution_latency_ms": max(
                self.resolution_latencies_ms, default=0.0
            ),
            "suspected_final": sorted(self._suspected),
            "devices": {
                f"r{index}": {
                    "detections": ledger.lifetime,
                    "served_corrupted": ledger.served,
                }
                for index, ledger in sorted(self._ledgers.items())
            },
        }


class SdcAwareRouter(FleetRouter):
    """Corruption-suspicion-aware wrapper over any fleet router.

    Suspected replicas (>= 1 undisputed detection since their last clean
    screen) are a **soft** avoidance: the pick first competes the
    unsuspected pool and falls back to everyone when nothing else is
    available — a fleet where every replica is suspect still serves
    (the chaos invariants then count on ABFT to keep results clean).
    Mirrors :class:`~repro.serving.routing.PowerAwareRouter`, and
    composes outside it (power hard-exclusions apply first).
    """

    name = "sdc-aware"

    def __init__(self, inner: FleetRouter) -> None:
        self.inner = inner
        self.suspected: frozenset[int] = frozenset()

    def set_suspected(self, suspected: frozenset[int]) -> None:
        self.suspected = suspected

    def set_power_sets(self, avoid, parked) -> None:
        self.inner.set_power_sets(avoid, parked)

    def rebuild(self, replicas: list) -> None:
        self.suspected = frozenset()
        self.inner.rebuild(replicas)

    def advance(self, now: float) -> None:
        self.inner.advance(now)

    def update(self, replica) -> None:
        self.inner.update(replica)

    def pick(self, now: float, excluded=frozenset()):
        if self.suspected:
            preferred = self.inner.pick(now, excluded | self.suspected)
            if preferred is not None:
                return preferred
        return self.inner.pick(now, excluded)

    def earliest_start(self, now: float) -> float:
        return self.inner.earliest_start(now)

    def active_count(self) -> int:
        return self.inner.active_count()

    def standby(self):
        return self.inner.standby()

    def drain_victim(self):
        return self.inner.drain_victim()

    def due_repair(self, now: float | None = None):
        return self.inner.due_repair(now)
