"""Inference-server simulation: queueing + batching over processing groups.

Implements the paper's §IV-E serving story quantitatively:

- each tenant owns an **isolated slice** of processing groups (Fig. 7);
  its requests queue only behind its own traffic;
- alternatively, a **shared** deployment funnels every tenant through one
  queue over the whole chip — the interference case isolation prevents
  ("isolated hardware resources prevent interference among each other,
  system throughput is increased without compromising inference latency");
- dynamic batching: requests waiting in a queue coalesce up to
  ``max_batch``, with sub-linear batch service times taken from the i20's
  calibrated utilization-vs-batch curve — in shared mode, same-tenant
  waiting requests coalesce the same way, so the isolated-vs-shared
  comparison isolates the queueing policy rather than loss of batching.

Service times come from one measured executor run per (model, groups)
configuration, so the queueing layer stays fast while staying anchored to
the detailed simulator.

RAS layer (reliability/availability/serviceability)
---------------------------------------------------

A server built with a :class:`~repro.faults.FaultPlan` replays the fault
campaign at request granularity: each service attempt draws transient
(DMA corruption, correctable ECC) and fatal (DMA abort, uncorrectable
ECC, core hang) faults from a deterministic per-run RNG, at the plan's
per-event rates compounded over ``RasConfig.transfers_per_request``
hardware events per inference. The server *survives* them:

- **retry with backoff** — a transiently-faulted batch replays up to
  ``max_retries`` times, each attempt paying the full service time plus
  exponential backoff;
- **admission control** — a request arriving to a tenant queue deeper
  than ``queue_depth_limit`` is shed immediately instead of waiting;
- **circuit breaker** — fatal faults are attributed to a processing
  group of the tenant's slice; ``breaker_threshold`` consecutive
  failures trip the breaker and the slice degrades to fewer groups with
  the correspondingly longer calibrated service time;
- **observability** — :class:`TenantReport` accounts every ``failed``,
  ``retried``, ``shed`` and ``degraded`` request next to the latency
  percentiles.

With no fault plan, every number is bit-identical to the fault-free
server.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.caching import MEASUREMENT_CACHE, MeasurementCache
from repro.core.accelerator import Accelerator
from repro.core.errors import ReproRuntimeError
from repro.faults.plan import FaultPlan
from repro.models.zoo import build
from repro.perfmodel.calibration import calibration
from repro.runtime.runtime import Device
from repro.seeding import derive_rng
from repro.serving.routing import DepthView, PrunedFinishes
from repro.serving.workload import Request


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's deployment: model + slice size + SLA + batching."""

    name: str
    model: str
    groups: int
    max_batch: int = 1
    sla_ms: float | None = None
    coalesce_window_ms: float = 0.0
    """Continuous batching: a dispatching batch keeps admitting requests
    arriving up to this long after its nominal start (until ``max_batch``)
    instead of closing at a fixed boundary. 0 keeps the legacy
    waiting-requests-only batching bit-identically."""

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.coalesce_window_ms < 0:
            raise ValueError(
                f"coalesce_window_ms must be >= 0, "
                f"got {self.coalesce_window_ms}"
            )


@dataclass(frozen=True)
class RasConfig:
    """Reliability policy knobs for one :class:`InferenceServer`.

    Every field is validated at construction; a bad knob raises
    :class:`~repro.core.errors.ReproRuntimeError` naming the field and the
    offending value — a misconfigured reliability policy should fail the
    deployment loudly, not silently serve with nonsense retry math.
    """

    max_retries: int = 2
    """Service replays of a transiently-faulted batch before giving up."""
    retry_backoff_ms: float = 0.1
    """First retry backoff; grows by ``backoff_factor`` per attempt."""
    backoff_factor: float = 2.0
    """Multiplier applied to the backoff after each retry (>= 1)."""
    queue_depth_limit: int | None = None
    """Admission control: shed arrivals beyond this per-tenant depth."""
    breaker_threshold: int = 3
    """Consecutive fatal faults on one group that trip its breaker."""
    min_groups: int = 1
    """Degradation floor: a tenant never drops below this many groups."""
    transfers_per_request: int = 16
    """Hardware fault events one inference is exposed to (per sample)."""
    deadline_ms: float | None = None
    """Per-request completion deadline: a request finishing (queue +
    service + retries) past this counts as ``failed``, mirroring a
    client-side timeout. ``None`` disables the check."""

    def __post_init__(self) -> None:
        def reject(message: str) -> None:
            raise ReproRuntimeError(f"RasConfig: {message}")

        if self.max_retries < 0:
            reject(
                f"max_retries must be >= 0 (0 disables retries), "
                f"got {self.max_retries}"
            )
        if self.retry_backoff_ms < 0:
            reject(
                f"retry_backoff_ms must be >= 0, got {self.retry_backoff_ms}"
            )
        if self.backoff_factor < 1.0:
            reject(
                f"backoff_factor must be >= 1 (backoff never shrinks), "
                f"got {self.backoff_factor}"
            )
        if self.queue_depth_limit is not None and self.queue_depth_limit < 1:
            reject(
                f"queue_depth_limit must be >= 1 or None, "
                f"got {self.queue_depth_limit}"
            )
        if self.breaker_threshold < 1:
            reject(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.min_groups < 1:
            reject(f"min_groups must be >= 1, got {self.min_groups}")
        if self.transfers_per_request < 1:
            reject(
                f"transfers_per_request must be >= 1, "
                f"got {self.transfers_per_request}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            reject(
                f"deadline_ms must be > 0 or None, got {self.deadline_ms}"
            )


class TenantHealth:
    """Per-group failure tracking + circuit breaker for one tenant slice."""

    def __init__(self, groups: int, threshold: int, min_groups: int) -> None:
        self.configured = groups
        self.available = groups
        self.threshold = threshold
        self.min_groups = min(min_groups, groups)
        self.breaker_trips = 0
        self._failures = [0] * groups  # consecutive faults per live group

    @property
    def degraded(self) -> bool:
        return self.available < self.configured

    def record_success(self) -> None:
        """A clean service clears every live group's failure streak."""
        for slot in range(len(self._failures)):
            self._failures[slot] = 0

    def record_failure(self, slot: int) -> bool:
        """Attribute one fatal fault; returns True when the breaker trips
        and the slice degrades (the failed group is routed around)."""
        self._failures[slot] += 1
        if self._failures[slot] >= self.threshold and self.available > self.min_groups:
            self.available -= 1
            self.breaker_trips += 1
            del self._failures[slot]
            return True
        return False

    def restore_group(self) -> bool:
        """Reintegrate one routed-around group after repair.

        The repaired group rejoins with a clean failure streak; returns
        False (no-op) when the slice is already at full strength. This is
        the path fleet repair drives when a quarantined device comes back.
        """
        if self.available >= self.configured:
            return False
        self.available += 1
        self._failures.append(0)
        return True

    def reset(self) -> None:
        """Full circuit-breaker reset: all groups live, streaks cleared.

        ``breaker_trips`` is cumulative history and survives the reset.
        """
        self.available = self.configured
        self._failures = [0] * self.configured


@dataclass
class CompletedRequest:
    """Outcome of one request."""

    request: Request
    start_ns: float
    finish_ns: float
    batch_size: int
    status: str = "ok"
    """'ok' or 'failed' (fatal fault / retries exhausted)."""
    retries: int = 0
    """Service replays this request's batch needed."""
    degraded: bool = False
    """Served on a circuit-breaker-degraded group slice."""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def latency_ms(self) -> float:
        return (self.finish_ns - self.request.arrival_ns) / 1e6

    @property
    def queue_ms(self) -> float:
        return (self.start_ns - self.request.arrival_ns) / 1e6


@dataclass
class SloClassStats:
    """Per-SLO-class request accounting (shared by server and fleet).

    ``p99_ms`` is interpolated from histogram buckets via
    :meth:`~repro.obs.metrics.HistogramSeries.quantile` — the same
    estimator the autoscaler uses — so reports and control decisions
    read one number.
    """

    slo_class: str
    offered: int = 0
    served: int = 0
    failed: int = 0
    shed: int = 0
    shed_reasons: dict[str, int] = field(default_factory=dict)
    """Shed counts by reason: ``queue-full`` / ``deadline`` / ``brownout``
    / ``no-capacity``."""
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0

    def record_shed(self, reason: str) -> None:
        self.shed += 1
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1

    def shed_for(self, reason: str) -> int:
        return self.shed_reasons.get(reason, 0)

    @property
    def availability(self) -> float:
        """Served fraction of offered requests (1.0 on zero offered)."""
        if self.offered == 0:
            return 1.0
        return self.served / self.offered

    @property
    def availability_while_healthy(self) -> float:
        """Availability among arrivals that found >= 1 replica active."""
        eligible = self.offered - self.shed_for("no-capacity")
        if eligible == 0:
            return 1.0
        return self.served / eligible

    def set_percentiles(self, latencies_ms: list[float], buckets) -> None:
        """Fill p50/p95/p99 from bucket interpolation (0s when empty)."""
        from repro.obs.metrics import HistogramSeries

        if not latencies_ms:
            return
        series = HistogramSeries(tuple(buckets))
        for value in latencies_ms:
            series.observe(value)
        self.p50_ms = series.quantile(0.50)
        self.p95_ms = series.quantile(0.95)
        self.p99_ms = series.quantile(0.99)

    def to_dict(self) -> dict:
        return {
            "slo_class": self.slo_class, "offered": self.offered,
            "served": self.served, "failed": self.failed, "shed": self.shed,
            "shed_reasons": dict(sorted(self.shed_reasons.items())),
            "p50_ms": self.p50_ms, "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "availability": self.availability,
        }


@dataclass
class TenantReport:
    """Serving statistics for one tenant over a run."""

    tenant: str
    completed: int
    throughput_per_s: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_batch: float
    sla_ms: float | None
    sla_violations: int
    failed: int = 0
    """Requests lost to fatal faults or exhausted retries."""
    retried: int = 0
    """Served requests whose batch needed >= 1 service replay."""
    shed: int = 0
    """Requests dropped by admission control before service."""
    degraded: int = 0
    """Requests served while the tenant's slice was degraded."""
    shed_reasons: dict[str, int] = field(default_factory=dict)
    """Shed counts by reason (``queue-full``/``deadline``/``brownout``)."""
    by_class: dict[str, SloClassStats] = field(default_factory=dict)
    """Per-SLO-class breakdown (populated when classes are in play)."""

    @property
    def offered(self) -> int:
        """Every request the trace offered to this tenant."""
        return self.completed + self.failed + self.shed

    @property
    def sla_violation_rate(self) -> float:
        if self.completed == 0:
            return 0.0
        return self.sla_violations / self.completed

    @property
    def availability(self) -> float:
        """Fraction of offered requests that completed successfully."""
        if self.offered == 0:
            return 1.0
        return self.completed / self.offered


class NoHealthyGroupsError(ReproRuntimeError):
    """A service time was requested for a slice with no live groups."""


def measure_service_time_ns(
    model: str,
    groups: int,
    obs=None,
    fault_plan: FaultPlan | None = None,
    use_cache: bool = True,
) -> float:
    """One detailed-simulator run: the per-inference service time.

    With an :class:`~repro.obs.Observability` hub the measurement opens a
    serving-layer ``measure:<model>x<groups>`` span whose TraceContext the
    launch (and through it the executor, simulator and fault injector)
    parents on — the full cross-layer thread of one inference. An optional
    ``fault_plan`` attaches a hardware-level injector to the measurement
    accelerator so fault events appear on the same timeline; keep its
    fatal rates at zero or the measurement launch itself may fail.

    Plain measurements (no hub, no fault plan) are memoized process-wide
    in :data:`repro.caching.MEASUREMENT_CACHE` — the simulator is
    deterministic, so re-measuring (model, groups) always reproduces the
    cached latency. Measurements with a hub or fault plan attached bypass
    the memo: their spans and fault timelines are the point of running
    them. ``use_cache=False`` bypasses the memo in both directions — the
    sharded pre-warm (:func:`repro.sim.parallel.prewarm_measurements`)
    measures in worker processes this way and seeds the parent's memo
    itself, keeping cache statistics identical to a serial run.
    """
    memoizable = use_cache and obs is None and fault_plan is None
    if memoizable:
        cached = MEASUREMENT_CACHE.get(MeasurementCache.key_for(model, groups))
        if cached is not None:
            return cached
    accelerator = Accelerator.cloudblazer_i20()
    if obs is not None:
        accelerator.attach_observability(obs)
    if fault_plan is not None:
        from repro.faults.injector import FaultInjector

        accelerator.attach_faults(FaultInjector(fault_plan))
    device = Device(accelerator)
    compiled = device.compile(build(model), batch=1)
    measure_handle = None
    if obs is not None:
        measure_handle = obs.tracer.begin(
            f"measure:{model}x{groups}", layer="serving",
            start_ns=accelerator.sim.now, track="measurement",
            model=model, groups=groups,
        )
    result = device.launch(
        compiled,
        num_groups=groups,
        trace_ctx=measure_handle.context if measure_handle else None,
    )
    if measure_handle is not None:
        measure_handle.end(accelerator.sim.now, latency_ms=result.latency_ms)
    if memoizable:
        MEASUREMENT_CACHE.put(
            MeasurementCache.key_for(model, groups), result.latency_ns
        )
    return result.latency_ns


_BATCH_SCALE_CACHE: dict[int, float] = {}


def batch_service_time_ns(base_ns: float, batch: int) -> float:
    """Sub-linear batch scaling from the i20 calibration curve.

    The curve value is memoized per batch size (it is a pure function of
    the calibration constants); the arithmetic against ``base_ns`` is
    unchanged, so results stay bit-identical.
    """
    if batch < 1:
        raise ValueError(f"batch {batch} < 1")
    scale = _BATCH_SCALE_CACHE.get(batch)
    if scale is None:
        scale = calibration("i20").batch_scale(batch)
        _BATCH_SCALE_CACHE[batch] = scale
    return base_ns * batch / scale


class InferenceServer:
    """Event-driven queueing simulation over tenant slices."""

    def __init__(
        self,
        tenants: list[TenantConfig],
        isolated: bool = True,
        service_times_ns: dict[str, float] | None = None,
        fault_plan: FaultPlan | None = None,
        ras: RasConfig | None = None,
        degraded_service_times_ns: dict[tuple[str, int], float] | None = None,
        obs=None,
        measurement_fault_plan: FaultPlan | None = None,
        admission=None,
    ) -> None:
        if not tenants:
            raise ValueError("server needs at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        self.tenants = {tenant.name: tenant for tenant in tenants}
        self.isolated = isolated
        self.fault_plan = fault_plan
        self.obs = obs
        self.measurement_fault_plan = measurement_fault_plan
        self.ras = ras or RasConfig()
        # SLO-class admission (repro.serving.admission): when a policy is
        # attached, per-class bounded queues + deadline-aware early
        # shedding + brownout supersede the flat ras.queue_depth_limit.
        self.admission = admission
        self._admission_ctl = None
        if admission is not None:
            from repro.serving.admission import AdmissionController

            self._admission_ctl = AdmissionController(admission)
        self.service_times_ns = service_times_ns or {}
        # Tenants whose base time we measured on the detailed simulator get
        # degraded-slice times measured (calibrated) too; user-provided
        # times fall back to linear scaling unless overridden explicitly.
        self._measured = {
            tenant.name
            for tenant in tenants
            if tenant.name not in self.service_times_ns
        }
        if obs is None and measurement_fault_plan is None:
            # Plain measurements are memoizable, hence independent
            # simulations: warm the memo across worker processes first
            # (bit-identical to serial — see repro.sim.parallel), then
            # the loop below is pure cache hits.
            from repro.sim.parallel import prewarm_measurements

            prewarm_measurements(
                (tenant.model, tenant.groups)
                for tenant in tenants
                if tenant.name not in self.service_times_ns
            )
        for tenant in tenants:
            if tenant.name not in self.service_times_ns:
                self.service_times_ns[tenant.name] = measure_service_time_ns(
                    tenant.model, tenant.groups,
                    obs=obs, fault_plan=measurement_fault_plan,
                )
        self._degraded_times: dict[tuple[str, int], float] = dict(
            degraded_service_times_ns or {}
        )

    @property
    def _injecting(self) -> bool:
        return self.fault_plan is not None and self.fault_plan.enabled

    # -- service-time resolution ---------------------------------------------

    def _service_time(self, tenant_name: str, groups: int) -> float:
        """Per-inference service time of ``tenant_name`` on ``groups`` groups.

        Raises :class:`NoHealthyGroupsError` for ``groups < 1`` rather than
        dividing by zero in the linear fallback (or asking the simulator
        for a zero-group launch): RAS degradation floors at ``min_groups
        >= 1``, so a zero here means the caller's slice accounting broke.
        """
        tenant = self.tenants[tenant_name]
        if groups < 1:
            raise NoHealthyGroupsError(
                f"tenant {tenant_name!r}: service time requested for "
                f"{groups} groups; a slice always keeps >= 1 healthy group"
            )
        if groups == tenant.groups:
            return self.service_times_ns[tenant_name]
        key = (tenant_name, groups)
        if key not in self._degraded_times:
            base = self.service_times_ns[tenant_name]
            if tenant_name in self._measured:
                self._degraded_times[key] = measure_service_time_ns(
                    tenant.model, groups,
                    obs=self.obs, fault_plan=self.measurement_fault_plan,
                )
            else:
                # Linear-in-groups approximation for user-supplied times.
                self._degraded_times[key] = base * tenant.groups / groups
        return self._degraded_times[key]

    # -- fault draws -----------------------------------------------------------

    def _attempt_outcome(self, rng: random.Random, batch: int) -> str:
        """Outcome of one service attempt: 'ok', 'transient' or 'fatal'."""
        plan = self.fault_plan
        events = self.ras.transfers_per_request * batch
        p_fatal = 1.0 - (1.0 - plan.fatal_event_rate) ** events
        p_transient = 1.0 - (1.0 - plan.transient_event_rate) ** events
        if p_fatal > 0.0 and rng.random() < p_fatal:
            return "fatal"
        if p_transient > 0.0 and rng.random() < p_transient:
            return "transient"
        return "ok"

    def _serve_batch(
        self,
        batch_size: int,
        start_ns: float,
        base_ns: float,
        health: TenantHealth,
        rng: random.Random,
    ) -> tuple[float, str, int]:
        """Serve one batch with RAS retries; returns (finish, status, retries).

        Each attempt pays the full batch service time; transient faults
        add exponential backoff then replay, fatal faults fail the batch
        and feed the circuit breaker.
        """
        service = batch_service_time_ns(base_ns, batch_size)
        now = start_ns
        retries = 0
        while True:
            now += service
            if not self._injecting:
                return now, "ok", retries
            outcome = self._attempt_outcome(rng, batch_size)
            if outcome == "ok":
                health.record_success()
                return now, "ok", retries
            if outcome == "fatal":
                health.record_failure(rng.randrange(health.available))
                return now, "failed", retries
            retries += 1
            if retries > self.ras.max_retries:
                return now, "failed", retries
            now += (
                self.ras.retry_backoff_ms * 1e6
                * (self.ras.backoff_factor ** (retries - 1))
            )

    def _final_status(self, status: str, request: Request, finish: float) -> str:
        """Apply the per-request deadline: late completions count failed."""
        if (
            status == "ok"
            and self.ras.deadline_ms is not None
            and (finish - request.arrival_ns) > self.ras.deadline_ms * 1e6
        ):
            return "failed"
        return status

    # -- simulation ----------------------------------------------------------

    def run(self, trace: list[Request]) -> dict[str, TenantReport]:
        """Replay the trace; returns per-tenant serving statistics.

        Isolated mode: one server (the tenant's group slice) per tenant.
        Shared mode: a single FIFO server processes everything in arrival
        order — head-of-line blocking included, though same-tenant waiting
        requests still coalesce into batches.

        Deterministic: the same trace, fault plan and RAS config always
        produce identical reports (per-run RNGs are re-seeded from the
        plan seed on every call).
        """
        if self._admission_ctl is not None:
            self._admission_ctl.reset()
        if self.isolated:
            completed: list[CompletedRequest] = []
            shed: list[tuple[Request, str]] = []
            for name in self.tenants:
                tenant_trace = [r for r in trace if r.tenant == name]
                done, dropped = self._run_single_queue(tenant_trace, name)
                completed.extend(done)
                shed.extend(dropped)
        else:
            completed, shed = self._run_shared_queue(trace)
        reports = self._report(completed, trace, shed)
        if self.obs is not None:
            self._emit_observability(completed, shed, reports)
        return reports

    # -- observability bridge -------------------------------------------------

    def _emit_observability(
        self,
        completed: list[CompletedRequest],
        shed: list[tuple[Request, str]],
        reports: dict[str, TenantReport],
    ) -> None:
        """Report the run into the attached Observability hub.

        One serving-layer span per request (children: ``queue`` + ``service``),
        one instant event per shed arrival, and the QoS accounting mirrored
        into the registry. Runs once after the queueing simulation — the
        serving numbers are bit-identical with or without a hub.
        """
        from repro.obs.metrics import DEFAULT_BUCKETS_MS

        tracer = self.obs.tracer
        metrics = self.obs.metrics
        requests_total = metrics.counter(
            "serving_requests_total", "requests by final status"
        )
        latency_hist = metrics.histogram(
            "serving_request_latency_ms", "arrival-to-finish latency",
            unit="ms", buckets=DEFAULT_BUCKETS_MS,
        )
        queue_hist = metrics.histogram(
            "serving_queue_wait_ms", "arrival-to-service wait",
            unit="ms", buckets=DEFAULT_BUCKETS_MS,
        )
        batch_hist = metrics.histogram(
            "serving_batch_size", "dynamic-batch sizes served",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        retries_total = metrics.counter(
            "serving_retries_total", "request-level RAS service replays"
        )
        degraded_total = metrics.counter(
            "serving_degraded_requests_total",
            "requests served on a degraded slice",
        )
        shed_total = metrics.counter(
            "serving_shed_total", "requests shed by admission, by reason"
        )
        class_latency = metrics.histogram(
            "serving_class_latency_ms", "per-SLO-class request latency",
            unit="ms", buckets=DEFAULT_BUCKETS_MS,
        )
        classes_in_play = self._admission_ctl is not None
        for request in sorted(completed, key=lambda c: c.request.request_id):
            tenant = request.request.tenant
            root = tracer.begin(
                f"request:{request.request.request_id}", layer="serving",
                start_ns=request.request.arrival_ns,
                track=f"tenant.{tenant}", tenant=tenant,
            )
            if request.start_ns > request.request.arrival_ns:
                tracer.add_span(
                    "queue", layer="serving",
                    start_ns=request.request.arrival_ns,
                    end_ns=request.start_ns,
                    parent=root.context, track=f"tenant.{tenant}",
                )
            tracer.add_span(
                "service", layer="serving",
                start_ns=request.start_ns, end_ns=request.finish_ns,
                parent=root.context, track=f"tenant.{tenant}",
                batch=request.batch_size, retries=request.retries,
                status=request.status, degraded=request.degraded,
            )
            root.end(
                request.finish_ns,
                status=request.status, batch=request.batch_size,
            )
            requests_total.inc(tenant=tenant, status=request.status)
            if request.ok:
                latency_hist.observe(request.latency_ms, tenant=tenant)
                queue_hist.observe(request.queue_ms, tenant=tenant)
                batch_hist.observe(request.batch_size, tenant=tenant)
                if classes_in_play:
                    class_latency.observe(
                        request.latency_ms, tenant=tenant,
                        slo_class=request.request.slo_class,
                    )
            if request.retries:
                retries_total.inc(request.retries, tenant=tenant)
            if request.degraded:
                degraded_total.inc(tenant=tenant)
        for request, reason in shed:
            tracer.add_event(
                "shed", layer="serving", time_ns=request.arrival_ns,
                track=f"tenant.{request.tenant}", tenant=request.tenant,
                reason=reason,
            )
            requests_total.inc(tenant=request.tenant, status="shed")
            shed_total.inc(
                tenant=request.tenant, slo_class=request.slo_class,
                reason=reason,
            )
        for name, report in reports.items():
            metrics.gauge(
                "serving_throughput_rps", "completed requests per second",
            ).set(report.throughput_per_s, tenant=name)
            metrics.gauge(
                "serving_p99_ms", "p99 request latency", unit="ms"
            ).set(report.p99_ms, tenant=name)
            metrics.gauge(
                "serving_availability", "completed / offered requests"
            ).set(report.availability, tenant=name)
            if report.sla_violations:
                metrics.counter(
                    "serving_sla_violations_total", "requests over SLA"
                ).inc(report.sla_violations, tenant=name)
        if self._admission_ctl is not None:
            metrics.gauge(
                "serving_brownout_level", "degradation level at run end"
            ).set(self._admission_ctl.brownout_level)
            metrics.gauge(
                "serving_backpressure_peak", "worst queue fullness seen"
            ).set(self._admission_ctl.peak_backpressure)

    def _rng(self, label: str) -> random.Random:
        """Per-tenant (or ``"shared"``) draw stream off the plan seed.

        Derived through :func:`repro.seeding.derive_rng`, whose single-label
        stream name is exactly the historical ``f"{seed}:{label}"`` key —
        existing campaigns reproduce bit-identically.
        """
        seed = self.fault_plan.seed if self.fault_plan is not None else 0
        return derive_rng(seed, label)

    def _health(self, tenant: TenantConfig) -> TenantHealth:
        return TenantHealth(
            groups=tenant.groups,
            threshold=self.ras.breaker_threshold,
            min_groups=self.ras.min_groups,
        )

    def _shed_at_arrival(
        self, request: Request, finishes: PrunedFinishes
    ) -> bool:
        """Admission control: is the queue too deep at this arrival?

        ``finishes`` holds the finish times of this tenant's scheduled
        requests still beyond a past arrival — entries the pruned
        structure has not yet dropped are requests queued or in service.
        """
        limit = self.ras.queue_depth_limit
        if limit is None:
            return False
        return finishes.depth(request.arrival_ns) >= limit

    def _admission_decision(
        self,
        head: Request,
        free_at: float,
        class_finishes: dict[str, PrunedFinishes],
        service_ns: float,
    ):
        """Class-aware admission for one arrival (policy attached only).

        The brownout level steps on every arrival from the backpressure
        signal (worst per-class queue fullness), then the class's bounded
        queue and deadline check decide the request's fate.
        """
        ctl = self._admission_ctl
        now = head.arrival_ns
        depths = DepthView(class_finishes, now)
        ctl.update(ctl.backpressure(depths))
        predicted_wait = max(0.0, free_at - now)
        return ctl.decide(
            head.slo_class, depths.get(head.slo_class, 0),
            predicted_wait, service_ns,
        )

    def _collect_batch(
        self,
        trace: list[Request],
        index: int,
        start: float,
        tenant: TenantConfig,
        served: list[bool] | None = None,
    ) -> tuple[list[Request], int]:
        """Dynamic + continuous batching from ``trace[index]`` onward.

        Requests already waiting at ``start`` join as before; with a
        ``coalesce_window_ms`` the batch stays open for late arrivals up
        to ``start + window`` (continuous batching) — still capped at
        ``max_batch`` and, when SLO classes are in play, restricted to
        the head's class so one slow batch-class batch never captures an
        interactive request. Returns the batch and the next probe index
        (single-queue mode); shared mode passes ``served`` flags instead
        and ignores the probe index.
        """
        head = trace[index]
        window_ns = tenant.coalesce_window_ms * 1e6
        horizon = start + window_ns
        batch = [head]
        probe = index + 1
        while (
            probe < len(trace)
            and len(batch) < tenant.max_batch
            and trace[probe].arrival_ns <= horizon
        ):
            candidate = trace[probe]
            eligible = (
                candidate.tenant == head.tenant
                and candidate.slo_class == head.slo_class
                and (served is None or not served[probe])
            )
            if eligible:
                batch.append(candidate)
                if served is not None:
                    served[probe] = True
            elif served is None:
                # Single-queue mode is FIFO per tenant: a non-matching
                # request closes the batch (it must be served next).
                break
            probe += 1
        return batch, probe

    def _run_single_queue(
        self, trace: list[Request], tenant_name: str
    ) -> tuple[list[CompletedRequest], list[tuple[Request, str]]]:
        tenant = self.tenants[tenant_name]
        rng = self._rng(tenant_name)
        health = self._health(tenant)
        completed: list[CompletedRequest] = []
        shed: list[tuple[Request, str]] = []
        # Bounded depth tracking: maintained only for the admission path
        # that actually reads it, pruned as arrivals move forward.
        finishes = PrunedFinishes()
        class_finishes: dict[str, PrunedFinishes] = {}
        track_finishes = (
            self._admission_ctl is None
            and self.ras.queue_depth_limit is not None
        )
        track_classes = self._admission_ctl is not None
        free_at = 0.0
        index = 0
        while index < len(trace):
            head = trace[index]
            if self._admission_ctl is not None:
                base = self._service_time(tenant_name, health.available)
                decision = self._admission_decision(
                    head, free_at, class_finishes,
                    batch_service_time_ns(base, 1),
                )
                if not decision.admitted:
                    shed.append((head, decision.reason))
                    index += 1
                    continue
            elif self._shed_at_arrival(head, finishes):
                shed.append((head, "queue-full"))
                index += 1
                continue
            start = max(head.arrival_ns, free_at)
            batch, probe = self._collect_batch(trace, index, start, tenant)
            # Continuous batching: the launch waits for its last joiner.
            start = max(start, batch[-1].arrival_ns)
            base = self._service_time(tenant_name, health.available)
            degraded = health.degraded
            finish, status, retries = self._serve_batch(
                len(batch), start, base, health, rng
            )
            for request in batch:
                completed.append(
                    CompletedRequest(
                        request=request, start_ns=start, finish_ns=finish,
                        batch_size=len(batch),
                        status=self._final_status(status, request, finish),
                        retries=retries, degraded=degraded,
                    )
                )
                if track_classes:
                    entry = class_finishes.get(request.slo_class)
                    if entry is None:
                        entry = class_finishes[request.slo_class] = (
                            PrunedFinishes()
                        )
                    entry.push(finish)
                if track_finishes:
                    finishes.push(finish)
            free_at = finish
            index = probe
        return completed, shed

    def _run_shared_queue(
        self, trace: list[Request]
    ) -> tuple[list[CompletedRequest], list[tuple[Request, str]]]:
        rng = self._rng("shared")
        healths = {
            name: self._health(tenant) for name, tenant in self.tenants.items()
        }
        finishes: dict[str, PrunedFinishes] = {
            name: PrunedFinishes() for name in self.tenants
        }
        # One shared queue → class depths aggregate across tenants.
        class_finishes: dict[str, PrunedFinishes] = {}
        track_finishes = (
            self._admission_ctl is None
            and self.ras.queue_depth_limit is not None
        )
        track_classes = self._admission_ctl is not None
        completed: list[CompletedRequest] = []
        shed: list[tuple[Request, str]] = []
        served = [False] * len(trace)
        free_at = 0.0
        for index, head in enumerate(trace):
            if served[index]:
                continue
            served[index] = True
            tenant = self.tenants[head.tenant]
            health = healths[head.tenant]
            if self._admission_ctl is not None:
                base = self._service_time(head.tenant, health.available)
                decision = self._admission_decision(
                    head, free_at, class_finishes,
                    batch_service_time_ns(base, 1),
                )
                if not decision.admitted:
                    shed.append((head, decision.reason))
                    continue
            elif self._shed_at_arrival(head, finishes[head.tenant]):
                shed.append((head, "queue-full"))
                continue
            start = max(head.arrival_ns, free_at)
            # Same-tenant requests already waiting coalesce into the batch
            # (other tenants' requests keep their place in the FIFO).
            batch, _ = self._collect_batch(trace, index, start, tenant, served)
            start = max(start, batch[-1].arrival_ns)
            base = self._service_time(head.tenant, health.available)
            degraded = health.degraded
            finish, status, retries = self._serve_batch(
                len(batch), start, base, health, rng
            )
            for request in batch:
                completed.append(
                    CompletedRequest(
                        request=request, start_ns=start, finish_ns=finish,
                        batch_size=len(batch),
                        status=self._final_status(status, request, finish),
                        retries=retries, degraded=degraded,
                    )
                )
                if track_classes:
                    entry = class_finishes.get(request.slo_class)
                    if entry is None:
                        entry = class_finishes[request.slo_class] = (
                            PrunedFinishes()
                        )
                    entry.push(finish)
                if track_finishes:
                    finishes[head.tenant].push(finish)
            free_at = finish
        return completed, shed

    # -- reporting ----------------------------------------------------------

    def _class_stats(
        self,
        mine: list[CompletedRequest],
        my_shed: list[tuple[Request, str]],
    ) -> dict[str, SloClassStats]:
        """Per-SLO-class breakdown for one tenant (empty without classes)."""
        if self._admission_ctl is None:
            return {}
        from repro.obs.metrics import DEFAULT_BUCKETS_MS

        stats: dict[str, SloClassStats] = {}

        def stat(slo_class: str) -> SloClassStats:
            if slo_class not in stats:
                stats[slo_class] = SloClassStats(slo_class=slo_class)
            return stats[slo_class]

        latencies: dict[str, list[float]] = {}
        for done in mine:
            entry = stat(done.request.slo_class)
            entry.offered += 1
            if done.ok:
                entry.served += 1
                latencies.setdefault(done.request.slo_class, []).append(
                    done.latency_ms
                )
            else:
                entry.failed += 1
        for request, reason in my_shed:
            entry = stat(request.slo_class)
            entry.offered += 1
            entry.record_shed(reason)
        for slo_class, values in latencies.items():
            stats[slo_class].set_percentiles(values, DEFAULT_BUCKETS_MS)
        return dict(sorted(stats.items()))

    def _report(
        self,
        completed: list[CompletedRequest],
        trace: list[Request],
        shed: list[tuple[Request, str]] | None = None,
    ) -> dict[str, TenantReport]:
        shed = shed or []
        # Throughput horizon: the run lasts until the last completion, not
        # the last arrival (which overstates throughput for bursty traces).
        horizon_ns = max((c.finish_ns for c in completed), default=0.0)
        if horizon_ns <= 0.0:
            horizon_ns = max((r.arrival_ns for r in trace), default=0.0) or 1.0
        reports = {}
        for name, tenant in self.tenants.items():
            mine = [c for c in completed if c.request.tenant == name]
            ok = [c for c in mine if c.ok]
            failed = len(mine) - len(ok)
            retried = sum(1 for c in mine if c.retries > 0)
            degraded = sum(1 for c in mine if c.degraded)
            my_shed = [(r, reason) for r, reason in shed if r.tenant == name]
            shed_reasons: dict[str, int] = {}
            for _, reason in my_shed:
                shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
            by_class = self._class_stats(mine, my_shed)
            latencies = np.asarray([c.latency_ms for c in ok])
            if latencies.size == 0:
                reports[name] = TenantReport(
                    tenant=name, completed=0, throughput_per_s=0.0,
                    p50_ms=0.0, p95_ms=0.0, p99_ms=0.0, mean_batch=0.0,
                    sla_ms=tenant.sla_ms, sla_violations=0,
                    failed=failed, retried=retried, shed=len(my_shed),
                    degraded=degraded, shed_reasons=shed_reasons,
                    by_class=by_class,
                )
                continue
            violations = 0
            if tenant.sla_ms is not None:
                violations = int((latencies > tenant.sla_ms).sum())
            reports[name] = TenantReport(
                tenant=name,
                completed=len(ok),
                throughput_per_s=len(ok) * 1e9 / horizon_ns,
                p50_ms=float(np.percentile(latencies, 50)),
                p95_ms=float(np.percentile(latencies, 95)),
                p99_ms=float(np.percentile(latencies, 99)),
                mean_batch=float(np.mean([c.batch_size for c in ok])),
                sla_ms=tenant.sla_ms,
                sla_violations=violations,
                failed=failed,
                retried=retried,
                shed=len(my_shed),
                degraded=degraded,
                shed_reasons=shed_reasons,
                by_class=by_class,
            )
        return reports
