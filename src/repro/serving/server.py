"""Inference-server simulation: queueing + batching over processing groups.

Implements the paper's §IV-E serving story quantitatively:

- each tenant owns an **isolated slice** of processing groups (Fig. 7);
  its requests queue only behind its own traffic;
- alternatively, a **shared** deployment funnels every tenant through one
  queue over the whole chip — the interference case isolation prevents
  ("isolated hardware resources prevent interference among each other,
  system throughput is increased without compromising inference latency");
- dynamic batching: requests waiting in a queue coalesce up to
  ``max_batch``, with sub-linear batch service times taken from the i20's
  calibrated utilization-vs-batch curve.

Service times come from one measured executor run per (model, groups)
configuration, so the queueing layer stays fast while staying anchored to
the detailed simulator.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.core.accelerator import Accelerator
from repro.models.zoo import build
from repro.perfmodel.calibration import calibration
from repro.runtime.runtime import Device
from repro.serving.workload import Request


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's deployment: model + slice size + SLA + batching."""

    name: str
    model: str
    groups: int
    max_batch: int = 1
    sla_ms: float | None = None


@dataclass
class CompletedRequest:
    """Outcome of one request."""

    request: Request
    start_ns: float
    finish_ns: float
    batch_size: int

    @property
    def latency_ms(self) -> float:
        return (self.finish_ns - self.request.arrival_ns) / 1e6

    @property
    def queue_ms(self) -> float:
        return (self.start_ns - self.request.arrival_ns) / 1e6


@dataclass
class TenantReport:
    """Serving statistics for one tenant over a run."""

    tenant: str
    completed: int
    throughput_per_s: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_batch: float
    sla_ms: float | None
    sla_violations: int

    @property
    def sla_violation_rate(self) -> float:
        if self.completed == 0:
            return 0.0
        return self.sla_violations / self.completed


def measure_service_time_ns(model: str, groups: int) -> float:
    """One detailed-simulator run: the per-inference service time."""
    accelerator = Accelerator.cloudblazer_i20()
    device = Device(accelerator)
    compiled = device.compile(build(model), batch=1)
    result = device.launch(compiled, num_groups=groups)
    return result.latency_ns


def batch_service_time_ns(base_ns: float, batch: int) -> float:
    """Sub-linear batch scaling from the i20 calibration curve."""
    if batch < 1:
        raise ValueError(f"batch {batch} < 1")
    scale = calibration("i20").batch_scale(batch)
    return base_ns * batch / scale


class InferenceServer:
    """Event-driven queueing simulation over tenant slices."""

    def __init__(
        self,
        tenants: list[TenantConfig],
        isolated: bool = True,
        service_times_ns: dict[str, float] | None = None,
    ) -> None:
        if not tenants:
            raise ValueError("server needs at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        self.tenants = {tenant.name: tenant for tenant in tenants}
        self.isolated = isolated
        self.service_times_ns = service_times_ns or {}
        for tenant in tenants:
            if tenant.name not in self.service_times_ns:
                self.service_times_ns[tenant.name] = measure_service_time_ns(
                    tenant.model, tenant.groups
                )

    # -- simulation ----------------------------------------------------------

    def run(self, trace: list[Request]) -> dict[str, TenantReport]:
        """Replay the trace; returns per-tenant serving statistics.

        Isolated mode: one server (the tenant's group slice) per tenant.
        Shared mode: a single FIFO server processes everything in arrival
        order — head-of-line blocking included.
        """
        if self.isolated:
            completed: list[CompletedRequest] = []
            for name in self.tenants:
                tenant_trace = [r for r in trace if r.tenant == name]
                completed.extend(self._run_single_queue(tenant_trace, name))
        else:
            completed = self._run_shared_queue(trace)
        return self._report(completed, trace)

    def _run_single_queue(
        self, trace: list[Request], tenant_name: str
    ) -> list[CompletedRequest]:
        tenant = self.tenants[tenant_name]
        base = self.service_times_ns[tenant_name]
        completed: list[CompletedRequest] = []
        free_at = 0.0
        index = 0
        while index < len(trace):
            head = trace[index]
            start = max(head.arrival_ns, free_at)
            # dynamic batching: everything already waiting joins, capped.
            batch = [head]
            probe = index + 1
            while (
                probe < len(trace)
                and len(batch) < tenant.max_batch
                and trace[probe].arrival_ns <= start
            ):
                batch.append(trace[probe])
                probe += 1
            service = batch_service_time_ns(base, len(batch))
            finish = start + service
            for request in batch:
                completed.append(
                    CompletedRequest(
                        request=request, start_ns=start, finish_ns=finish,
                        batch_size=len(batch),
                    )
                )
            free_at = finish
            index = probe
        return completed

    def _run_shared_queue(self, trace: list[Request]) -> list[CompletedRequest]:
        completed: list[CompletedRequest] = []
        free_at = 0.0
        for request in trace:
            tenant = self.tenants[request.tenant]
            base = self.service_times_ns[request.tenant]
            start = max(request.arrival_ns, free_at)
            finish = start + batch_service_time_ns(base, 1)
            completed.append(
                CompletedRequest(
                    request=request, start_ns=start, finish_ns=finish,
                    batch_size=1,
                )
            )
            free_at = finish
        return completed

    # -- reporting ----------------------------------------------------------

    def _report(
        self, completed: list[CompletedRequest], trace: list[Request]
    ) -> dict[str, TenantReport]:
        horizon_ns = max((r.arrival_ns for r in trace), default=0.0) or 1.0
        reports = {}
        for name, tenant in self.tenants.items():
            mine = [c for c in completed if c.request.tenant == name]
            latencies = np.asarray([c.latency_ms for c in mine])
            if latencies.size == 0:
                reports[name] = TenantReport(
                    tenant=name, completed=0, throughput_per_s=0.0,
                    p50_ms=0.0, p95_ms=0.0, p99_ms=0.0, mean_batch=0.0,
                    sla_ms=tenant.sla_ms, sla_violations=0,
                )
                continue
            violations = 0
            if tenant.sla_ms is not None:
                violations = int((latencies > tenant.sla_ms).sum())
            reports[name] = TenantReport(
                tenant=name,
                completed=len(mine),
                throughput_per_s=len(mine) * 1e9 / horizon_ns,
                p50_ms=float(np.percentile(latencies, 50)),
                p95_ms=float(np.percentile(latencies, 95)),
                p99_ms=float(np.percentile(latencies, 99)),
                mean_batch=float(np.mean([c.batch_size for c in mine])),
                sla_ms=tenant.sla_ms,
                sla_violations=violations,
            )
        return reports
