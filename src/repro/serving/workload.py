"""Request workload generation for cloud-serving simulations.

The paper frames the i20 as a *cloud inference* part (§I, §II-B): requests
arrive continuously and the operator cares about latency percentiles and
throughput, not single-shot runs. This module produces deterministic
synthetic request traces — Poisson arrivals (exponential gaps from a seeded
RNG), optionally bursty — standing in for the production traces we cannot
ship (see DESIGN.md substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Request:
    """One inference request."""

    request_id: int
    tenant: str
    arrival_ns: float
    slo_class: str = "standard"
    """SLO class the admission layer queues/sheds this request under
    (see :mod:`repro.serving.admission`); legacy traces default to
    ``standard`` and behave exactly as before."""
    user_id: int = -1
    """Synthetic user the open-loop generator attributed the request to
    (:mod:`repro.serving.loadgen`); -1 for closed-form traces."""


@dataclass(frozen=True)
class TrafficPattern:
    """Arrival-process parameters for one tenant."""

    tenant: str
    rate_per_s: float
    """Mean request rate; 0 is allowed and generates no requests (useful
    when sweeping a tenant's share of a composed workload down to zero)."""
    burstiness: float = 1.0
    """1.0 = Poisson; >1 squeezes gaps into bursts of idle/active phases."""
    slo_class: str = "standard"
    """SLO class stamped on every generated request."""

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate_per_s}")
        if self.burstiness < 1.0:
            raise ValueError(f"burstiness must be >= 1, got {self.burstiness}")


def generate_trace(
    patterns: list[TrafficPattern],
    duration_s: float,
    seed: int = 0,
) -> list[Request]:
    """Merge per-tenant arrival processes into one time-sorted trace."""
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    rng = np.random.default_rng(seed)
    requests: list[Request] = []
    request_id = 0
    for pattern in patterns:
        if pattern.rate_per_s == 0:
            continue
        mean_gap_ns = 1e9 / pattern.rate_per_s
        now = 0.0
        active = True
        while True:
            if pattern.burstiness > 1.0:
                # on/off bursts: active phases run at burstiness x rate,
                # idle phases pause, preserving the mean rate overall.
                gap = rng.exponential(mean_gap_ns / pattern.burstiness)
                if rng.random() < 0.05:
                    active = not active
                if not active:
                    now += gap * pattern.burstiness
                    continue
            else:
                gap = rng.exponential(mean_gap_ns)
            now += gap
            if now > duration_s * 1e9:
                break
            requests.append(
                Request(
                    request_id=request_id, tenant=pattern.tenant,
                    arrival_ns=now, slo_class=pattern.slo_class,
                )
            )
            request_id += 1
    requests.sort(key=lambda request: (request.arrival_ns, request.request_id))
    return requests
