"""Discrete-event simulation substrate."""

from repro.sim.kernel import AllOf, Event, Process, Resource, SimulationError, Simulator, Timeout
from repro.sim.trace import Interval, Trace
from repro.sim.trace_export import save_chrome_trace, to_chrome_trace

__all__ = [
    "AllOf", "Event", "Interval", "Process", "Resource",
    "SimulationError", "Simulator", "Timeout", "Trace",
    "save_chrome_trace", "to_chrome_trace",
]
