"""Discrete-event simulation substrate."""

from repro.sim.kernel import (
    AllOf,
    Event,
    Process,
    Resource,
    SimulationError,
    Simulator,
    Timeout,
    make_simulator,
)
from repro.sim.kernel_reference import ReferenceSimulator
from repro.sim.parallel import ShardError, default_workers, run_sharded
from repro.sim.trace import Interval, Trace
from repro.sim.trace_export import save_chrome_trace, to_chrome_trace

__all__ = [
    "AllOf", "Event", "Interval", "Process", "ReferenceSimulator", "Resource",
    "ShardError", "SimulationError", "Simulator", "Timeout", "Trace",
    "default_workers", "make_simulator", "run_sharded", "save_chrome_trace",
    "to_chrome_trace",
]
