"""Discrete-event simulation kernel.

This module is the substrate every timed model in the repository runs on: the
DTU 2.0 performance simulator (compute cores, DMA engines, synchronization
engine, power management) schedules its work as *processes* — Python
generators that yield :class:`Timeout` or :class:`Event` objects — on a
shared :class:`Simulator`.

The design is a deliberately small subset of the SimPy programming model so
that models stay readable:

>>> sim = Simulator()
>>> log = []
>>> def worker(sim):
...     yield Timeout(10.0)
...     log.append(sim.now)
>>> _ = sim.spawn(worker(sim))
>>> sim.run()
>>> log
[10.0]

Time is a float; by repository convention it is **nanoseconds**.

Engine contract (docs/sim-internals.md)
---------------------------------------

Two interchangeable event cores implement the same scheduling contract:

- :class:`Simulator` — the default fast engine: same-timestamp wakeups are
  drained in one batch (the clock is written once per distinct time, not
  once per event), :class:`Timeout` objects are interned so repeated
  delays allocate nothing, and :class:`AllOf` joins use counting gates
  instead of closure chains;
- :class:`~repro.sim.kernel_reference.ReferenceSimulator` — the pinned
  original loop (one pop + one resume per event), kept as the
  bit-reproducibility anchor.

Both order the event queue by ``(time, sequence)`` — ``sequence`` is a
per-simulator monotonic counter, so ties at one timestamp resolve in
scheduling order and **never** by object identity. Any workload must
produce byte-identical traces and clocks on both engines; pick one with
:func:`make_simulator` (or ``REPRO_SIM_ENGINE=reference`` in the
environment).
"""

from __future__ import annotations

import heapq
import itertools
import os
from dataclasses import dataclass, field


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; :meth:`succeed` fires it, resuming every
    waiting process. Firing twice is an error — events are single-use, like
    the hardware semaphores they usually model.
    """

    __slots__ = ("sim", "name", "_fired", "_value", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._fired = False
        self._value = None
        self._waiters: list["Process"] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self):
        if not self._fired:
            raise SimulationError(f"event {self.name!r} has not fired yet")
        return self._value

    def succeed(self, value=None) -> None:
        """Fire the event, waking every process currently waiting on it."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters = self._waiters
        if waiters:
            self._waiters = []
            sim = self.sim
            schedule = sim._schedule
            now = sim.now
            for process in waiters:
                schedule(now, process, value)

    #: timer events sit directly in the queue; dispatching one fires it
    _resume = succeed

    def _add_waiter(self, process: "Process") -> None:
        if self._fired:
            self.sim._schedule(self.sim.now, process, self._value)
        else:
            self._waiters.append(process)


class Timeout:
    """Yielded by a process to advance simulated time by ``delay``.

    Timeouts are immutable value objects and are **interned**: the engine
    keeps a bounded pool keyed on ``delay``, so the hot loops that sleep
    for the same durations over and over (DMA configuration overhead,
    power-manager windows, per-tile transfer times) reuse one object
    instead of allocating per event. ``pool_hits`` / ``pool_misses`` feed
    the ``sim_timeout_pool_*`` observability gauges.
    """

    __slots__ = ("delay",)

    _pool: dict = {}
    _POOL_LIMIT = 1024
    #: process-wide interning statistics (monotonic)
    pool_hits: int = 0
    pool_misses: int = 0

    def __new__(cls, delay: float) -> "Timeout":
        cached = cls._pool.get(delay)
        if cached is not None:
            cls.pool_hits += 1
            return cached
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self = super().__new__(cls)
        object.__setattr__(self, "delay", delay)
        pool = cls._pool
        if len(pool) < cls._POOL_LIMIT:
            pool[delay] = self
        cls.pool_misses += 1
        return self

    def __setattr__(self, name, value):  # frozen: pooled instances are shared
        raise AttributeError(f"Timeout is immutable; cannot set {name!r}")

    def __delattr__(self, name):
        raise AttributeError(f"Timeout is immutable; cannot delete {name!r}")

    def __repr__(self) -> str:
        return f"Timeout(delay={self.delay})"

    def __eq__(self, other) -> bool:
        if isinstance(other, Timeout):
            return self.delay == other.delay
        return NotImplemented

    def __hash__(self) -> int:
        return hash((Timeout, self.delay))

    def __reduce__(self):  # re-intern on unpickle
        return (Timeout, (self.delay,))


class AllOf:
    """Composite wait: resumes the process once every child event has fired."""

    __slots__ = ("events",)

    def __init__(self, events) -> None:
        self.events = list(events)

    def _bind(self, sim: "Simulator", process: "Process") -> None:
        pending = [event for event in self.events if not event._fired]
        if not pending:
            sim._schedule(sim.now, process, [event.value for event in self.events])
            return
        gate = _AllOfGate(sim, process, self.events, len(pending))
        for event in pending:
            event._waiters.append(gate)


class _AllOfGate:
    """Counting join: one shared waiter object per :class:`AllOf`.

    Sits directly in each pending event's waiter list (events schedule
    their waiters through the queue, so the gate's decrements happen in
    the same deterministic order the closure-based implementation used).
    """

    __slots__ = ("sim", "process", "events", "remaining")

    def __init__(self, sim, process, events, remaining) -> None:
        self.sim = sim
        self.process = process
        self.events = events
        self.remaining = remaining

    def _resume(self, _value) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            sim = self.sim
            sim._schedule(
                sim.now, self.process, [event._value for event in self.events]
            )


class _CallbackWaiter:
    """Adapter letting plain callables sit in an event's waiter list."""

    __slots__ = ("_callback",)

    def __init__(self, callback) -> None:
        self._callback = callback

    def _resume(self, value) -> None:
        self._callback(value)


class Process:
    """A running generator inside the simulator.

    The wrapped generator may yield:

    - :class:`Timeout` — sleep for simulated time,
    - :class:`Event` — block until the event fires,
    - :class:`AllOf` — block until several events fire,
    - another :class:`Process` — block until it terminates.

    When the generator returns, :attr:`done_event` fires with the generator's
    return value, so processes compose like futures.
    """

    __slots__ = ("sim", "generator", "pid", "_name", "done_event")

    _ids = itertools.count()

    def __init__(self, sim: "Simulator", generator, name: str = "") -> None:
        self.sim = sim
        self.generator = generator
        self.pid = next(Process._ids)
        self._name = name
        self.done_event = Event(sim, name="")

    @property
    def name(self) -> str:
        return self._name or f"process-{self.pid}"

    @property
    def done(self) -> bool:
        return self.done_event._fired

    def _resume(self, value) -> None:
        # ``send(None)`` on a fresh generator is ``next()`` — the first
        # wakeup (scheduled by spawn) primes the coroutine, every later one
        # delivers the awaited value. One code path, zero flags.
        try:
            yielded = self.generator.send(value)
        except StopIteration as stop:
            self.done_event.succeed(stop.value)
            return
        if yielded.__class__ is Timeout:
            # The overwhelmingly common yield: inline the schedule. The
            # deadline cannot be in the past (delay >= 0 by construction).
            sim = self.sim
            heapq.heappush(
                sim._queue,
                (sim.now + yielded.delay, next(sim._counter), self, None),
            )
        else:
            self._wait_on(yielded)

    def _wait_on(self, yielded) -> None:
        sim = self.sim
        if isinstance(yielded, Timeout):
            sim._schedule(sim.now + yielded.delay, self, None)
        elif isinstance(yielded, Event):
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            yielded.done_event._add_waiter(self)
        elif isinstance(yielded, AllOf):
            yielded._bind(sim, self)
        else:
            raise SimulationError(
                f"{self.name} yielded unsupported object {yielded!r}"
            )


class Simulator:
    """Event queue + clock. Deterministic: ties break by insertion order.

    This is the fast engine: the queue is a min-heap of
    ``(time, sequence, target, value)`` tuples (comparison never reaches
    ``target`` — ``sequence`` is unique per simulator), and the drain loop
    batches every wakeup sharing one timestamp into a single clock
    advance. Dispatch accounting (:attr:`events_dispatched`,
    :attr:`time_steps`) feeds the ``repro profile`` engine table.
    """

    engine = "fast"

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list = []
        self._counter = itertools.count()
        #: wakeups dispatched over this simulator's lifetime
        self.events_dispatched: int = 0
        #: distinct timestamps the clock stepped through while dispatching
        self.time_steps: int = 0

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def spawn(self, generator, name: str = "") -> Process:
        """Register ``generator`` as a process starting at the current time."""
        process = Process(self, generator, name=name)
        self._schedule(self.now, process, None)
        return process

    def timer(self, delay: float, value=None, name: str = "") -> Event:
        """An event that fires by itself ``delay`` ns from now.

        Cheaper than spawning a sleep-only process (no generator, no
        Process object, one queue entry) for pure-delay modelling.
        """
        if delay < 0:
            raise SimulationError(f"negative timer delay: {delay}")
        event = Event(self, name=name or "timer")
        self._schedule(self.now + delay, event, value)
        return event

    def _schedule(self, when: float, target, value) -> None:
        if when < self.now:
            raise SimulationError(f"scheduling into the past: {when} < {self.now}")
        heapq.heappush(self._queue, (when, next(self._counter), target, value))

    def run(self, until: float | None = None) -> float:
        """Drain the event queue; returns the final simulated time.

        ``until`` caps simulated time: events scheduled later stay queued and
        the clock stops exactly at ``until``.
        """
        queue = self._queue
        pop = heapq.heappop
        dispatched = 0
        steps = 0
        now = self.now
        try:
            if until is None:
                while queue:
                    when, _seq, target, value = pop(queue)
                    if when > now:
                        self.now = now = when
                        steps += 1
                    dispatched += 1
                    target._resume(value)
            else:
                while queue:
                    when = queue[0][0]
                    if when > until:
                        self.now = until
                        return until
                    when, _seq, target, value = pop(queue)
                    if when > now:
                        self.now = now = when
                        steps += 1
                    dispatched += 1
                    target._resume(value)
                self.now = max(self.now, until)
        finally:
            self.events_dispatched += dispatched
            self.time_steps += steps
        return self.now


def make_simulator(engine: str | None = None):
    """Build an event core by name: ``"fast"`` (default) or ``"reference"``.

    With ``engine=None`` the choice comes from the ``REPRO_SIM_ENGINE``
    environment variable, so a whole run — accelerators, fleets, benches —
    can be flipped onto the pinned reference kernel without code changes.
    Both engines satisfy the same ordering contract (docs/sim-internals.md)
    and must produce byte-identical results.
    """
    if engine is None:
        engine = os.environ.get("REPRO_SIM_ENGINE", "fast")
    if engine == "fast":
        return Simulator()
    if engine == "reference":
        from repro.sim.kernel_reference import ReferenceSimulator

        return ReferenceSimulator()
    raise SimulationError(
        f"unknown simulation engine {engine!r}; expected 'fast' or 'reference'"
    )


@dataclass
class Resource:
    """A counted resource (e.g. an L2 port or a DMA channel).

    Processes acquire with :meth:`request` (yielding the returned event) and
    must release exactly once. FIFO granting keeps the model deterministic.
    """

    sim: Simulator
    capacity: int
    name: str = "resource"
    _in_use: int = 0
    _wait_queue: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"{self.name}: capacity must be >= 1")
        # one interned grant name: request() is on the DMA hot path
        self._grant_name = f"{self.name}.grant"

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._wait_queue)

    def request(self) -> Event:
        event = Event(self.sim, name=self._grant_name)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._wait_queue.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release without request")
        if self._wait_queue:
            grant = self._wait_queue.pop(0)
            grant.succeed()
        else:
            self._in_use -= 1
