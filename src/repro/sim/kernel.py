"""Discrete-event simulation kernel.

This module is the substrate every timed model in the repository runs on: the
DTU 2.0 performance simulator (compute cores, DMA engines, synchronization
engine, power management) schedules its work as *processes* — Python
generators that yield :class:`Timeout` or :class:`Event` objects — on a
shared :class:`Simulator`.

The design is a deliberately small subset of the SimPy programming model so
that models stay readable:

>>> sim = Simulator()
>>> log = []
>>> def worker(sim):
...     yield Timeout(10.0)
...     log.append(sim.now)
>>> _ = sim.spawn(worker(sim))
>>> sim.run()
>>> log
[10.0]

Time is a float; by repository convention it is **nanoseconds**.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; :meth:`succeed` fires it, resuming every
    waiting process. Firing twice is an error — events are single-use, like
    the hardware semaphores they usually model.
    """

    __slots__ = ("sim", "name", "_fired", "_value", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._fired = False
        self._value = None
        self._waiters: list["Process"] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self):
        if not self._fired:
            raise SimulationError(f"event {self.name!r} has not fired yet")
        return self._value

    def succeed(self, value=None) -> None:
        """Fire the event, waking every process currently waiting on it."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.sim._schedule(self.sim.now, process, value)

    def _add_waiter(self, process: "Process") -> None:
        if self._fired:
            self.sim._schedule(self.sim.now, process, self._value)
        else:
            self._waiters.append(process)


@dataclass(frozen=True)
class Timeout:
    """Yielded by a process to advance simulated time by ``delay``."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"negative timeout: {self.delay}")


class AllOf:
    """Composite wait: resumes the process once every child event has fired."""

    def __init__(self, events) -> None:
        self.events = list(events)

    def _bind(self, sim: "Simulator", process: "Process") -> None:
        pending = [event for event in self.events if not event.fired]
        if not pending:
            sim._schedule(sim.now, process, [event.value for event in self.events])
            return
        remaining = {"count": len(pending)}

        def _make_gate(outer: "AllOf"):
            def _gate(_value, outer=outer):
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    sim._schedule(
                        sim.now, process, [event.value for event in outer.events]
                    )

            return _gate

        gate = _make_gate(self)
        for event in pending:
            watcher = _CallbackWaiter(gate)
            event._add_waiter(watcher)


class _CallbackWaiter:
    """Adapter letting plain callables sit in an event's waiter list."""

    __slots__ = ("_callback",)

    def __init__(self, callback) -> None:
        self._callback = callback

    def _resume(self, value) -> None:
        self._callback(value)


class Process:
    """A running generator inside the simulator.

    The wrapped generator may yield:

    - :class:`Timeout` — sleep for simulated time,
    - :class:`Event` — block until the event fires,
    - :class:`AllOf` — block until several events fire,
    - another :class:`Process` — block until it terminates.

    When the generator returns, :attr:`done_event` fires with the generator's
    return value, so processes compose like futures.
    """

    _ids = itertools.count()

    def __init__(self, sim: "Simulator", generator, name: str = "") -> None:
        self.sim = sim
        self.generator = generator
        self.pid = next(Process._ids)
        self.name = name or f"process-{self.pid}"
        self.done_event = Event(sim, name=f"{self.name}.done")

    @property
    def done(self) -> bool:
        return self.done_event.fired

    def _resume(self, value) -> None:
        try:
            yielded = self.generator.send(value)
        except StopIteration as stop:
            self.done_event.succeed(stop.value)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded) -> None:
        sim = self.sim
        if isinstance(yielded, Timeout):
            sim._schedule(sim.now + yielded.delay, self, None)
        elif isinstance(yielded, Event):
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            yielded.done_event._add_waiter(self)
        elif isinstance(yielded, AllOf):
            yielded._bind(sim, self)
        else:
            raise SimulationError(
                f"{self.name} yielded unsupported object {yielded!r}"
            )


class Simulator:
    """Event queue + clock. Deterministic: ties break by insertion order."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list = []
        self._counter = itertools.count()
        self._live_processes = 0

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def spawn(self, generator, name: str = "") -> Process:
        """Register ``generator`` as a process starting at the current time."""
        process = Process(self, generator, name=name)
        self._live_processes += 1
        self._schedule(self.now, process, None, first=True)
        return process

    def _schedule(self, when: float, target, value, first: bool = False) -> None:
        if when < self.now:
            raise SimulationError(f"scheduling into the past: {when} < {self.now}")
        heapq.heappush(self._queue, (when, next(self._counter), target, value, first))

    def run(self, until: float | None = None) -> float:
        """Drain the event queue; returns the final simulated time.

        ``until`` caps simulated time: events scheduled later stay queued and
        the clock stops exactly at ``until``.
        """
        while self._queue:
            when, _seq, target, value, first = self._queue[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = when
            if isinstance(target, Process):
                if first:
                    self._start(target)
                else:
                    target._resume(value)
            else:
                target._resume(value)
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def _start(self, process: Process) -> None:
        try:
            yielded = next(process.generator)
        except StopIteration as stop:
            process.done_event.succeed(stop.value)
            return
        process._wait_on(yielded)


@dataclass
class Resource:
    """A counted resource (e.g. an L2 port or a DMA channel).

    Processes acquire with :meth:`request` (yielding the returned event) and
    must release exactly once. FIFO granting keeps the model deterministic.
    """

    sim: Simulator
    capacity: int
    name: str = "resource"
    _in_use: int = 0
    _wait_queue: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"{self.name}: capacity must be >= 1")

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._wait_queue)

    def request(self) -> Event:
        event = self.sim.event(name=f"{self.name}.grant")
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._wait_queue.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release without request")
        if self._wait_queue:
            grant = self._wait_queue.pop(0)
            grant.succeed()
        else:
            self._in_use -= 1
