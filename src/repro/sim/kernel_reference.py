"""Pinned reference event core for the discrete-event simulator.

:class:`ReferenceSimulator` is the original, unoptimized event loop —
one ``heapq`` pop and one coroutine resume per event, exactly as the
engine shipped before the vectorized fast path landed in
:mod:`repro.sim.kernel`. It is kept the way ``gemm_reference`` anchors
the matrix engine's fast path: the fast :class:`~repro.sim.kernel.Simulator`
must produce **byte-identical traces and clocks** against this kernel on
any workload, and ``tests/sim/test_engine_equivalence.py`` enforces that
over seeded random process soups and full executor launches.

The reference shares the waitable data types (:class:`~repro.sim.kernel.Event`,
:class:`~repro.sim.kernel.Timeout`, :class:`~repro.sim.kernel.AllOf`,
:class:`~repro.sim.kernel.Process`, :class:`~repro.sim.kernel.Resource`)
with the fast engine — what is pinned here is the *scheduling contract*:

- the event queue is a min-heap ordered by ``(time, sequence)`` where
  ``sequence`` is a per-simulator monotonic counter — ties at one
  timestamp resolve in scheduling order, never by object identity;
- every wakeup is dispatched one at a time: pop the head, set ``now``,
  resume the target with its value;
- ``run(until=...)`` stops the clock exactly at ``until`` and leaves
  later entries queued.

docs/sim-internals.md is the prose version of this contract; change the
semantics there first, then in both engines, never in only one.
"""

from __future__ import annotations

import heapq
import itertools

from repro.sim.kernel import Process, SimulationError


class ReferenceSimulator:
    """Event queue + clock, one event per dispatch. Deterministic: ties
    break by insertion order (the per-simulator sequence counter)."""

    #: engines report which core they are so traces can be labelled
    engine = "reference"

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list = []
        self._counter = itertools.count()
        #: events dispatched since construction (observability parity with
        #: the fast engine's dispatch accounting)
        self.events_dispatched: int = 0

    def event(self, name: str = ""):
        from repro.sim.kernel import Event

        return Event(self, name=name)

    def spawn(self, generator, name: str = "") -> Process:
        """Register ``generator`` as a process starting at the current time."""
        process = Process(self, generator, name=name)
        self._schedule(self.now, process, None)
        return process

    def timer(self, delay: float, value=None, name: str = ""):
        """An event that fires by itself ``delay`` ns from now.

        Mirrors :meth:`repro.sim.kernel.Simulator.timer` so processes
        written against the fast engine run unchanged here.
        """
        if delay < 0:
            raise SimulationError(f"negative timer delay: {delay}")
        event = self.event(name=name or "timer")
        self._schedule(self.now + delay, event, value)
        return event

    def _schedule(self, when: float, target, value) -> None:
        if when < self.now:
            raise SimulationError(f"scheduling into the past: {when} < {self.now}")
        heapq.heappush(self._queue, (when, next(self._counter), target, value))

    def run(self, until: float | None = None) -> float:
        """Drain the event queue; returns the final simulated time.

        ``until`` caps simulated time: events scheduled later stay queued
        and the clock stops exactly at ``until``.
        """
        while self._queue:
            when, _seq, target, value = self._queue[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = when
            self.events_dispatched += 1
            target._resume(value)
        if until is not None:
            self.now = max(self.now, until)
        return self.now
